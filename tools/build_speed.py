#!/usr/bin/env python
"""Build the REPRO_SPEED=compiled kernel library (build/speedc.so).

Uses whatever C compiler the host has (``$CC``, else cc/gcc/clang) — no
extra python packaging machinery, no new dependencies. Exits 0 on success
and on a *graceful skip* (no toolchain found) so CI legs can run it
unconditionally; exits 1 only when a compiler exists but compilation
fails, which is a real bug.

Notes on flags: ``-O2`` without ``-ffast-math`` keeps IEEE-754 semantics,
and ``-ffp-contract=off`` forbids FMA contraction — the kernels must
perform the same double additions the python code performs, bit for bit
(the differential tests enforce this).
"""

from __future__ import annotations

import os
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SOURCE = REPO / "tools" / "speedc.c"
OUTPUT = REPO / "build" / "speedc.so"


def find_compiler() -> str | None:
    candidates = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates += ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def main() -> int:
    compiler = find_compiler()
    if compiler is None:
        print("build_speed: no C compiler found; compiled fast path skipped")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    cmd = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-ffp-contract=off",
        str(SOURCE),
        "-o",
        str(OUTPUT),
    ]
    print("build_speed:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print("build_speed: compilation failed", file=sys.stderr)
        return 1
    print(f"build_speed: wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
