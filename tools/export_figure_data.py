#!/usr/bin/env python3
"""Export the per-figure data series as CSV files (for external plotting).

Usage::

    python tools/export_figure_data.py [output_dir] [--jobs N]

Writes one CSV per table/figure into ``output_dir`` (default
``figure_data/``), using the shared series builders in
:mod:`repro.platform.figures`.

``--jobs N`` fans the independent chaos campaigns behind
``reliability_chaos.csv`` across N worker processes via
:mod:`repro.perf.parallel`; every campaign carries its own seed, and the
results merge back in workload order, so the CSVs are byte-identical at
any job count.
"""

from __future__ import annotations

import argparse
import csv
import pathlib

from repro.perf.parallel import chaos_point, map_points
from repro.platform import PlatformConfig
from repro.platform import figures
from repro.workloads import workload_by_name


def write_csv(path: pathlib.Path, header, rows) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    print(f"wrote {path}")


def main(out_dir: str = "figure_data", jobs: int = 1) -> int:
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    profiles = {n: workload_by_name(n).run() for n in figures.WORKLOAD_ORDER}
    config = PlatformConfig()

    ratios = figures.table1_write_ratios(profiles)
    write_csv(out / "table1_write_ratios.csv", ["workload", "write_ratio"],
              sorted(ratios.items()))

    fig5 = figures.fig5_mapping_location(profiles, config)
    write_csv(out / "fig5_mapping_location.csv",
              ["workload", "protected_s", "secure_world_s"],
              [(n, p, s) for n, (p, s) in fig5.items()])

    fig8 = figures.fig8_mee_schemes(profiles, config)
    write_csv(out / "fig8_mee_schemes.csv",
              ["workload", "none_s", "sc64_s", "hybrid_s"],
              [(n, t["none"], t["sc64"], t["hybrid"]) for n, t in fig8.items()])

    fig11 = figures.fig11_schemes(profiles, config)
    rows = []
    for name, per_scheme in fig11.items():
        for scheme, result in per_scheme.items():
            exposed = result.exposed()
            rows.append((name, scheme, result.total_time, exposed.get("load", 0.0),
                         exposed.get("compute", 0.0), exposed.get("security", 0.0)))
    write_csv(out / "fig11_schemes.csv",
              ["workload", "scheme", "total_s", "load_s", "compute_s", "security_s"],
              rows)

    sweep = figures.fig12_13_channel_sweep(profiles, config)
    write_csv(out / "fig12_13_channels.csv",
              ["channels", "workload", "speedup_vs_host", "overhead_vs_isc"],
              [(ch, n, su, ov) for ch, per in sweep.items()
               for n, (su, ov) in per.items()])

    lat = figures.fig14_latency_sweep(profiles, config)
    write_csv(out / "fig14_flash_latency.csv",
              ["t_rd_us", "workload", "speedup_vs_host"],
              [(t, n, su) for t, per in lat.items() for n, su in per.items()])

    cap = figures.fig15_capability_sweep(profiles, config)
    write_csv(out / "fig15_cpu_capability.csv",
              ["core", "ghz", "avg_total_s"],
              [(core, freq / 1e9, t) for (core, freq), t in cap.items()])

    dram = figures.fig16_dram_sweep(profiles, config)
    write_csv(out / "fig16_dram.csv",
              ["dram_gib", "workload", "isc_s", "iceclave_s"],
              [(g, n, isc, ice) for g, per in dram.items()
               for n, (isc, ice) in per.items()])

    pairs = figures.fig17_pairs(profiles, config)
    rows = [
        ("tpcc+" + partner, r.workload, r.stats["slowdown"])
        for partner, results in pairs.items()
        for r in results
    ]
    for r in figures.fig18_quad(profiles, config):
        rows.append(("quad", r.workload, r.stats["slowdown"]))
    write_csv(out / "fig17_18_multitenant.csv",
              ["group", "workload", "slowdown"], rows)

    traffic = figures.table6_extra_traffic(profiles, config)
    write_csv(out / "table6_extra_traffic.csv",
              ["workload", "encryption_fraction", "verification_fraction"],
              [(n, enc, ver) for n, (enc, ver) in traffic.items()])

    # reliability: one chaos campaign per workload, fixed seed, so the
    # fault/recovery counters can be plotted alongside the perf series.
    # Campaigns are independent points (seed travels in the spec), so they
    # fan out across --jobs workers and merge back in workload order.
    specs = [
        chaos_point(name, profiles[name].write_ratio, seed=42, ops=2000)
        for name in figures.WORKLOAD_ORDER
    ]
    reports = map_points(specs, jobs=jobs)
    chaos_rows = []
    counter_names = None
    for name, report in zip(figures.WORKLOAD_ORDER, reports):
        rel = report.reliability
        if counter_names is None:
            counter_names = sorted(rel)
        chaos_rows.append([name, report.seed, report.invariant_violations]
                          + [rel[c] for c in counter_names])
    write_csv(out / "reliability_chaos.csv",
              ["workload", "seed", "invariant_violations"] + counter_names,
              chaos_rows)

    # recovery: one small crash-point oracle sweep per workload, so the
    # checkpoint/restore counters land next to the reliability series.
    from repro.recovery import RecoveryStats, run_oracle

    recovery_rows = []
    recovery_names = None
    for name in figures.WORKLOAD_ORDER:
        stats = RecoveryStats()
        report = run_oracle(name, profiles[name].write_ratio, base_seed=42,
                            seeds=1, points=3, ops=300, stats=stats)
        counters = stats.as_dict()
        if recovery_names is None:
            recovery_names = sorted(counters)
        recovery_rows.append(
            [name, 42, len(report.points), report.passed,
             int(report.corruption_rejected)]
            + [counters[c] for c in recovery_names])
    write_csv(out / "recovery_oracle.csv",
              ["workload", "seed", "oracle_points", "oracle_passed",
               "corruption_rejected"] + recovery_names,
              recovery_rows)

    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", nargs="?", default="figure_data")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for independent points")
    cli = parser.parse_args()
    raise SystemExit(main(cli.out_dir, jobs=max(1, cli.jobs)))
