#!/usr/bin/env python3
"""Print TCB-debt statistics: baseline breakdown + in-source waiver counts.

Stdlib-only; used by the CI lint job (and humans) to keep an eye on how much
legacy debt the committed baseline carries and how many inline
``# repro: allow[...]`` waivers the tree holds — broken down by rule family
so a release can see *which* invariant is accumulating debt. Exits non-zero
if the baseline file is missing or malformed so CI notices a corrupted
checkout.

Usage::

    python tools/print_baseline_stats.py [path/to/analysis-baseline.json]
        [--src path/to/src]
"""

import argparse
import json
import re
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "analysis-baseline.json"

# mirror of repro.analysis.context._SUPPRESS_RE so waiver counting works
# even when the package cannot be imported (family lookup is best-effort)
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9_*,\s-]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


def _rule_families():
    """rule id -> family from the registry; {} when the package is absent."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis import all_rules
    except Exception:  # noqa: BLE001 - best-effort: stats degrade gracefully
        return {}
    return {rule.id: rule.family for rule in all_rules()}


def _family_of(rule, families):
    if rule in families:
        return families[rule]
    if rule.startswith("meta-"):
        return "meta"
    return rule.split("-")[0]


def _scan_waivers(src):
    """(per-rule Counter, justified, unjustified) for inline waivers."""
    per_rule = Counter()
    justified = unjustified = 0
    for path in sorted(src.rglob("*.py")):
        for line in path.read_text(encoding="utf-8").splitlines():
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            if (match.group("reason") or "").strip():
                justified += 1
            else:
                unjustified += 1
            for rule in match.group("rules").split(","):
                rule = rule.strip()
                if rule:
                    per_rule[rule] += 1
    return per_rule, justified, unjustified


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_PATH))
    parser.add_argument(
        "--src", default=str(REPO_ROOT / "src"),
        help="tree to scan for inline waivers (default: src/)",
    )
    args = parser.parse_args(argv)

    path = Path(args.baseline)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: baseline not found: {path}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: baseline is not valid JSON: {exc}", file=sys.stderr)
        return 1

    if payload.get("version") != 1:
        print(
            f"error: unsupported baseline version: {payload.get('version')!r}",
            file=sys.stderr,
        )
        return 1

    families = _rule_families()
    entries = payload.get("entries", [])
    by_rule = Counter()
    by_path = Counter()
    by_family = Counter()
    for entry in entries:
        count = int(entry.get("count", 1))
        by_rule[entry["rule"]] += count
        by_path[entry["path"]] += count
        by_family[_family_of(entry["rule"], families)] += count

    total = sum(by_rule.values())
    print(f"baseline: {path}")
    print(f"  {total} baselined finding(s) across {len(by_path)} file(s)")
    if by_family:
        print("  by family:")
        for family, count in sorted(
            by_family.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"    {family:<24} {count}")
    if by_rule:
        print("  by rule:")
        for rule, count in sorted(
            by_rule.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"    {rule:<24} {count}")
    if by_path:
        print("  by file:")
        for file_path, count in sorted(
            by_path.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"    {file_path:<48} {count}")

    src = Path(args.src)
    if src.is_dir():
        per_rule, justified, unjustified = _scan_waivers(src)
        print(f"waivers in {src}:")
        print(
            f"  {justified + unjustified} inline waiver(s): "
            f"{justified} justified, {unjustified} unjustified"
        )
        if per_rule:
            print("  by rule:")
            for rule, count in sorted(
                per_rule.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                family = _family_of(rule, families)
                print(f"    {rule:<32} {count}  [{family}]")
    else:
        print(f"waivers: src tree not found at {src}, skipped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
