#!/usr/bin/env python3
"""Print per-rule statistics for the committed analysis baseline.

Stdlib-only; used by the CI lint job (and humans) to keep an eye on how much
legacy debt the baseline is still carrying.  Exits non-zero if the baseline
file is missing or malformed so CI notices a corrupted checkout.

Usage::

    python tools/print_baseline_stats.py [path/to/analysis-baseline.json]
"""

import json
import sys
from collections import Counter
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "analysis-baseline.json"


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else DEFAULT_PATH
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: baseline not found: {path}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: baseline is not valid JSON: {exc}", file=sys.stderr)
        return 1

    if payload.get("version") != 1:
        print(f"error: unsupported baseline version: {payload.get('version')!r}", file=sys.stderr)
        return 1

    entries = payload.get("entries", [])
    by_rule = Counter()
    by_path = Counter()
    for entry in entries:
        count = int(entry.get("count", 1))
        by_rule[entry["rule"]] += count
        by_path[entry["path"]] += count

    total = sum(by_rule.values())
    print(f"baseline: {path}")
    print(f"  {total} waived finding(s) across {len(by_path)} file(s)")
    for rule, count in sorted(by_rule.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"    {rule:<24} {count}")
    if by_path:
        print("  by file:")
        for file_path, count in sorted(by_path.items(), key=lambda kv: (-kv[1], kv[0])):
            print(f"    {file_path:<48} {count}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
