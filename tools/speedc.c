/* Compiled fast-path kernels for REPRO_SPEED=compiled.
 *
 * Built by tools/build_speed.py into build/speedc.so and loaded through
 * ctypes by src/repro/speed.py. Both kernels are bit-identical ports of
 * their pure-python counterparts — same IEEE-754 double operations in the
 * same order (no -ffast-math, no FMA contraction), same integer logic —
 * and the python test suite pins that equivalence differentially. They
 * carry no state between calls and never touch Python APIs, so the
 * library is plain C with no interpreter coupling.
 */

#include <stdint.h>
#include <stdlib.h>

/* -- word-parallel Trivium: 64 keystream bits per step --------------------
 *
 * Port of repro.crypto.trivium_fast.TriviumFast._block. Registers are
 * 93/84/111 bits, oldest state bit at position 0, carried in unsigned
 * __int128 and exchanged as 16-byte little-endian buffers.
 */

typedef unsigned __int128 u128;

static u128 load128(const uint8_t *p) {
    u128 v = 0;
    for (int i = 15; i >= 0; i--) {
        v = (v << 8) | p[i];
    }
    return v;
}

static void store128(uint8_t *p, u128 v) {
    for (int i = 0; i < 16; i++) {
        p[i] = (uint8_t)v;
        v >>= 8;
    }
}

/* out: nblocks * 8 bytes of keystream (LSB-first bit packing, matching
 * int.to_bytes(8, "little")); state_out: 48 bytes (a', b', c' as 16-byte
 * little-endian each). */
void repro_trivium_blocks(const uint8_t *a16, const uint8_t *b16, const uint8_t *c16,
                          uint64_t nblocks, uint8_t *out, uint8_t *state_out) {
    u128 a = load128(a16), b = load128(b16), c = load128(c16);
    for (uint64_t k = 0; k < nblocks; k++) {
        uint64_t t1 = (uint64_t)((a >> 27) ^ a); /* s66 ^ s93 */
        uint64_t t2 = (uint64_t)((b >> 15) ^ b); /* s162 ^ s177 */
        uint64_t t3 = (uint64_t)((c >> 45) ^ c); /* s243 ^ s288 */
        uint64_t z = t1 ^ t2 ^ t3;
        uint64_t nb = t1 ^ (uint64_t)((a >> 2) & (a >> 1)) ^ (uint64_t)(b >> 6);
        uint64_t nc = t2 ^ (uint64_t)((b >> 2) & (b >> 1)) ^ (uint64_t)(c >> 24);
        uint64_t na = t3 ^ (uint64_t)((c >> 2) & (c >> 1)) ^ (uint64_t)(a >> 24);
        a = (a >> 64) | ((u128)na << (93 - 64));
        b = (b >> 64) | ((u128)nb << (84 - 64));
        c = (c >> 64) | ((u128)nc << (111 - 64));
        for (int i = 0; i < 8; i++) {
            out[k * 8 + i] = (uint8_t)(z >> (8 * i));
        }
    }
    store128(state_out, a);
    store128(state_out + 16, b);
    store128(state_out + 32, c);
}

/* -- two-FIFO windowed read-storm kernel ----------------------------------
 *
 * Port of repro.flash.storm._python_kernel. Constant service times make
 * each completion class a FIFO; the loop merges the two FIFOs by
 * (time, seq) and updates per-resource statistics with the exact float
 * additions the event engine would have performed.
 *
 * All stat arrays are in-out, seeded with current resource values.
 * Returns 0 on success, 1 on allocation failure (caller falls back to
 * the python kernel).
 */

int repro_storm_read(const int32_t *die_arr, const int32_t *chan_arr,
                     int64_t n, int32_t ndies, int32_t nchans, int64_t window,
                     double now0, double t_rd, double t_xfer,
                     double *die_wait, double *chan_wait,
                     double *die_serv, double *chan_serv,
                     int64_t *die_jobs, int64_t *chan_jobs,
                     int64_t *die_maxq, int64_t *chan_maxq,
                     double *final_now) {
    if (n <= 0) {
        *final_now = now0;
        return 0;
    }
    /* one arena: two completion FIFOs (each read enters each exactly once,
     * so flat arrays with head/tail cursors suffice) plus linked-list
     * waiting queues per resource */
    size_t doubles = (size_t)(4 * n);             /* dq_time, cq_time, enq(die), enq(chan) */
    size_t int64s = (size_t)(4 * n)               /* dq_seq, cq_seq, dq_idx, cq_idx */
                    + (size_t)(2 * n)             /* next pointers for die + chan queues */
                    + (size_t)(2 * (ndies + nchans)); /* queue head/tail per resource */
    size_t bytes = doubles * sizeof(double) + int64s * sizeof(int64_t)
                   + (size_t)(ndies + nchans) * sizeof(uint8_t)
                   + (size_t)(ndies + nchans) * sizeof(int64_t); /* queue lengths */
    uint8_t *arena = (uint8_t *)malloc(bytes);
    if (arena == NULL) {
        return 1;
    }
    uint8_t *cursor = arena;
    double *dq_time = (double *)cursor; cursor += (size_t)n * sizeof(double);
    double *cq_time = (double *)cursor; cursor += (size_t)n * sizeof(double);
    double *die_enq = (double *)cursor; cursor += (size_t)n * sizeof(double);
    double *chan_enq = (double *)cursor; cursor += (size_t)n * sizeof(double);
    int64_t *dq_seq = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *cq_seq = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *dq_idx = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *cq_idx = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *die_next = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *chan_next = (int64_t *)cursor; cursor += (size_t)n * sizeof(int64_t);
    int64_t *die_qhead = (int64_t *)cursor; cursor += (size_t)ndies * sizeof(int64_t);
    int64_t *die_qtail = (int64_t *)cursor; cursor += (size_t)ndies * sizeof(int64_t);
    int64_t *chan_qhead = (int64_t *)cursor; cursor += (size_t)nchans * sizeof(int64_t);
    int64_t *chan_qtail = (int64_t *)cursor; cursor += (size_t)nchans * sizeof(int64_t);
    int64_t *die_qlen = (int64_t *)cursor; cursor += (size_t)ndies * sizeof(int64_t);
    int64_t *chan_qlen = (int64_t *)cursor; cursor += (size_t)nchans * sizeof(int64_t);
    uint8_t *die_busy = cursor; cursor += (size_t)ndies;
    uint8_t *chan_busy = cursor;

    for (int32_t i = 0; i < ndies; i++) {
        die_qhead[i] = -1; die_qtail[i] = -1; die_qlen[i] = 0; die_busy[i] = 0;
    }
    for (int32_t i = 0; i < nchans; i++) {
        chan_qhead[i] = -1; chan_qtail[i] = -1; chan_qlen[i] = 0; chan_busy[i] = 0;
    }

    int64_t dq_head = 0, dq_tail = 0; /* [head, tail) live */
    int64_t cq_head = 0, cq_tail = 0;
    int64_t seq = 0;
    int64_t first = window < n ? window : n;

    for (int64_t k = 0; k < first; k++) {
        int32_t d = die_arr[k];
        if (die_busy[d]) {
            die_enq[k] = now0;
            die_next[k] = -1;
            if (die_qtail[d] >= 0) { die_next[die_qtail[d]] = k; } else { die_qhead[d] = k; }
            die_qtail[d] = k;
            if (++die_qlen[d] > die_maxq[d]) { die_maxq[d] = die_qlen[d]; }
        } else {
            die_busy[d] = 1;
            seq += 1;
            dq_time[dq_tail] = now0 + t_rd;
            dq_seq[dq_tail] = seq;
            dq_idx[dq_tail] = k;
            dq_tail++;
        }
    }
    int64_t issued = first;
    double now = now0;

    while (dq_head < dq_tail || cq_head < cq_tail) {
        int take_die;
        if (dq_head >= dq_tail) {
            take_die = 0;
        } else if (cq_head >= cq_tail) {
            take_die = 1;
        } else {
            double dt = dq_time[dq_head], ct = cq_time[cq_head];
            take_die = dt < ct || (dt == ct && dq_seq[dq_head] <= cq_seq[cq_head]);
        }
        if (take_die) {
            now = dq_time[dq_head];
            int64_t i = dq_idx[dq_head];
            dq_head++;
            int32_t d = die_arr[i];
            die_jobs[d] += 1;
            die_serv[d] += t_rd;
            if (die_qhead[d] >= 0) {
                int64_t j = die_qhead[d];
                die_qhead[d] = die_next[j];
                if (die_qhead[d] < 0) { die_qtail[d] = -1; }
                die_qlen[d]--;
                die_wait[d] += now - die_enq[j];
                seq += 1;
                dq_time[dq_tail] = now + t_rd;
                dq_seq[dq_tail] = seq;
                dq_idx[dq_tail] = j;
                dq_tail++;
            } else {
                die_busy[d] = 0;
            }
            int32_t c = chan_arr[i];
            if (chan_busy[c]) {
                chan_enq[i] = now;
                chan_next[i] = -1;
                if (chan_qtail[c] >= 0) { chan_next[chan_qtail[c]] = i; } else { chan_qhead[c] = i; }
                chan_qtail[c] = i;
                if (++chan_qlen[c] > chan_maxq[c]) { chan_maxq[c] = chan_qlen[c]; }
            } else {
                chan_busy[c] = 1;
                seq += 1;
                cq_time[cq_tail] = now + t_xfer;
                cq_seq[cq_tail] = seq;
                cq_idx[cq_tail] = i;
                cq_tail++;
            }
        } else {
            now = cq_time[cq_head];
            int64_t i = cq_idx[cq_head];
            cq_head++;
            int32_t c = chan_arr[i];
            chan_jobs[c] += 1;
            chan_serv[c] += t_xfer;
            if (chan_qhead[c] >= 0) {
                int64_t j = chan_qhead[c];
                chan_qhead[c] = chan_next[j];
                if (chan_qhead[c] < 0) { chan_qtail[c] = -1; }
                chan_qlen[c]--;
                chan_wait[c] += now - chan_enq[j];
                seq += 1;
                cq_time[cq_tail] = now + t_xfer;
                cq_seq[cq_tail] = seq;
                cq_idx[cq_tail] = j;
                cq_tail++;
            } else {
                chan_busy[c] = 0;
            }
            if (issued < n) {
                int64_t k = issued++;
                int32_t d = die_arr[k];
                if (die_busy[d]) {
                    die_enq[k] = now;
                    die_next[k] = -1;
                    if (die_qtail[d] >= 0) { die_next[die_qtail[d]] = k; } else { die_qhead[d] = k; }
                    die_qtail[d] = k;
                    if (++die_qlen[d] > die_maxq[d]) { die_maxq[d] = die_qlen[d]; }
                } else {
                    die_busy[d] = 1;
                    seq += 1;
                    dq_time[dq_tail] = now + t_rd;
                    dq_seq[dq_tail] = seq;
                    dq_idx[dq_tail] = k;
                    dq_tail++;
                }
            }
        }
    }
    free(arena);
    *final_now = now;
    return 0;
}
