"""Tests for the columnar query engine: correctness against naive Python."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.query import OpStats, Table, TraceRecorder, aggregate, filter_rows, hash_join, scan
from repro.query.operators import positional_join


def make_table(n=100, seed=3):
    rng = np.random.default_rng(seed)
    return Table(
        "t",
        {
            "k": rng.integers(0, 10, size=n, dtype=np.int64),
            "v": rng.uniform(0, 100, size=n),
        },
    )


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", {})

    def test_unknown_column_error_names_candidates(self):
        t = make_table()
        with pytest.raises(KeyError, match="has: k, v"):
            t.column("missing")

    def test_row_bytes(self):
        t = make_table()
        assert t.row_bytes() == 8 + 8
        assert t.total_bytes() == 16 * len(t)

    def test_take_mask(self):
        t = make_table()
        mask = t.column("k") == 5
        sub = t.take(mask)
        assert sub.num_rows == int(mask.sum())


class TestOperators:
    def test_scan_counts_bytes(self):
        t = make_table(50)
        stats = OpStats()
        out = scan(t, ["v"], stats)
        assert len(out["v"]) == 50
        assert stats.bytes_read == 8 * 50
        assert stats.instructions > 0

    def test_filter_matches_numpy(self):
        t = make_table(200)
        stats = OpStats()
        result = filter_rows(t, lambda x: x.column("v") > 50, stats)
        assert result.num_rows == int((t.column("v") > 50).sum())
        assert stats.rows_read == 200

    def test_filter_bad_predicate_rejected(self):
        t = make_table()
        with pytest.raises(ValueError):
            filter_rows(t, lambda x: x.column("v"), OpStats())  # not boolean

    def test_aggregate_full_table(self):
        t = make_table(100)
        result = aggregate(t, None, {"v": np.mean}, OpStats())
        assert result.column("v_mean")[0] == pytest.approx(t.column("v").mean())

    def test_aggregate_group_by_matches_naive(self):
        t = make_table(300)
        result = aggregate(t, "k", {"v": np.sum}, OpStats())
        naive = {}
        for k, v in zip(t.column("k"), t.column("v")):
            naive[int(k)] = naive.get(int(k), 0.0) + float(v)
        for k, s in zip(result.column("k"), result.column("v_sum")):
            assert s == pytest.approx(naive[int(k)])

    def test_hash_join_matches_naive(self):
        rng = np.random.default_rng(5)
        left = Table("l", {"id": rng.integers(0, 20, 50, dtype=np.int64),
                           "x": np.arange(50, dtype=np.int64)})
        right = Table("r", {"id": rng.integers(0, 20, 80, dtype=np.int64),
                            "y": np.arange(80, dtype=np.int64)})
        stats = OpStats()
        joined = hash_join(left, right, "id", "id", stats)
        naive = sum(
            1
            for lid in left.column("id")
            for rid in right.column("id")
            if lid == rid
        )
        assert joined.num_rows == naive
        # every output row satisfies the equi-join condition
        assert joined.num_rows == 0 or "id" in joined.columns

    def test_hash_join_preserves_payload_pairs(self):
        left = Table("l", {"id": np.array([1, 2, 3]), "x": np.array([10, 20, 30])})
        right = Table("r", {"id": np.array([2, 3, 3]), "y": np.array([200, 300, 301])})
        joined = hash_join(left, right, "id", "id", OpStats())
        pairs = set(zip(joined.column("x").tolist(), joined.column("y").tolist()))
        assert pairs == {(20, 200), (30, 300), (30, 301)}

    def test_positional_join_matches_hash_join(self):
        rng = np.random.default_rng(7)
        dim = Table("d", {"id": np.arange(30, dtype=np.int64),
                          "attr": rng.integers(0, 5, 30, dtype=np.int64)})
        probe = Table("p", {"id": rng.integers(0, 30, 100, dtype=np.int64),
                            "val": np.arange(100, dtype=np.int64)})
        pj = positional_join(probe, dim, "id", "id", OpStats())
        hj = hash_join(probe, dim, "id", "id", OpStats())
        assert pj.num_rows == hj.num_rows == 100
        order_p = np.argsort(pj.column("val"))
        order_h = np.argsort(hj.column("val"))
        assert np.array_equal(pj.column("attr")[order_p], hj.column("attr")[order_h])

    def test_positional_join_requires_dense_keys(self):
        dim = Table("d", {"id": np.array([5, 6, 7]), "a": np.array([1, 2, 3])})
        probe = Table("p", {"id": np.array([5]), "v": np.array([0])})
        with pytest.raises(ValueError):
            positional_join(probe, dim, "id", "id", OpStats())

    @given(st.integers(10, 300), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_filter_then_count_property(self, n, seed):
        rng = np.random.default_rng(seed)
        t = Table("t", {"v": rng.integers(0, 100, n, dtype=np.int64)})
        kept = filter_rows(t, lambda x: x.column("v") < 50, OpStats())
        dropped = filter_rows(t, lambda x: x.column("v") >= 50, OpStats())
        assert kept.num_rows + dropped.num_rows == n


class TestTraceRecorder:
    def test_input_reads_counted_exactly(self):
        rec = TraceRecorder()
        rec.read_input(64 * 100)
        assert rec.trace.cpu_reads == 100
        assert rec.trace.dram_reads == 100

    def test_sampling_rate(self):
        rec = TraceRecorder(sample_every=10, burst_length=4)
        rec.read_input(64 * 4000)
        # one in ten sampled, in bursts of 4
        assert len(rec.trace.events) == pytest.approx(400, rel=0.1)

    def test_burst_sampling_preserves_locality(self):
        rec = TraceRecorder(sample_every=8, burst_length=64)
        rec.read_input(64 * 64 * 100)  # 100 pages
        events = rec.trace.events
        # consecutive sampled events inside a burst sit on consecutive lines
        consecutive = sum(
            1
            for a, b in zip(events, events[1:])
            if b[0] == a[0] and b[1] == a[1] + 1
        )
        assert consecutive > len(events) * 0.8

    def test_small_workset_is_cache_filtered(self):
        rec = TraceRecorder()
        rec.write_workset(64 * 10, count=1000)  # 640 B working set
        assert rec.trace.cpu_writes == 1000
        assert rec.trace.dram_writes == 0
        assert rec.trace.fixed_dram_writes == 10  # one writeback per line

    def test_large_workset_misses(self):
        rec = TraceRecorder(cache_filter_bytes=1 << 20)
        rec.write_workset(4 << 20, count=1000)  # 4 MB >> 1 MB cache
        assert 600 <= rec.trace.dram_writes <= 800  # 75% miss fraction

    def test_hot_fraction_reduces_misses(self):
        cold = TraceRecorder()
        cold.read_workset(4 << 20, count=1000)
        hot = TraceRecorder()
        hot.read_workset(4 << 20, count=1000, hot_fraction=0.9)
        assert hot.trace.dram_reads < cold.trace.dram_reads

    def test_readonly_workset_events_flagged(self):
        rec = TraceRecorder(sample_every=1)
        rec.read_workset(4 << 20, count=10, readonly=True)
        assert all(readonly for (_, _, _, readonly) in rec.trace.events)

    def test_write_ratio(self):
        rec = TraceRecorder()
        rec.read_input(64 * 90)
        rec.write_output(64 * 10)
        assert rec.trace.write_ratio == pytest.approx(0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)
        with pytest.raises(ValueError):
            TraceRecorder().read_workset(100, 10, hot_fraction=1.0)


class TestSortLimit:
    def test_topk_matches_naive(self):
        from repro.query.operators import sort_limit
        import numpy as np
        rng = np.random.default_rng(11)
        t = Table("t", {"v": rng.uniform(0, 1000, 500)})
        top = sort_limit(t, "v", OpStats(), limit=10)
        naive = np.sort(t.column("v"))[::-1][:10]
        assert np.allclose(top.column("v"), naive)

    def test_ascending_full_sort(self):
        from repro.query.operators import sort_limit
        import numpy as np
        t = Table("t", {"v": np.array([3.0, 1.0, 2.0])})
        out = sort_limit(t, "v", OpStats(), descending=False)
        assert out.column("v").tolist() == [1.0, 2.0, 3.0]

    def test_limit_larger_than_table(self):
        from repro.query.operators import sort_limit
        import numpy as np
        t = Table("t", {"v": np.array([2.0, 1.0])})
        out = sort_limit(t, "v", OpStats(), limit=10)
        assert out.num_rows == 2

    def test_full_sort_records_spill_traffic(self):
        from repro.query.operators import sort_limit
        import numpy as np
        rng = np.random.default_rng(2)
        t = Table("t", {"v": rng.uniform(0, 1, 10_000)})
        rec = TraceRecorder()
        sort_limit(t, "v", OpStats(), recorder=rec)
        assert rec.trace.cpu_writes > 0  # sorted runs spill

    def test_topk_is_cache_resident(self):
        from repro.query.operators import sort_limit
        import numpy as np
        t = Table("t", {"v": np.arange(1000.0)})
        rec = TraceRecorder()
        sort_limit(t, "v", OpStats(), recorder=rec, limit=5)
        assert rec.trace.cpu_writes == 0  # heap never hits memory
