"""Tests for host-side models: PCIe, SGX, and the IceClave library."""

import pytest

from repro.core import IceClaveConfig, IceClaveRuntime, TeeState
from repro.core.config import MIB
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.host import IceClaveLibrary, PcieLink, SgxModel


class TestPcie:
    def test_gen3_x4_raw_bandwidth(self):
        link = PcieLink(generation=3, lanes=4)
        assert link.raw_bandwidth == pytest.approx(3.94e9, rel=0.01)

    def test_effective_below_raw(self):
        link = PcieLink()
        assert link.effective_bandwidth < link.raw_bandwidth

    def test_transfer_time_scales(self):
        link = PcieLink()
        assert link.transfer_time(2 << 30) == pytest.approx(2 * link.transfer_time(1 << 30))

    def test_more_lanes_more_bandwidth(self):
        assert PcieLink(lanes=8).raw_bandwidth == 2 * PcieLink(lanes=4).raw_bandwidth

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PcieLink(generation=7)
        with pytest.raises(ValueError):
            PcieLink(lanes=3)
        with pytest.raises(ValueError):
            PcieLink(efficiency=0.0)
        with pytest.raises(ValueError):
            PcieLink().transfer_time(-1)


class TestSgx:
    def test_inflates_compute(self):
        sgx = SgxModel()
        total = sgx.compute_time(1.0, streamed_bytes=1 << 30,
                                 working_set_bytes=10 * MIB, cpu_frequency_hz=4.2e9)
        assert total > 1.0

    def test_epc_overflow_pays_paging(self):
        sgx = SgxModel()
        small = sgx.compute_time(1.0, 1 << 30, working_set_bytes=50 * MIB,
                                 cpu_frequency_hz=4.2e9)
        big = sgx.compute_time(1.0, 1 << 30, working_set_bytes=200 * MIB,
                               cpu_frequency_hz=4.2e9)
        assert big > small

    def test_paper_compute_doubling_band(self):
        """§6.2: SGX adds ~103% computing time for the query workloads."""
        sgx = SgxModel()
        base = 2.0
        total = sgx.compute_time(base, streamed_bytes=32 << 30,
                                 working_set_bytes=186 * MIB, cpu_frequency_hz=4.2e9)
        inflation = sgx.overhead_factor(base, total)
        assert 0.5 <= inflation <= 1.6

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            SgxModel().compute_time(-1.0, 0, 0, 1e9)


def make_library():
    geo = small_geometry()
    ftl = Ftl(geo, chip=FlashChip(geo))
    for lpa in range(32):
        ftl.write(lpa)
    config = IceClaveConfig(
        dram_bytes=512 * MIB, protected_region_bytes=8 * MIB,
        secure_region_bytes=8 * MIB, tee_preallocation_bytes=4 * MIB,
    )
    runtime = IceClaveRuntime(ftl, config=config)
    return IceClaveLibrary(runtime), runtime


class TestIceClaveLibrary:
    def test_offload_execute_get_result(self):
        lib, runtime = make_library()
        handle = lib.offload_code(b"\x90" * 64, lpas=[0, 1, 2])
        lib.execute(handle, lambda tee: b"the answer")
        assert lib.get_result(handle.tid) == b"the answer"
        assert handle.tee.state is TeeState.TERMINATED

    def test_task_ids_autoassigned_unique(self):
        lib, _ = make_library()
        h1 = lib.offload_code(b"\x90", lpas=[0])
        h2 = lib.offload_code(b"\x90", lpas=[1])
        assert h1.tid != h2.tid
        assert set(lib.pending_tasks()) == {h1.tid, h2.tid}

    def test_duplicate_tid_rejected(self):
        lib, _ = make_library()
        lib.offload_code(b"\x90", lpas=[0], tid=7)
        with pytest.raises(ValueError):
            lib.offload_code(b"\x90", lpas=[1], tid=7)

    def test_program_exception_aborts_tee(self):
        lib, runtime = make_library()
        handle = lib.offload_code(b"\x90", lpas=[0])

        def bad_program(tee):
            raise RuntimeError("segfault")

        with pytest.raises(RuntimeError):
            lib.execute(handle, bad_program)
        assert handle.tee.state is TeeState.ABORTED
        with pytest.raises(RuntimeError, match="aborted"):
            lib.get_result(handle.tid)

    def test_result_before_completion_rejected(self):
        lib, _ = make_library()
        handle = lib.offload_code(b"\x90", lpas=[0])
        with pytest.raises(RuntimeError, match="not completed"):
            lib.get_result(handle.tid)

    def test_unknown_tid(self):
        lib, _ = make_library()
        with pytest.raises(KeyError):
            lib.get_result(404)

    def test_program_can_translate_its_data(self):
        lib, runtime = make_library()
        handle = lib.offload_code(b"\x90", lpas=[0, 1])

        def program(tee):
            ppa = runtime.read_mapping_entry(tee, 0)
            return ppa.to_bytes(8, "little")

        lib.execute(handle, program)
        assert lib.get_result(handle.tid)

    def test_decryption_key_carried_to_tee(self):
        lib, _ = make_library()
        handle = lib.offload_code(b"\x90", lpas=[0], decryption_key=b"user-key")
        assert handle.tee.decryption_key == b"user-key"
