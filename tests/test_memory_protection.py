"""Tests for the TrustZone-extended three-region protection model (§4.2)."""

import pytest

from repro.core import AccessType, AddressSpace, MemoryRegion, MMUFault, World
from repro.core.memory_protection import check_access, descriptor_for


class TestPermissionMatrix:
    """The Figure 6 matrix, case by case."""

    def test_normal_world_rw_normal_region(self):
        check_access(MemoryRegion.NORMAL, World.NORMAL, AccessType.READ)
        check_access(MemoryRegion.NORMAL, World.NORMAL, AccessType.WRITE)

    def test_normal_world_reads_protected_region(self):
        """In-storage programs read the mapping table without a world switch."""
        check_access(MemoryRegion.PROTECTED, World.NORMAL, AccessType.READ)

    def test_normal_world_cannot_write_protected_region(self):
        """Only the secure-world FTL may update the mapping table."""
        with pytest.raises(MMUFault):
            check_access(MemoryRegion.PROTECTED, World.NORMAL, AccessType.WRITE)

    def test_normal_world_cannot_touch_secure_region(self):
        for access in AccessType:
            with pytest.raises(MMUFault):
                check_access(MemoryRegion.SECURE, World.NORMAL, access)

    def test_secure_world_rw_everywhere(self):
        for region in MemoryRegion:
            for access in AccessType:
                check_access(region, World.SECURE, access)


class TestDescriptors:
    def test_figure6_encodings(self):
        assert (descriptor_for(MemoryRegion.NORMAL).es,
                descriptor_for(MemoryRegion.NORMAL).ap,
                descriptor_for(MemoryRegion.NORMAL).ns) == (1, 0b01, 1)
        assert (descriptor_for(MemoryRegion.PROTECTED).es,
                descriptor_for(MemoryRegion.PROTECTED).ap,
                descriptor_for(MemoryRegion.PROTECTED).ns) == (0, 0b01, 1)
        assert (descriptor_for(MemoryRegion.SECURE).es,
                descriptor_for(MemoryRegion.SECURE).ap,
                descriptor_for(MemoryRegion.SECURE).ns) == (0, 0b00, 0)

    def test_descriptor_roundtrip(self):
        for region in MemoryRegion:
            assert descriptor_for(region).region() is region

    def test_reserved_encoding_faults(self):
        from repro.core.memory_protection import RegionDescriptor
        with pytest.raises(MMUFault):
            RegionDescriptor(es=1, ap=0b00, ns=0).region()


class TestAddressSpace:
    def make(self):
        return AddressSpace(dram_bytes=1 << 20, secure_bytes=1 << 16,
                            protected_bytes=1 << 16)

    def test_region_layout(self):
        space = self.make()
        assert space.region_of(0) is MemoryRegion.SECURE
        assert space.region_of((1 << 16)) is MemoryRegion.PROTECTED
        assert space.region_of((1 << 17)) is MemoryRegion.NORMAL

    def test_out_of_dram_faults(self):
        with pytest.raises(MMUFault):
            self.make().region_of(1 << 20)

    def test_allocation_in_normal_region(self):
        space = self.make()
        rng = space.allocate(4096, owner=1)
        assert space.region_of(rng.start) is MemoryRegion.NORMAL
        assert space.owner_of(rng.start) == 1

    def test_allocation_exhaustion(self):
        space = self.make()
        with pytest.raises(MemoryError):
            space.allocate(1 << 21)

    def test_free_at_tail_reuses(self):
        space = self.make()
        rng = space.allocate(4096)
        before = space.free_bytes()
        space.free(rng)
        assert space.free_bytes() == before + 4096

    def test_cross_tee_access_faults(self):
        """TEE isolation inside the normal world (§4.2)."""
        space = self.make()
        rng1 = space.allocate(4096, owner=1)
        space.allocate(4096, owner=2)
        # TEE 1 reading its own memory: fine
        space.check(rng1.start, World.NORMAL, AccessType.READ, tee_id=1)
        # TEE 2 touching TEE 1's memory: fault
        with pytest.raises(MMUFault):
            space.check(rng1.start, World.NORMAL, AccessType.READ, tee_id=2)
        assert space.faults == 1

    def test_malicious_mapping_table_write_faults(self):
        """Attack (2) of the threat model: normal world writes the FTL state."""
        space = self.make()
        mapping_table_addr = space.protected_range.start
        with pytest.raises(MMUFault):
            space.check(mapping_table_addr, World.NORMAL, AccessType.WRITE, tee_id=1)

    def test_secure_world_bypasses_tee_isolation(self):
        space = self.make()
        rng1 = space.allocate(4096, owner=1)
        # the IceClave runtime (secure world) manages all TEEs
        space.check(rng1.start, World.SECURE, AccessType.WRITE)
