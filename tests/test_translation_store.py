"""Tests for the flash-resident translation-page store (DFTL)."""

import pytest

from repro.flash import FlashChip, PageState
from repro.flash.geometry import small_geometry
from repro.ftl.translation_store import ENTRIES_PER_TRANSLATION_PAGE, TranslationStore


def make_store(reserved=4, pages_per_block=8):
    geo = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                         planes_per_die=1, blocks_per_plane=8,
                         pages_per_block=pages_per_block)
    chip = FlashChip(geo)
    blocks = list(range(geo.total_blocks - reserved, geo.total_blocks))
    return geo, chip, TranslationStore(geo, chip, reserved_blocks=blocks)


class TestBasics:
    def test_unwritten_page_fetches_none(self):
        _, _, store = make_store()
        assert store.fetch(0) is None
        assert store.stats.page_reads == 0

    def test_writeback_then_fetch(self):
        _, chip, store = make_store()
        ppa = store.writeback(0)
        assert chip.page_state(ppa) is PageState.VALID
        assert store.fetch(0) == ppa
        assert store.stats.page_writes == 1
        assert store.stats.page_reads == 1

    def test_writeback_is_out_of_place(self):
        _, chip, store = make_store()
        first = store.writeback(0)
        second = store.writeback(0)
        assert first != second
        assert chip.page_state(first) is PageState.INVALID
        assert store.fetch(0) == second

    def test_directory_tracks_many_pages(self):
        _, _, store = make_store()
        ppas = {t: store.writeback(t) for t in range(6)}
        for t, ppa in ppas.items():
            assert store.fetch(t) == ppa
        assert store.resident_pages() == 6

    def test_translation_page_of(self):
        _, _, store = make_store()
        assert store.translation_page_of(0) == 0
        assert store.translation_page_of(ENTRIES_PER_TRANSLATION_PAGE) == 1

    def test_requires_two_blocks(self):
        geo = small_geometry(channels=1, chips_per_channel=1, dies_per_chip=1,
                             planes_per_die=1, blocks_per_plane=4, pages_per_block=4)
        with pytest.raises(ValueError):
            TranslationStore(geo, FlashChip(geo), reserved_blocks=[0])


class TestGarbageCollection:
    def test_churn_triggers_translation_gc(self):
        """Repeated dirty write-backs exhaust the log and force GC."""
        _, _, store = make_store(reserved=3, pages_per_block=4)
        # 3 blocks x 4 pages = 12 slots; write back 2 pages 20 times each
        for round_ in range(20):
            store.writeback(0)
            store.writeback(1)
        assert store.stats.block_erases > 0
        # directory still points at valid current copies
        assert store.fetch(0) is not None
        assert store.fetch(1) is not None

    def test_live_pages_survive_gc(self):
        _, chip, store = make_store(reserved=3, pages_per_block=4)
        stable = store.writeback(7)  # written once, then left alone
        for _ in range(25):
            store.writeback(0)
        current = store.directory[7]
        assert chip.page_state(current) is PageState.VALID
        # it may have been relocated by GC, but never lost
        assert store.fetch(7) == current

    def test_gc_counts_relocations(self):
        """A block full of live translation pages forces relocations."""
        _, _, store = make_store(reserved=3, pages_per_block=4)
        for t in range(4):
            store.writeback(10 + t)  # fills the first block, all live
        for _ in range(25):
            store.writeback(0)
        assert store.stats.gc_relocations >= 1
        for t in range(4):
            assert store.fetch(10 + t) is not None


class TestFtlIntegration:
    def make_system(self):
        from repro.ftl import Ftl
        geo = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                             planes_per_die=2, blocks_per_plane=16, pages_per_block=16)
        chip = FlashChip(geo)
        ftl = Ftl(geo, chip=chip)
        blocks = list(range(geo.total_blocks - 4, geo.total_blocks))
        store = TranslationStore(geo, chip, reserved_blocks=blocks)
        ftl.attach_translation_store(store)
        ftl.translation_writeback_batch = 2
        return ftl, store

    def test_host_writes_dirty_translation_pages(self):
        ftl, store = self.make_system()
        # LPAs far apart -> distinct translation pages -> batch flushes
        for lpa in (0, ENTRIES_PER_TRANSLATION_PAGE):
            ftl.write(lpa)
        assert store.stats.page_writes == 2

    def test_writeback_cost_charged_to_host_write(self):
        ftl, store = self.make_system()
        ftl.write(0)
        cost = ftl.write(ENTRIES_PER_TRANSLATION_PAGE)
        # the flush (2 translation-page programs) rides on this write
        assert cost.page_programs >= 3

    def test_runtime_miss_fetches_from_store(self):
        from repro.core import IceClaveConfig, IceClaveRuntime
        from repro.core.config import MIB
        ftl, store = self.make_system()
        for lpa in range(4):
            ftl.write(lpa)
        # flush the dirty set so translation page 0 is flash-resident
        for tpage in list(ftl._dirty_translation_pages):
            store.writeback(tpage)
        config = IceClaveConfig(dram_bytes=256 * MIB, protected_region_bytes=4 * MIB,
                                secure_region_bytes=4 * MIB,
                                tee_preallocation_bytes=2 * MIB)
        runtime = IceClaveRuntime(ftl, config=config)
        tee = runtime.create_tee(b"\x90" * 16, lpas=[0])
        reads_before = store.stats.page_reads
        runtime.read_mapping_entry(tee, 0)  # cold miss
        assert store.stats.page_reads == reads_before + 1
        runtime.read_mapping_entry(tee, 1)  # cached now
        assert store.stats.page_reads == reads_before + 1
