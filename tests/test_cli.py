"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tpch-q1" in out and "wordcount" in out
        assert "iceclave" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1.00 TB" in out
        assert "channels" in out

    def test_info_respects_flags(self, capsys):
        assert main(["info", "--channels", "16"]) == 0
        out = capsys.readouterr().out
        assert ": 16" in out

    def test_run_default_scheme(self, capsys):
        assert main(["run", "filter", "--dataset-gb", "1"]) == 0
        out = capsys.readouterr().out
        assert "filter on iceclave" in out
        assert "security" in out

    def test_run_verbose_stats(self, capsys):
        assert main(["run", "filter", "--dataset-gb", "1", "-v"]) == 0
        out = capsys.readouterr().out
        assert "translation_miss_rate" in out

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "sorting"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "aggregate", "--dataset-gb", "2"]) == 0
        out = capsys.readouterr().out
        for scheme in ("host", "host+sgx", "isc", "iceclave"):
            assert scheme in out
        assert "security overhead" in out

    def test_sweep_channels(self, capsys):
        assert main(["sweep", "channels", "filter", "--dataset-gb", "2"]) == 0
        out = capsys.readouterr().out
        assert "4ch" in out and "32ch" in out

    def test_sweep_dram(self, capsys):
        assert main(["sweep", "dram", "tpcc", "--dataset-gb", "8"]) == 0
        out = capsys.readouterr().out
        assert "2GB" in out and "8GB" in out

    def test_sweep_latency(self, capsys):
        assert main(["sweep", "latency", "aggregate", "--dataset-gb", "2"]) == 0
        out = capsys.readouterr().out
        assert "10us" in out and "110us" in out

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "filter", "--scheme", "gpu"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
