"""Tests for repro.perf: parallel determinism, profiling, the benchmark
trajectory, the engine's cancel-compaction bound, and the memo registry.

The load-bearing property is *byte-identity*: the parallel runner must
produce exactly the same results as the serial path (same fingerprints,
same CSV bytes), and the MEE bulk replay must be bit-identical to calling
read()/write() per event. Everything else — speed — is the benchmark
trajectory's job, not the test suite's.
"""

import json
import struct

import pytest

from repro.cli import main as repro_main
from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine
from repro.perf.bench import (
    SCHEMA_VERSION,
    check_regression,
    load_bench,
    next_bench_path,
    write_bench,
)
from repro.perf.parallel import (
    chaos_point,
    execute_point,
    map_points,
    platform_point,
    resilience_point,
)
from repro.perf.profiler import profile_run
from repro.platform.config import PlatformConfig
from repro.platform.schemes import SCHEMES
from repro.query.trace import subsample_events
from repro.sim.engine import _COMPACT_MIN_QUEUE, Engine
from repro.sim.stats import memo_cache_stats
from repro.workloads import workload_by_name


# -- parallel runner: bit-determinism -----------------------------------------


class TestParallelDeterminism:
    def test_results_return_in_input_order(self):
        config = PlatformConfig()
        specs = [platform_point("tpch-q1", s, config) for s in sorted(SCHEMES)]
        results = map_points(specs, jobs=2)
        assert [r.scheme for r in results] == sorted(SCHEMES)

    def test_platform_fingerprints_identical_across_jobs(self):
        config = PlatformConfig()
        specs = [
            platform_point(w, s, config)
            for w in ("tpch-q1", "tpcc")
            for s in sorted(SCHEMES)
        ]
        serial = [r.fingerprint() for r in map_points(specs, jobs=1)]
        parallel = [r.fingerprint() for r in map_points(specs, jobs=4)]
        assert serial == parallel

    def test_chaos_and_resilience_identical_across_jobs(self):
        profile = workload_by_name("tpcc").run()
        specs = [
            chaos_point("tpcc", profile.write_ratio, seed=42, ops=200),
            chaos_point("filter", 0.0, seed=7, ops=200),
            resilience_point(seed=7, ops=200),
        ]
        serial = [r.fingerprint() for r in map_points(specs, jobs=1)]
        parallel = [r.fingerprint() for r in map_points(specs, jobs=4)]
        assert serial == parallel

    def test_same_spec_same_result(self):
        spec = platform_point("tpch-q1", "iceclave", PlatformConfig())
        assert execute_point(spec).fingerprint() == execute_point(spec).fingerprint()

    def test_different_seed_different_chaos_fingerprint(self):
        a = execute_point(chaos_point("tpcc", 0.4, seed=1, ops=200))
        b = execute_point(chaos_point("tpcc", 0.4, seed=2, ops=200))
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            execute_point(("no-such-kind", ()))


class TestRunResultFingerprint:
    def test_same_run_same_fingerprint(self):
        config = PlatformConfig()
        profile = workload_by_name("tpch-q1").run()
        from repro.platform.schemes import make_platform

        a = make_platform("iceclave", config).run(profile)
        b = make_platform("iceclave", config).run(profile)
        assert a.fingerprint() == b.fingerprint()

    def test_scheme_changes_fingerprint(self):
        config = PlatformConfig()
        profile = workload_by_name("tpch-q1").run()
        from repro.platform.schemes import make_platform

        a = make_platform("iceclave", config).run(profile)
        b = make_platform("host", config).run(profile)
        assert a.fingerprint() != b.fingerprint()


# -- MEE bulk replay ----------------------------------------------------------


class TestMeeReplay:
    @pytest.mark.parametrize(
        "scheme",
        [EncryptionScheme.NONE, EncryptionScheme.SPLIT_COUNTER, EncryptionScheme.HYBRID],
    )
    def test_replay_bit_identical_to_per_call_loop(self, scheme):
        config = PlatformConfig()
        events = subsample_events(
            workload_by_name("tpcc").run().trace.events, config.mee_sample_limit
        )
        assert events, "trace must not be empty"
        loop = MemoryEncryptionEngine(
            config=config.iceclave, scheme=scheme,
            dram_latency=config.isc_core.dram_latency_s,
        )
        for page, line, is_write, readonly in events:
            if is_write:
                loop.write(page, line, readonly=readonly)
            else:
                loop.read(page, line, readonly=readonly)
        bulk = MemoryEncryptionEngine(
            config=config.iceclave, scheme=scheme,
            dram_latency=config.isc_core.dram_latency_s,
        )
        bulk.replay(events)
        for key, value in vars(loop.stats).items():
            other = vars(bulk.stats)[key]
            if isinstance(value, float):
                # bitwise, not approx: replay must not reorder float adds
                assert struct.pack("d", value) == struct.pack("d", other), key
            else:
                assert value == other, key
        assert (loop.cache.hits, loop.cache.misses) == (bulk.cache.hits, bulk.cache.misses)
        assert loop.cache.dirty_evictions == bulk.cache.dirty_evictions

    def test_replay_rejects_bad_line(self):
        config = PlatformConfig()
        mee = MemoryEncryptionEngine(config=config.iceclave)
        with pytest.raises(ValueError):
            mee.replay([(0, 10_000, False, True)])


# -- engine: cancel compaction ------------------------------------------------


class TestCancelCompaction:
    def test_heavy_cancellation_bounds_heap(self):
        engine = Engine()
        handles = [engine.schedule(1.0 + i * 1e-6, lambda: None) for i in range(5000)]
        for handle in handles:
            assert engine.cancel(handle)
        # compaction reclaims cancelled entries as they accumulate; without
        # it all 5000 would still sit in the heap until their time came up
        assert engine.queued_entries < _COMPACT_MIN_QUEUE
        assert engine.pending == 0
        engine.run()
        assert engine.events_fired == 0

    def test_interleaved_live_events_survive_compaction(self):
        engine = Engine()
        fired = []
        live = []
        doomed = []
        for i in range(1000):
            live.append(engine.schedule(1.0 + i * 1e-3, lambda i=i: fired.append(i)))
            doomed.append(engine.schedule(2.0 + i * 1e-3, lambda: fired.append(-1)))
        for handle in doomed:
            engine.cancel(handle)
        engine.run()
        assert fired == list(range(1000))
        assert engine.queued_entries == 0

    def test_cancel_from_inside_callback_keeps_run_loop_valid(self):
        # compaction rebuilds the heap *in place*; a rebuild that rebound the
        # list would desynchronize the alias the running loop holds
        engine = Engine()
        fired = []
        doomed = [
            engine.schedule(5.0 + i * 1e-6, lambda: fired.append(-1))
            for i in range(500)
        ]

        def cancel_all() -> None:
            for handle in doomed:
                engine.cancel(handle)

        engine.schedule(1.0, cancel_all)
        engine.schedule(2.0, lambda: fired.append(1))
        engine.run()
        assert fired == [1]
        assert engine.now == pytest.approx(2.0)

    def test_cancel_returns_false_after_fire(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.cancel(handle) is False


# -- memo registry ------------------------------------------------------------


class TestMemoRegistry:
    def test_registered_memos_present(self):
        # importing the modules registers their caches
        import repro.area.cacti  # noqa: F401
        import repro.dram.timing  # noqa: F401
        import repro.platform.schemes  # noqa: F401

        stats = memo_cache_stats()
        for name in (
            "area.cacti.engine_mm2",
            "area.cacti.page_energy",
            "dram.timing.bank_cycles",
            "platform.mee_overhead",
        ):
            assert name in stats, name
            assert set(stats[name]) == {"hits", "misses", "size"}

    def test_bank_cycles_cache_hits(self):
        from repro.dram.timing import DramTiming, bank_cycles

        timing = DramTiming()
        before = bank_cycles.cache_info()
        first = bank_cycles(timing)
        second = bank_cycles(timing)
        after = bank_cycles.cache_info()
        assert first == second
        assert after.hits >= before.hits + 1

    def test_mee_overhead_memo_hits_on_repeat_run(self):
        from repro.platform.schemes import _mee_overhead_memo, make_platform

        config = PlatformConfig()
        profile = workload_by_name("filter").run()
        make_platform("iceclave", config).run(profile)
        before = _mee_overhead_memo.cache_info()
        make_platform("iceclave", config).run(profile)
        after = _mee_overhead_memo.cache_info()
        assert after.hits > before.hits


# -- profiler -----------------------------------------------------------------


class TestProfiler:
    def test_profile_run_produces_table_and_counters(self):
        report = profile_run("filter", top=5)
        assert report.workload == "filter"
        assert report.scheme == "iceclave"
        assert report.result.total_time > 0
        assert "cumulative" in report.profile_table or "ncalls" in report.profile_table
        text = report.format()
        assert "simulator counters:" in text
        assert "memoized helpers" in text

    def test_profile_run_validates_arguments(self):
        with pytest.raises(ValueError):
            profile_run("filter", sort="nonsense")
        with pytest.raises(ValueError):
            profile_run("filter", top=0)


# -- bench trajectory ---------------------------------------------------------


def _payload(mode="quick", calibration=0.1, **walls):
    return {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "jobs": 1,
        "python": "3.11.7",
        "calibration_s": calibration,
        "peak_rss_kb": 1000,
        "benchmarks": [
            {"name": name, "description": name, "wall_s": wall,
             "events": 100, "events_per_s": 100 / wall}
            for name, wall in walls.items()
        ],
    }


class TestBenchPersistence:
    def test_next_bench_path_numbering(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_4.json"

    def test_write_then_load_roundtrip(self, tmp_path):
        payload = _payload(case_a=1.0)
        path = write_bench(payload, tmp_path)
        assert path.name == "BENCH_0.json"
        assert load_bench(path) == payload
        # deterministic serialization: sorted keys, trailing newline
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            load_bench(path)


class TestCheckRegression:
    def test_identical_payloads_pass(self):
        payload = _payload(case_a=1.0, case_b=2.0)
        assert check_regression(payload, payload) == []

    def test_regression_beyond_threshold_fails(self):
        baseline = _payload(case_a=1.0)
        current = _payload(case_a=1.5)
        problems = check_regression(current, baseline)
        assert len(problems) == 1
        assert "case_a" in problems[0]

    def test_within_threshold_passes(self):
        baseline = _payload(case_a=1.0)
        current = _payload(case_a=1.2)
        assert check_regression(current, baseline) == []

    def test_calibration_normalizes_machine_speed(self):
        # same repo efficiency on a 2x slower machine: both wall and
        # calibration double, so the normalized ratio is exactly 1.0
        baseline = _payload(calibration=0.1, case_a=1.0)
        current = _payload(calibration=0.2, case_a=2.0)
        assert check_regression(current, baseline) == []

    def test_mode_mismatch_fails(self):
        problems = check_regression(_payload(mode="full", case_a=1.0),
                                    _payload(mode="quick", case_a=1.0))
        assert problems and "mode mismatch" in problems[0]

    def test_zero_comparable_cases_fails(self):
        problems = check_regression(_payload(case_a=1.0), _payload(case_b=1.0))
        assert problems and "no comparable benchmarks" in problems[0]

    def test_tiny_cases_are_below_the_noise_floor(self):
        # a 10ms case regressing 3x is scheduler jitter, not a regression —
        # as long as a real case is still being compared
        baseline = _payload(tiny=0.01, big=1.0)
        current = _payload(tiny=0.03, big=1.0)
        assert check_regression(current, baseline) == []

    def test_all_tiny_cases_is_zero_comparable(self):
        problems = check_regression(_payload(tiny=0.01), _payload(tiny=0.01))
        assert problems and "no comparable benchmarks" in problems[0]

    def test_missing_calibration_fails(self):
        bad = _payload(case_a=1.0)
        bad["calibration_s"] = 0.0
        assert check_regression(bad, _payload(case_a=1.0))


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_jobs_must_be_positive(self, capsys):
        assert repro_main(["compare", "tpch-q1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_compare_output_identical_serial_vs_parallel(self, capsys):
        assert repro_main(["compare", "tpch-q1", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert repro_main(["compare", "tpch-q1", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_profile_command_smoke(self, capsys):
        assert repro_main(["profile", "filter", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "profiled filter on iceclave" in out

    def test_bench_check_against_self_passes(self, tmp_path, capsys):
        from repro.perf import bench as bench_mod

        payload = bench_mod.run_bench(quick=True, jobs=1)
        path = write_bench(payload, tmp_path)
        assert check_regression(load_bench(path), payload) == []
