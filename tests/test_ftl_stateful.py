"""Stateful property test: the FTL vs a trivial reference model.

Hypothesis drives random sequences of writes, overwrites, trims, and reads
against the full FTL (with GC and wear leveling active) and checks that it
always agrees with a plain dict — the strongest statement that
out-of-place writes, relocations, and erases never lose or corrupt data.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.flash import FlashChip, PageState
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl

GEOMETRY = small_geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=8,
)


class FtlMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ftl = Ftl(
            GEOMETRY,
            chip=FlashChip(GEOMETRY, store_data=True),
            gc_watermark=2,
            wear_threshold=8,
        )
        self.model = {}  # lpa -> bytes
        # keep occupancy below the physical ceiling so GC can always win
        self.max_live = self.ftl.logical_pages // 2

    lpas = Bundle("lpas")

    @rule(target=lpas, lpa=st.integers(min_value=0, max_value=60),
          payload=st.binary(min_size=1, max_size=16))
    def write(self, lpa, payload):
        lpa = lpa % self.ftl.logical_pages
        if lpa not in self.model and len(self.model) >= self.max_live:
            return lpa  # keep occupancy bounded
        self.ftl.write(lpa, payload)
        self.model[lpa] = payload
        return lpa

    @rule(lpa=lpas, payload=st.binary(min_size=1, max_size=16))
    def overwrite(self, lpa, payload):
        if lpa in self.model:
            self.ftl.write(lpa, payload)
            self.model[lpa] = payload

    @rule(lpa=lpas)
    def trim(self, lpa):
        if lpa in self.model:
            self.ftl.trim(lpa)
            del self.model[lpa]

    @rule(lpa=lpas)
    def read_matches_model(self, lpa):
        if lpa in self.model:
            assert self.ftl.read_data(lpa) == self.model[lpa]

    @invariant()
    def mapped_set_matches(self):
        assert len(self.ftl.mapping) == len(self.model)

    @invariant()
    def forward_reverse_consistent(self):
        for lpa, entry in self.ftl.mapping.items():
            assert self.ftl.mapping.lpa_of_ppa(entry.ppa) == lpa

    @invariant()
    def mapped_pages_are_valid_on_chip(self):
        for lpa, entry in self.ftl.mapping.items():
            assert self.ftl.chip.page_state(entry.ppa) is PageState.VALID

    @invariant()
    def free_space_never_exhausted(self):
        assert self.ftl.allocator.total_free_blocks() >= 1


FtlMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestFtlStateful = FtlMachine.TestCase
