"""Tests for RunResult comparison helpers."""

import pytest

from repro.platform.metrics import RunResult, geometric_mean


def make(total, **components):
    return RunResult(workload="w", scheme="s", total_time=total, components=components)


class TestRunResult:
    def test_speedup(self):
        assert make(5.0).speedup_over(make(10.0)) == pytest.approx(2.0)

    def test_overhead(self):
        assert make(10.75).overhead_over(make(10.0)) == pytest.approx(0.075)

    def test_zero_time_comparisons_rejected(self):
        with pytest.raises(ValueError):
            make(0.0).speedup_over(make(1.0))
        with pytest.raises(ValueError):
            make(1.0).overhead_over(make(0.0))

    def test_exposed_sums_to_total(self):
        r = make(10.0, load=6.0, compute=6.0)  # overlapping components
        exposed = r.exposed()
        assert sum(exposed.values()) == pytest.approx(10.0)
        assert exposed["load"] == exposed["compute"]

    def test_exposed_drops_zero_components(self):
        r = make(10.0, load=5.0, security=0.0)
        assert "security" not in r.exposed()

    def test_exposed_handles_empty(self):
        assert make(3.0).exposed() == {"total": 3.0}


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
