"""Tests for RunResult comparison helpers."""

import pytest

from repro.platform.metrics import RunResult, geometric_mean


def make(total, **components):
    return RunResult(workload="w", scheme="s", total_time=total, components=components)


class TestRunResult:
    def test_speedup(self):
        assert make(5.0).speedup_over(make(10.0)) == pytest.approx(2.0)

    def test_overhead(self):
        assert make(10.75).overhead_over(make(10.0)) == pytest.approx(0.075)

    def test_zero_time_comparisons_rejected(self):
        with pytest.raises(ValueError):
            make(0.0).speedup_over(make(1.0))
        with pytest.raises(ValueError):
            make(1.0).overhead_over(make(0.0))

    def test_exposed_sums_to_total(self):
        r = make(10.0, load=6.0, compute=6.0)  # overlapping components
        exposed = r.exposed()
        assert sum(exposed.values()) == pytest.approx(10.0)
        assert exposed["load"] == exposed["compute"]

    def test_exposed_drops_zero_components(self):
        r = make(10.0, load=5.0, security=0.0)
        assert "security" not in r.exposed()

    def test_exposed_handles_empty(self):
        assert make(3.0).exposed() == {"total": 3.0}


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSloBoard:
    """Per-tenant aggregation helpers used by the serve-lab report."""

    def _board(self):
        from repro.platform.metrics import SloBoard, SloObjectives

        return SloBoard(SloObjectives(availability=0.9, p99_read_s=1e-3))

    def test_trackers_created_on_demand(self):
        board = self._board()
        assert board.tenant_ids() == []
        board.record(7, 0.0, "read", 1e-4, ok=True)
        board.record(3, 0.0, "read", 1e-4, ok=False)
        assert board.tenant_ids() == [3, 7]
        assert board.total == 2
        assert board.failures == 1
        assert board.availability() == pytest.approx(0.5)

    def test_empty_board_is_fully_available(self):
        board = self._board()
        assert board.availability() == 1.0
        assert board.summary_lines()[0].startswith("tenants=0")

    def test_worst_tenants_ranked_by_budget_burn(self):
        board = self._board()
        # tenant 1: 10 requests, 5 failures -> burn 5 (allowed 1)
        for i in range(10):
            board.record(1, 0.0, "read", 1e-4, ok=i >= 5)
        # tenant 2: 10 requests, 1 failure -> burn exactly 1.0
        for i in range(10):
            board.record(2, 0.0, "read", 1e-4, ok=i >= 1)
        # tenant 3: clean
        for _ in range(10):
            board.record(3, 0.0, "read", 1e-4, ok=True)
        worst = board.worst_tenants(2)
        assert [slo.tenant_id for slo in worst] == [1, 2]
        assert worst[0].budget_burn == pytest.approx(5.0)
        assert worst[1].budget_burn == pytest.approx(1.0)
        assert board.tenants_out_of_budget() == 2

    def test_worst_tenants_tie_breaks_by_id(self):
        board = self._board()
        for tenant in (9, 4, 6):
            for i in range(10):
                board.record(tenant, 0.0, "read", 1e-4, ok=i >= 2)
        assert [slo.tenant_id for slo in board.worst_tenants(3)] == [4, 6, 9]

    def test_top_k_bounds_and_validation(self):
        board = self._board()
        board.record(1, 0.0, "read", 1e-4)
        assert len(board.worst_tenants(10)) == 1
        with pytest.raises(ValueError):
            board.worst_tenants(0)

    def test_summary_lines_deterministic(self):
        def build():
            board = self._board()
            for tenant in (5, 2, 8):
                for i in range(6):
                    board.record(tenant, i * 1e-4, "read", 2e-4, ok=i != tenant % 3)
            return board.summary_lines()

        lines = build()
        assert lines == build()
        assert lines[0].startswith("tenants=3 requests=18")
        assert any(line.startswith("worst: tenant=") for line in lines[1:])
