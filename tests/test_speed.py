"""Tests for the repro.speed fast paths.

Every fast path must be *fingerprint-identical* to the plain code it
replaces, so most tests here are differential: run the batched/compiled
implementation and the reference implementation side by side and require
exact equality — bitwise for floats, not approximate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import speed
from repro.cli import main as repro_main
from repro.core.exceptions import IntegrityError
from repro.core.integrity import BonsaiMerkleTree
from repro.core.mee import FunctionalMee
from repro.crypto.trivium_fast import TriviumFast
from repro.flash.geometry import small_geometry
from repro.flash.ssd import FlashDevice
from repro.flash.storm import (
    StormUnsupported,
    run_read_storm,
    run_read_storm_events,
)
from repro.flash.timing import FlashTiming
from repro.perf.bench import compare_benches, format_compare
from repro.sim.engine import Engine
from repro.sim.slab import Slab

KEY = bytes(range(16))
MAC_KEY = bytes(range(16, 32))


@pytest.fixture
def speed_mode(monkeypatch):
    """Set REPRO_SPEED for one test and restore the cached default after."""

    def set_mode(value):
        monkeypatch.setenv("REPRO_SPEED", value)
        return speed.reload()

    yield set_mode
    monkeypatch.delenv("REPRO_SPEED", raising=False)
    speed.reload()


class TestSpeedSwitch:
    def test_default_mode_is_python(self, speed_mode, monkeypatch):
        monkeypatch.delenv("REPRO_SPEED", raising=False)
        assert speed.reload() == "python"
        assert speed.batch_enabled()
        assert not speed.compiled_requested()

    def test_off_disables_batching(self, speed_mode):
        assert speed_mode("off") == "off"
        assert not speed.batch_enabled()

    def test_unknown_value_falls_back_to_default(self, speed_mode):
        assert speed_mode("turbo-nonsense") == "python"

    def test_lib_refused_outside_compiled_mode(self, speed_mode):
        speed_mode("python")
        assert speed.lib() is None
        assert not speed.compiled_available()

    def test_describe_reports_mode(self, speed_mode):
        speed_mode("off")
        info = speed.describe()
        assert info["mode"] == "off"
        assert "lib_path" in info


class TestEngineBatch:
    def test_batch_matches_individual_schedules(self):
        """schedule_batch is order-equivalent to N schedule() calls."""
        ref, fast = Engine(), Engine()
        ref_fired, fast_fired = [], []
        for tag in "abc":
            ref.schedule(1.0, lambda t=tag: ref_fired.append(t))
        fast.schedule_batch(1.0, [lambda t=tag: fast_fired.append(t) for tag in "abc"])
        ref.run()
        fast.run()
        assert fast_fired == ref_fired == ["a", "b", "c"]
        assert fast.now == ref.now
        assert fast.events_fired == ref.events_fired

    def test_batch_interleaves_with_heap_events(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("heap2"))
        engine.schedule_batch(1.0, [lambda: fired.append("b1a"), lambda: fired.append("b1b")])
        engine.schedule(1.5, lambda: fired.append("heap15"))
        engine.run()
        assert fired == ["b1a", "b1b", "heap15", "heap2"]

    def test_out_of_order_batches_fall_back_to_heap(self):
        engine = Engine()
        fired = []
        engine.schedule_batch(5.0, [lambda: fired.append("late")])
        engine.schedule_batch(1.0, [lambda: fired.append("early")])
        engine.run()
        assert fired == ["early", "late"]

    def test_run_until_is_run_with_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 2]

    def test_batch_during_run_fires_same_run(self):
        engine = Engine()
        fired = []

        def cascade():
            engine.schedule_batch(1.0, [lambda: fired.append("x"), lambda: fired.append("y")])

        engine.schedule(1.0, cascade)
        engine.run()
        assert fired == ["x", "y"]
        assert engine.now == 2.0

    def test_snapshot_rejects_due_lane_entries(self):
        engine = Engine()
        engine.schedule_batch(1.0, [lambda: None])
        with pytest.raises(RuntimeError):
            engine.snapshot_state()


class TestEventRecycling:
    def test_cancel_recycle_pools_after_skip(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("dead"))
        engine.schedule(2.0, lambda: fired.append("live"))
        assert engine.cancel(event, recycle=True)
        engine.run()
        assert fired == ["live"]
        assert engine.pooled_events == 1

    def test_recycled_handle_is_reused(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.cancel(event, recycle=True)
        engine.run()  # reclaims the handle while skipping the dead entry
        assert engine.pooled_events == 1
        fired = []
        again = engine.schedule(1.0, lambda: fired.append("new"))
        assert again is event  # same object, reinitialized
        assert engine.pooled_events == 0
        engine.run()
        assert fired == ["new"]

    def test_recycled_handle_never_fires_stale_callback(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("stale"))
        engine.cancel(event, recycle=True)
        engine.run()
        engine.schedule(1.0, lambda: fired.append("fresh"))
        engine.run()
        assert fired == ["fresh"]

    def test_plain_cancel_does_not_pool(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.cancel(event)
        engine.run()
        assert engine.pooled_events == 0
        assert event.cancelled

    def test_absorb_requires_quiescence(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            engine.absorb(2.0, 1, 1)
        engine.run()
        engine.absorb(5.0, 3, 3)
        assert engine.now == 5.0
        assert engine.events_fired == 4


def _storm_pair(n, window, channels=4):
    """Run the same storm through the batched kernel and the event engine."""
    devices = []
    for _ in range(2):
        engine = Engine()
        geometry = small_geometry(channels=channels)
        devices.append(FlashDevice(engine, geometry, FlashTiming()))
    fast, ref = devices
    ppas = list(range(min(n, fast.geometry.total_pages)))
    fast_events = run_read_storm(fast, ppas, window=window)
    ref_events = run_read_storm_events(ref, ppas, window=window)
    return fast, ref, fast_events, ref_events


def _assert_devices_identical(fast, ref):
    assert fast.engine.now == ref.engine.now  # bitwise float equality
    assert fast.engine.events_fired == ref.engine.events_fired
    assert fast.engine._seq == ref.engine._seq
    assert fast._page_reads.value == ref._page_reads.value
    for fast_res, ref_res in zip(
        list(fast.dies) + list(fast.channels), list(ref.dies) + list(ref.channels)
    ):
        assert fast_res.jobs_completed == ref_res.jobs_completed
        assert fast_res.total_service_time == ref_res.total_service_time
        assert fast_res.total_wait_time == ref_res.total_wait_time
        assert fast_res.max_queue_depth == ref_res.max_queue_depth
        assert not fast_res.busy and not fast_res.queue_depth


class TestStormKernel:
    @pytest.mark.parametrize(
        "n,window", [(1, 64), (5, 1), (63, 64), (64, 64), (500, 7), (2000, 64)]
    )
    def test_python_kernel_bit_identical_to_event_path(self, n, window, speed_mode):
        speed_mode("python")
        fast, ref, fast_events, ref_events = _storm_pair(n, window)
        assert fast_events == ref_events
        _assert_devices_identical(fast, ref)

    @pytest.mark.parametrize("n,window", [(64, 64), (500, 7), (2000, 64)])
    def test_compiled_kernel_bit_identical_to_event_path(self, n, window, speed_mode):
        speed_mode("compiled")
        if not speed.compiled_available():
            pytest.skip("compiled speed library not built")
        fast, ref, fast_events, ref_events = _storm_pair(n, window)
        assert fast_events == ref_events
        _assert_devices_identical(fast, ref)

    def test_off_mode_raises_unsupported(self, speed_mode):
        speed_mode("off")
        engine = Engine()
        device = FlashDevice(engine, small_geometry(channels=4), FlashTiming())
        with pytest.raises(StormUnsupported):
            run_read_storm(device, [0, 1, 2])

    def test_read_storm_falls_back_in_off_mode(self, speed_mode):
        speed_mode("off")
        engine = Engine()
        device = FlashDevice(engine, small_geometry(channels=4), FlashTiming())
        events = device.read_storm(range(10))
        assert events == engine.events_fired == 20

    def test_busy_device_rejected(self, speed_mode):
        speed_mode("python")
        engine = Engine()
        device = FlashDevice(engine, small_geometry(channels=4), FlashTiming())
        device.read(0)  # leaves work queued on the engine
        with pytest.raises(StormUnsupported):
            run_read_storm(device, [1, 2])

    def test_empty_storm_is_a_noop(self, speed_mode):
        speed_mode("python")
        engine = Engine()
        device = FlashDevice(engine, small_geometry(channels=4), FlashTiming())
        assert device.read_storm([]) == 0
        assert engine.now == 0.0

    def test_storm_composes_with_later_event_reads(self, speed_mode):
        """A storm then normal reads equals all-normal reads, bit for bit."""
        speed_mode("python")
        fast, ref, _, _ = _storm_pair(100, 64)
        fast.read(3)
        ref.read(3)
        fast.engine.run()
        ref.engine.run()
        _assert_devices_identical(fast, ref)


class TestTriviumCompiled:
    def test_compiled_keystream_matches_pure_python(self, speed_mode):
        speed_mode("compiled")
        if not speed.compiled_available():
            pytest.skip("compiled speed library not built")
        fast = TriviumFast(KEY[:10], KEY[6:])
        speed_mode("off")
        pure = TriviumFast(KEY[:10], KEY[6:])
        speed_mode("compiled")
        for nbytes in (1, 7, 64, 333, 1024):
            assert fast.keystream(nbytes) == pure.keystream(nbytes)


leaf_bytes = st.binary(min_size=1, max_size=12)
batches = st.lists(
    st.lists(st.tuples(st.integers(0, 63), leaf_bytes), min_size=0, max_size=20),
    min_size=1,
    max_size=6,
)


class TestMerkleIncremental:
    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_update_batch_identical_to_sequential_updates(self, update_batches):
        """S3: random batched updates produce the same tree as per-leaf ones."""
        leaves = [bytes([i]) * 4 for i in range(64)]
        batched = BonsaiMerkleTree(MAC_KEY)
        sequential = BonsaiMerkleTree(MAC_KEY)
        batched.build(list(leaves))
        sequential.build(list(leaves))
        latest = dict(enumerate(leaves))
        for batch in update_batches:
            batched.update_batch(batch)
            for index, leaf in batch:
                sequential.update(index, leaf)
                latest[index] = leaf
            assert batched.root == sequential.root
            assert batched.dram_nodes == sequential.dram_nodes
            assert batched.updates == sequential.updates
            for index in (0, 31, 63):
                assert batched.verify(index, latest[index]) == sequential.verify(
                    index, latest[index]
                )

    def test_batch_saves_node_writes_on_shared_paths(self):
        tree = BonsaiMerkleTree(MAC_KEY)
        tree.build([bytes([i]) for i in range(64)])
        # 8 sibling leaves share every interior node on their paths
        writes = tree.update_batch([(i, bytes([0x80 + i])) for i in range(8)])
        assert writes == 8 + tree.depth  # one parent chain, not eight

    def test_tamper_detected_after_batched_update(self):
        tree = BonsaiMerkleTree(MAC_KEY)
        tree.build([bytes([i]) for i in range(64)])
        tree.update_batch([(i, bytes([0x40 + i])) for i in range(16)])
        # node (1, 0) sits on leaf 9's sibling set; verify recomputes leaf
        # 9's own path but trusts stored siblings, so this must be caught
        tree.corrupt_node(1, 0)
        with pytest.raises(IntegrityError):
            tree.verify(9, bytes([0x49]))

    def test_replayed_leaf_detected_after_batched_update(self):
        tree = BonsaiMerkleTree(MAC_KEY)
        tree.build([bytes([i]) for i in range(64)])
        tree.update_batch([(5, b"new-epoch")])
        with pytest.raises(IntegrityError):
            tree.verify(5, bytes([5]))  # stale (replayed) leaf value

    def test_memo_stays_bounded(self):
        from repro.core import integrity

        tree = BonsaiMerkleTree(MAC_KEY)
        tree.build([bytes([i]) for i in range(64)])
        for round_no in range(50):
            tree.update_batch([(i, bytes([round_no, i])) for i in range(0, 64, 3)])
        assert len(tree._memo) <= integrity._MEMO_MAX


class TestWriteLinesBatch:
    def test_write_lines_identical_to_write_line_loop(self):
        items = [
            (page, line, bytes([page, line, rep]) * 3)
            for rep in range(2)
            for page in (0, 1, 3)
            for line in (0, 2, 5)
        ]
        batched = FunctionalMee(4, KEY, MAC_KEY)
        sequential = FunctionalMee(4, KEY, MAC_KEY)
        batched.write_lines(list(items))
        for page, line, plaintext in items:
            sequential.write_line(page, line, plaintext)
        assert batched.snapshot_state() == sequential.snapshot_state()
        for page, line, _ in items:
            assert batched.read_line(page, line) == sequential.read_line(page, line)


class TestNvmeSlab:
    def _queue_pair(self):
        from repro.host.nvme import NvmeQueuePair
        from repro.host.pcie import PcieLink

        engine = Engine()
        return engine, NvmeQueuePair(engine, PcieLink())

    def test_drain_recycles_records_and_keeps_aggregates(self):
        engine, qp = self._queue_pair()
        for _ in range(8):
            qp.submit("read", 4096)
        engine.run()
        assert qp.completed_count == 8
        assert qp.completed_bytes == 8 * 4096
        throughput = qp.throughput_bytes_per_s()
        assert qp.drain_completed() == 8
        assert qp.completed == []
        assert qp.completed_count == 8
        assert qp.throughput_bytes_per_s() == throughput
        for _ in range(4):
            qp.submit("write", 512)
        engine.run()
        assert qp.slab_stats["reused"] >= 4
        assert qp.completed_count == 12
        assert qp.completed_bytes == 8 * 4096 + 4 * 512

    def test_timeout_handles_are_recycled(self):
        engine, qp = self._queue_pair()
        for _ in range(16):
            qp.submit("read", 4096, timeout=10.0)
        engine.run()
        assert qp.timeouts == 0
        # cancelled timers were reclaimed into the engine's event pool
        assert engine.pooled_events > 0

    def test_snapshot_roundtrip_preserves_aggregates(self):
        engine, qp = self._queue_pair()
        for _ in range(3):
            qp.submit("read", 1024)
        engine.run()
        qp.drain_completed()
        state = qp.snapshot_state()
        _, fresh = self._queue_pair()
        fresh.restore_state(state)
        assert fresh.completed_count == 3
        assert fresh.completed_bytes == 3 * 1024


class TestSlab:
    def test_acquire_release_reuses_objects(self):
        slab = Slab(list, max_size=2)
        a = slab.acquire()
        slab.release(a)
        assert slab.acquire() is a
        assert slab.stats()["reused"] == 1

    def test_release_beyond_cap_drops(self):
        slab = Slab(list, max_size=1)
        slab.release([])
        slab.release([])
        assert len(slab) == 1


class TestBenchCompare:
    def _payload(self, wall, cal, mode="quick", rate=None):
        return {
            "schema": 1,
            "mode": mode,
            "calibration_s": cal,
            "benchmarks": [
                {
                    "name": "kernel-flash-read",
                    "wall_s": wall,
                    "events": 4000,
                    "events_per_s": rate,
                }
            ],
        }

    def test_speedup_is_calibration_normalized(self):
        baseline = self._payload(2.0, 0.1, rate=1000.0)
        current = self._payload(1.0, 0.2, rate=5000.0)  # machine is 2x slower
        comparison = compare_benches(baseline, current)
        case = comparison["cases"][0]
        assert case["speedup"] == pytest.approx(4.0)
        assert case["event_rate_ratio"] == pytest.approx(5.0)
        assert "kernel-flash-read" in format_compare(comparison)

    def test_mode_mismatch_suppresses_wall_speedups(self):
        comparison = compare_benches(
            self._payload(2.0, 0.1, mode="quick"), self._payload(1.0, 0.1, mode="full")
        )
        assert not comparison["comparable_modes"]
        assert comparison["cases"][0]["speedup"] is None
        assert "WARNING" in format_compare(comparison)

    def test_cli_compare_runs_without_measuring(self, tmp_path, capsys):
        import json

        a = tmp_path / "BENCH_0.json"
        b = tmp_path / "BENCH_1.json"
        a.write_text(json.dumps(self._payload(2.0, 0.1)))
        b.write_text(json.dumps(self._payload(1.0, 0.1)))
        out = tmp_path / "cmp.json"
        rc = repro_main(
            ["bench", "--compare", str(a), str(b), "--compare-json", str(out)]
        )
        assert rc == 0
        assert "kernel-flash-read" in capsys.readouterr().out
        written = json.loads(out.read_text())
        assert written["cases"][0]["speedup"] == pytest.approx(2.0)


class TestProfilerAllocs:
    def test_top_allocs_table_in_report(self):
        from repro.perf.profiler import profile_run

        report = profile_run("filter", scheme="host", top=5, top_allocs=5)
        assert "allocation sites" in report.alloc_table
        assert "allocation sites" in report.format()

    def test_cli_flag(self, capsys):
        rc = repro_main(["profile", "filter", "--scheme", "host", "--top-allocs", "3"])
        assert rc == 0
        assert "allocation sites" in capsys.readouterr().out


class TestFingerprintStability:
    def test_platform_fingerprint_identical_across_modes(self, speed_mode):
        """The paper pipeline produces the same fingerprint in every mode."""
        from repro.platform.config import PlatformConfig
        from repro.platform.schemes import make_platform
        from repro.workloads import workload_by_name

        profile = workload_by_name("filter").run()
        fingerprints = {}
        for mode_name in ("off", "python"):
            speed_mode(mode_name)
            result = make_platform("iceclave", PlatformConfig()).run(profile)
            fingerprints[mode_name] = result.fingerprint()
        assert fingerprints["off"] == fingerprints["python"]
