"""Tests for the memory encryption engine (hybrid counters, SC-64)."""

import pytest

from repro.core import CounterCache, EncryptionScheme, IceClaveConfig, IntegrityError
from repro.core.mee import (
    FunctionalMee,
    LINES_PER_PAGE,
    MAJOR_COUNTERS_PER_BLOCK,
    MemoryEncryptionEngine,
)


def make_mee(scheme=EncryptionScheme.HYBRID, cache_kib=128):
    config = IceClaveConfig(counter_cache_bytes=cache_kib * 1024)
    return MemoryEncryptionEngine(config=config, scheme=scheme)


class TestCounterCache:
    def test_hit_miss(self):
        cache = CounterCache(1024)
        hit, _ = cache.access("a")
        assert not hit
        hit, _ = cache.access("a")
        assert hit

    def test_dirty_eviction_returns_victim(self):
        cache = CounterCache(2 * 64)  # 2 lines
        cache.access("a", dirty=True)
        cache.access("b")
        _, victim = cache.access("c")  # evicts dirty "a"
        assert victim == "a"
        assert cache.dirty_evictions == 1

    def test_clean_eviction_returns_none(self):
        cache = CounterCache(2 * 64)
        cache.access("a")
        cache.access("b")
        _, victim = cache.access("c")
        assert victim is None
        assert cache.clean_evictions == 1

    def test_flush_counts_dirty(self):
        cache = CounterCache(1024)
        cache.access("a", dirty=True)
        cache.access("b")
        assert cache.flush() == 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CounterCache(10)


class TestSchemes:
    def test_none_scheme_is_free(self):
        mee = make_mee(EncryptionScheme.NONE)
        r = mee.read(0, 0)
        w = mee.write(0, 0)
        assert r.latency == 0 and w.latency == 0
        assert mee.stats.encryption_extra_traffic() == 0.0

    def test_read_costs_less_after_counter_cached(self):
        mee = make_mee()
        first = mee.read(0, 0)
        second = mee.read(0, 1)
        assert not first.counter_hit
        assert second.counter_hit
        assert second.latency < first.latency

    def test_hybrid_major_block_covers_eight_pages(self):
        """One major-counter line serves 8 read-only pages: 1 counter miss."""
        mee = make_mee(EncryptionScheme.HYBRID)
        misses = 0
        for page in range(MAJOR_COUNTERS_PER_BLOCK):
            if not mee.read(page, 0, readonly=True).counter_hit:
                misses += 1
        assert misses == 1

    def test_sc64_one_counter_line_per_page(self):
        mee = make_mee(EncryptionScheme.SPLIT_COUNTER)
        misses = 0
        for page in range(MAJOR_COUNTERS_PER_BLOCK):
            if not mee.read(page, 0, readonly=True).counter_hit:
                misses += 1
        assert misses == MAJOR_COUNTERS_PER_BLOCK

    def test_hybrid_beats_sc64_on_streaming_reads(self):
        """The Figure 8 mechanism: 8x counter coverage => less extra traffic."""
        results = {}
        for scheme in (EncryptionScheme.SPLIT_COUNTER, EncryptionScheme.HYBRID):
            mee = make_mee(scheme, cache_kib=8)  # small cache to expose misses
            for page in range(4096):
                for line in range(0, LINES_PER_PAGE, 8):
                    mee.read(page, line, readonly=True)
            results[scheme] = mee.stats.encryption_extra_traffic()
        assert results[EncryptionScheme.HYBRID] < results[EncryptionScheme.SPLIT_COUNTER]

    def test_write_dirties_counter_state(self):
        mee = make_mee()
        mee.write(0, 0, readonly=False)
        major, minor = mee.counter_of(0, 0, readonly=False)
        assert minor == 1

    def test_minor_overflow_reencrypts_page(self):
        mee = make_mee()
        limit = mee.config.minor_counter_limit
        reencrypted = False
        for _ in range(limit):
            reencrypted = mee.write(0, 0, readonly=False).reencrypted_page
        assert reencrypted
        assert mee.stats.minor_overflows == 1
        # counters reset; a fresh major
        major, minor = mee.counter_of(0, 0, readonly=False)
        assert major == 1 and minor == 0

    def test_hybrid_promotion_on_write_to_readonly_page(self):
        """§4.4 dynamic permission change: read-only -> writable."""
        mee = make_mee(EncryptionScheme.HYBRID)
        mee.read(0, 0, readonly=True)  # establishes major-counter use
        result = mee.write(0, 0, readonly=True)
        assert result.reencrypted_page
        assert mee.stats.permission_promotions == 1
        # the page now uses split counters
        assert mee._uses_split_block(0, readonly=True)

    def test_make_readonly_demotes(self):
        mee = make_mee(EncryptionScheme.HYBRID)
        mee.write(0, 0, readonly=True)
        old_major, _ = mee.counter_of(0, 0, readonly=False)
        mee.make_readonly(0)
        assert not mee._uses_split_block(0, readonly=True)
        new_major, _ = mee.counter_of(0, 0, readonly=True)
        assert new_major == old_major + 1  # §4.4: incremented on copy-back

    def test_write_heavy_traffic_exceeds_read_heavy(self):
        """Table 6's gradient: write ratio drives extra traffic.

        Reads stream a read-only input region; writes churn a writable
        intermediate region (dirty counter/MAC/tree lines get written back).
        """
        def run(writes_per_page):
            mee = make_mee(cache_kib=16)
            for page in range(512):
                for line in range(LINES_PER_PAGE):
                    mee.read(page, line, readonly=True)
                for w in range(writes_per_page):
                    mee.write(4096 + page, w % LINES_PER_PAGE, readonly=False)
            return (mee.stats.encryption_extra_traffic()
                    + mee.stats.verification_extra_traffic())

        assert run(writes_per_page=32) > run(writes_per_page=1)

    def test_latency_means_are_positive(self):
        mee = make_mee()
        for i in range(100):
            mee.read(i % 16, i % LINES_PER_PAGE)
            mee.write(i % 16, i % LINES_PER_PAGE, readonly=False)
        assert mee.stats.mean_encryption_latency() > 0
        assert mee.stats.mean_verification_latency() > 0

    def test_line_bounds_checked(self):
        with pytest.raises(ValueError):
            make_mee().read(0, LINES_PER_PAGE)


class TestFunctionalMee:
    def make(self):
        return FunctionalMee(pages=8, aes_key=b"0123456789abcdef", mac_key=b"mac-key")

    def test_write_read_roundtrip(self):
        mee = self.make()
        mee.write_line(0, 0, b"secret intermediate data" + bytes(40))
        assert mee.read_line(0, 0).startswith(b"secret intermediate data")

    def test_ciphertext_differs_from_plaintext(self):
        mee = self.make()
        plain = b"A" * 64
        mee.write_line(1, 2, plain)
        assert mee.dram_ciphertext[(1, 2)] != plain

    def test_same_plaintext_twice_different_ciphertext(self):
        """Counter bump => temporal uniqueness of the OTP."""
        mee = self.make()
        mee.write_line(0, 0, b"A" * 64)
        ct1 = mee.dram_ciphertext[(0, 0)]
        mee.write_line(0, 0, b"A" * 64)
        ct2 = mee.dram_ciphertext[(0, 0)]
        assert ct1 != ct2

    def test_tampered_ciphertext_detected(self):
        mee = self.make()
        mee.write_line(0, 0, b"B" * 64)
        ct = bytearray(mee.dram_ciphertext[(0, 0)])
        ct[0] ^= 1
        mee.dram_ciphertext[(0, 0)] = bytes(ct)
        with pytest.raises(IntegrityError):
            mee.read_line(0, 0)

    def test_replayed_line_detected(self):
        """Replay: restore an old (ciphertext, MAC) pair -> tree catches it."""
        mee = self.make()
        mee.write_line(0, 0, b"v1" + bytes(62))
        stale = (mee.dram_ciphertext[(0, 0)], mee.dram_macs[(0, 0)])
        mee.write_line(0, 0, b"v2" + bytes(62))
        mee.dram_ciphertext[(0, 0)], mee.dram_macs[(0, 0)] = stale
        with pytest.raises(IntegrityError):
            mee.read_line(0, 0)

    def test_unwritten_line_raises(self):
        with pytest.raises(KeyError):
            self.make().read_line(0, 1)

    def test_bounds(self):
        mee = self.make()
        with pytest.raises(ValueError):
            mee.write_line(8, 0, b"x")
