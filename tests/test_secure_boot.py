"""Tests for the secure-boot chain."""

import pytest

from repro.core.secure_boot import (
    BootRom,
    FirmwareImage,
    SecureBootError,
    VendorSigner,
)

SECRET = b"vendor-manufacturing-key"


def signed_chain(signer=None, version=1):
    signer = signer or VendorSigner(SECRET)
    return [
        signer.sign("bootloader", b"BL" * 100, version),
        signer.sign("ftl", b"FTL" * 200, version),
        signer.sign("iceclave-runtime", b"ICR" * 150, version),
    ]


class TestBootChain:
    def test_genuine_chain_boots(self):
        rom = BootRom(SECRET)
        report = rom.boot(signed_chain())
        assert report.stages == ["bootloader", "ftl", "iceclave-runtime"]
        assert len(report.chain_measurement()) == 16

    def test_tampered_payload_halts(self):
        rom = BootRom(SECRET)
        chain = signed_chain()
        evil = FirmwareImage("ftl", b"EVIL" * 200, 1, chain[1].signature)
        chain[1] = evil
        with pytest.raises(SecureBootError, match="signature"):
            rom.boot(chain)

    def test_unsigned_vendor_rejected(self):
        rom = BootRom(SECRET)
        other = VendorSigner(b"a-counterfeit-vendor-key")
        with pytest.raises(SecureBootError, match="signature"):
            rom.boot(signed_chain(signer=other))

    def test_missing_stage_rejected(self):
        rom = BootRom(SECRET)
        with pytest.raises(SecureBootError, match="missing"):
            rom.boot(signed_chain()[:2])

    def test_unknown_stage_rejected(self):
        rom = BootRom(SECRET)
        rogue = VendorSigner(SECRET).sign("bootloader", b"x", 1)
        bad = FirmwareImage("rootkit", rogue.payload, 1, rogue.signature)
        with pytest.raises(SecureBootError):
            rom.verify(bad)

    def test_rollback_protection(self):
        """Once v2 boots, a signed-but-old v1 image no longer boots."""
        rom = BootRom(SECRET)
        rom.boot(signed_chain(version=2))
        with pytest.raises(SecureBootError, match="rolled back"):
            rom.boot(signed_chain(version=1))

    def test_failed_boot_does_not_advance_rollback_floor(self):
        rom = BootRom(SECRET)
        chain = signed_chain(version=3)
        chain[2] = FirmwareImage("iceclave-runtime", b"EVIL", 3, b"\x00" * 8)
        with pytest.raises(SecureBootError):
            rom.boot(chain)
        # a clean version-2 chain still boots: the partial v3 attempt
        # must not have committed its floor
        rom.boot(signed_chain(version=2))

    def test_chain_measurement_binds_every_stage(self):
        rom = BootRom(SECRET)
        m1 = rom.boot(signed_chain(version=1)).chain_measurement()
        signer = VendorSigner(SECRET)
        chain = signed_chain(version=1)
        chain[1] = signer.sign("ftl", b"FTL-PATCHED" * 50, 1)
        m2 = rom.boot(chain).chain_measurement()
        assert m1 != m2

    def test_weak_vendor_secret_rejected(self):
        with pytest.raises(ValueError):
            VendorSigner(b"weak")
