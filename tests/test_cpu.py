"""Tests for cache hierarchy and analytic core models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import (
    Cache,
    CacheHierarchy,
    CORTEX_A53,
    CORTEX_A72,
    INTEL_I7_7700K,
    core_by_name,
)


class TestCache:
    def test_hit_after_fill(self):
        cache = Cache("L1", 1024, assoc=2)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_line_granularity(self):
        cache = Cache("L1", 1024, assoc=2, line_bytes=64)
        cache.access(0)
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_within_set(self):
        # 2-way, force 3 tags into one set
        cache = Cache("L1", 2 * 64, assoc=2, line_bytes=64)  # a single set
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh tag 0; tag 1 is LRU
        cache.access(128)  # evicts tag 1
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_capacity_eviction(self):
        cache = Cache("L1", 1024, assoc=2)
        lines = 1024 // 64
        for i in range(lines * 3):
            cache.access(i * 64)
        assert cache.access(0) is False  # long since evicted

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Cache("x", 0, 1)
        with pytest.raises(ValueError):
            Cache("x", 100, 3, line_bytes=64)

    def test_hit_rate(self):
        cache = Cache("L1", 4096, assoc=4)
        for _ in range(4):
            for i in range(8):
                cache.access(i * 64)
        assert cache.hit_rate == pytest.approx(24 / 32)


class TestHierarchy:
    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy([Cache("L1", 512, 2), Cache("L2", 64 * 1024, 8)])
        footprint = 128  # lines; way over L1 (8 lines), well within L2
        for _ in range(2):
            for i in range(footprint):
                h.access(i * 64)
        # second pass should hit mostly in L2
        rates = {c.name: c.hit_rate for c in h.levels}
        assert rates["L2"] > 0.4

    def test_run_trace_reports_memory_rate(self):
        h = CacheHierarchy([Cache("L1", 512, 2)])
        rates = h.run_trace([i * 64 for i in range(100)])
        assert rates["memory"] == pytest.approx(1.0)  # pure streaming misses

    def test_small_working_set_stays_in_l1(self):
        h = CacheHierarchy()
        trace = [(i % 8) * 64 for i in range(1000)]
        rates = h.run_trace(trace)
        assert rates["memory"] < 0.01


class TestCoreModel:
    def test_presets_lookup(self):
        assert core_by_name("cortex-a72") is CORTEX_A72
        with pytest.raises(KeyError):
            core_by_name("pentium")

    def test_host_faster_than_arm(self):
        """The i7 out-computes the A72 on identical work (Fig. 11 compute gap)."""
        work = dict(instructions=1e9, memory_accesses=1e8, memory_miss_rate=0.02)
        assert INTEL_I7_7700K.compute_time(**work) < CORTEX_A72.compute_time(**work)

    def test_a72_beats_a53_at_same_frequency(self):
        """Figure 15: the OoO A72 outperforms the in-order A53."""
        work = dict(instructions=1e9, memory_accesses=1e8, memory_miss_rate=0.02)
        assert CORTEX_A72.compute_time(**work) < CORTEX_A53.compute_time(**work)

    def test_frequency_scaling(self):
        """Figure 15: lower clock => proportionally more issue time."""
        slow = CORTEX_A72.with_frequency(0.8e9)
        t_fast = CORTEX_A72.compute_time(instructions=1e9)
        t_slow = slow.compute_time(instructions=1e9)
        assert t_slow == pytest.approx(2 * t_fast)

    def test_extra_memory_latency_slows_down(self):
        """MEE per-access latency shows up as longer compute time."""
        base = CORTEX_A72.compute_time(1e8, memory_accesses=1e7, memory_miss_rate=0.1)
        mee = CORTEX_A72.compute_time(
            1e8, memory_accesses=1e7, memory_miss_rate=0.1,
            extra_memory_latency_s=250e-9,
        )
        assert mee > base

    def test_invalid_work_rejected(self):
        with pytest.raises(ValueError):
            CORTEX_A72.compute_time(-1)
        with pytest.raises(ValueError):
            CORTEX_A72.compute_time(1, memory_miss_rate=2.0)

    @given(st.floats(min_value=0.4e9, max_value=4e9))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_frequency(self, freq):
        t = CORTEX_A72.with_frequency(freq).compute_time(1e8, 1e6)
        t2 = CORTEX_A72.with_frequency(freq * 2).compute_time(1e8, 1e6)
        assert t2 < t


class TestPrefetcher:
    def test_streaming_hit_rate_improves(self):
        from repro.cpu import NextLinePrefetcher
        plain = CacheHierarchy([Cache("L1", 4096, 4)])
        pf = CacheHierarchy([Cache("L1", 4096, 4)],
                            prefetcher=NextLinePrefetcher(degree=1))
        trace = [i * 64 for i in range(2000)]
        plain_rates = plain.run_trace(trace)
        pf_rates = pf.run_trace(trace)
        assert pf_rates["memory"] < plain_rates["memory"] * 0.75

    def test_random_trace_not_helped(self):
        from repro.cpu import NextLinePrefetcher
        from repro.crypto.prng import XorShift64
        rng = XorShift64(5)
        trace = [rng.next_below(1 << 24) * 64 for _ in range(2000)]
        plain = CacheHierarchy([Cache("L1", 4096, 4)])
        pf = CacheHierarchy([Cache("L1", 4096, 4)],
                            prefetcher=NextLinePrefetcher(degree=1))
        p_rates = plain.run_trace(list(trace))
        f_rates = pf.run_trace(list(trace))
        assert abs(f_rates["memory"] - p_rates["memory"]) < 0.05

    def test_degree_counts_prefetches(self):
        from repro.cpu import NextLinePrefetcher
        pf = NextLinePrefetcher(degree=2)
        addrs = pf.on_miss(0)
        assert addrs == [64, 128]
        assert pf.prefetches_issued == 2

    def test_degree_zero_is_noop(self):
        from repro.cpu import NextLinePrefetcher
        assert NextLinePrefetcher(degree=0).on_miss(0) == []

    def test_negative_degree_rejected(self):
        from repro.cpu import NextLinePrefetcher
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=-1)
