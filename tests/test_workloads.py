"""Tests for the Table 4 workloads: correctness and characterization."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    READ_INTENSIVE,
    WRITE_INTENSIVE,
    workload_by_name,
)
from repro.workloads.synthetic import Filter, make_records
from repro.workloads.tpcb import TpcB
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.queries import TpchQ1, TpchQ3
from repro.workloads.ycsb import (
    DEFAULT_MIX,
    Ycsb,
    mix_write_fraction,
    normalized_mix,
    zipf_weights,
)

# Table 1 of the paper
PAPER_WRITE_RATIOS = {
    "arithmetic": 2.02e-4,
    "aggregate": 2.08e-4,
    "filter": 1.71e-4,
    "tpcb": 5.19e-2,
    "tpcc": 9.05e-2,
    "wordcount": 4.61e-1,
    "tpch-q1": 6.40e-6,
    "tpch-q3": 3.96e-3,
    "tpch-q12": 2.99e-5,
    "tpch-q14": 3.94e-6,
    "tpch-q19": 9.92e-7,
}


@pytest.fixture(scope="module")
def profiles():
    return {name: workload_by_name(name).run() for name in ALL_WORKLOADS}


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        # Table 4's eleven plus the YCSB mix the search genome reshapes
        assert set(ALL_WORKLOADS) == set(PAPER_WRITE_RATIOS) | {"ycsb"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="known:"):
            workload_by_name("sorting")

    def test_read_write_split_covers_all(self):
        assert set(READ_INTENSIVE) | set(WRITE_INTENSIVE) == set(ALL_WORKLOADS)


class TestProfiles:
    def test_every_profile_is_populated(self, profiles):
        for name, p in profiles.items():
            assert p.input_bytes > 0, name
            assert p.instructions > 0, name
            assert p.mem_reads > 0, name
            assert p.trace.events, name

    def test_write_intensity_split_matches_paper(self, profiles):
        """Table 1: the write-intensive trio stands far above the rest."""
        for name in WRITE_INTENSIVE:
            assert profiles[name].write_ratio > 1e-2, name
        for name in READ_INTENSIVE:
            assert profiles[name].write_ratio < 1e-1, name
            assert profiles[name].write_ratio < min(
                profiles[w].write_ratio for w in WRITE_INTENSIVE
            ), name

    def test_wordcount_is_most_write_heavy(self, profiles):
        top = max(profiles.values(), key=lambda p: p.write_ratio)
        assert top.name == "wordcount"

    def test_write_ratios_within_order_of_magnitude_band(self, profiles):
        """Each measured ratio lands in a sensible band around Table 1."""
        for name, paper in PAPER_WRITE_RATIOS.items():
            measured = profiles[name].scaled(32 << 30).write_ratio
            assert measured < max(50 * paper, 5e-4), (name, measured, paper)

    def test_scaling_preserves_write_ratio_order(self, profiles):
        small = sorted(profiles, key=lambda n: profiles[n].write_ratio)
        big = sorted(
            profiles, key=lambda n: profiles[n].scaled(32 << 30).write_ratio
        )
        # the extremes stay the extremes
        assert small[-1] == big[-1] == "wordcount"

    def test_scaled_counts_are_linear(self, profiles):
        p = profiles["filter"]
        double = p.scaled(p.input_bytes * 2)
        assert double.instructions == pytest.approx(2 * p.instructions)
        assert double.trace.dram_reads == pytest.approx(2 * p.trace.dram_reads, rel=0.01)

    def test_deterministic_given_seed(self):
        a = workload_by_name("tpch-q3", seed=9).run()
        b = workload_by_name("tpch-q3", seed=9).run()
        assert a.instructions == b.instructions
        assert a.trace.cpu_writes == b.trace.cpu_writes


class TestSyntheticCorrectness:
    def test_filter_answer_matches_selectivity(self):
        wl = Filter(scale_rows=100_000)
        profile = wl.run()
        expected = 100_000 * Filter.selectivity
        assert profile.answer == pytest.approx(expected, rel=0.5)

    def test_aggregate_answer_is_the_mean(self):
        profile = workload_by_name("aggregate").run()
        table = make_records(50_000, seed=7)
        assert profile.answer == pytest.approx(float(table.column("value").mean()))


class TestTpchCorrectness:
    def test_q1_sums_match_naive(self):
        q1 = TpchQ1(scale_rows=5_000)
        profile = q1.run()
        data = generate(5_000, seed=q1.seed)
        cutoff = 2526 - 90
        mask = data.lineitem.column("shipdate") <= cutoff
        expected_qty = float(data.lineitem.column("quantity")[mask].sum())
        result = profile.answer
        assert float(result.column("quantity_sum").sum()) == pytest.approx(expected_qty)

    def test_q1_group_count_bounded(self):
        profile = TpchQ1(scale_rows=5_000).run()
        assert 1 <= profile.answer.num_rows <= 6  # returnflag x linestatus

    def test_q3_revenue_matches_naive(self):
        q3 = TpchQ3(scale_rows=4_000)
        profile = q3.run()
        data = generate(4_000, seed=q3.seed)
        li, orders, cust = data.lineitem, data.orders, data.customer
        cutoff = 1169
        building = set(
            int(k)
            for k, seg in zip(cust.column("custkey"), cust.column("mktsegment"))
            if seg == 0
        )
        open_orders = {
            int(ok): int(ck)
            for ok, ck, od in zip(
                orders.column("orderkey"), orders.column("custkey"), orders.column("orderdate")
            )
            if od < cutoff and int(ck) in building
        }
        per_order = {}
        for ok, sd, ep, disc in zip(
            li.column("orderkey"), li.column("shipdate"),
            li.column("extendedprice"), li.column("discount"),
        ):
            if sd > cutoff and int(ok) in open_orders:
                per_order[int(ok)] = per_order.get(int(ok), 0.0) + float(ep) * (
                    1 - float(disc)
                )
        naive_top10 = sorted(per_order.values(), reverse=True)[:10]
        measured = sorted(profile.answer.column("revenue_sum").tolist(), reverse=True)
        assert profile.answer.num_rows <= 10  # the spec's LIMIT 10
        assert measured == pytest.approx(naive_top10, rel=1e-5)

    def test_q14_ratio_in_percent_range(self):
        profile = workload_by_name("tpch-q14").run()
        ratio = float(profile.answer.column("promo_revenue")[0])
        assert 0.0 <= ratio <= 100.0

    def test_datagen_row_ratios(self):
        data = generate(40_000, seed=1)
        assert data.orders.num_rows == 10_000
        assert data.customer.num_rows == 1_000
        assert data.lineitem.num_rows == 40_000

    def test_datagen_rejects_tiny_scale(self):
        with pytest.raises(ValueError):
            generate(10)

    def test_lineitem_date_invariants(self):
        data = generate(20_000, seed=2)
        li = data.lineitem
        assert np.all(li.column("receiptdate") > li.column("shipdate"))
        orderdates = data.orders.column("orderdate")[li.column("orderkey")]
        assert np.all(li.column("shipdate") > orderdates)


class TestYcsb:
    def test_deterministic_given_seed(self):
        a = workload_by_name("ycsb", seed=9, scale_rows=6_000).run()
        b = workload_by_name("ycsb", seed=9, scale_rows=6_000).run()
        assert a.answer == b.answer
        assert a.trace.cpu_writes == b.trace.cpu_writes

    def test_seed_changes_answer(self):
        a = workload_by_name("ycsb", seed=1, scale_rows=6_000).run()
        b = workload_by_name("ycsb", seed=2, scale_rows=6_000).run()
        assert a.answer != b.answer

    def test_inserts_grow_the_store(self):
        profile = Ycsb(scale_rows=6_000, seed=7).run()
        checksum, store_size, next_key = profile.answer
        population = max(1024, 6_000 // 3)
        inserts = store_size - population
        assert inserts > 0  # 15% insert mix over 6k ops
        assert next_key == population + inserts

    def test_mix_is_normalized_and_validated(self):
        mix = normalized_mix({"reads": 2.0, "updates": 2.0})
        assert mix == {"inserts": 0.0, "reads": 0.5, "scans": 0.0, "updates": 0.5}
        with pytest.raises(ValueError, match="unknown mix keys"):
            normalized_mix({"deletes": 1.0})
        with pytest.raises(ValueError, match="must be >= 0"):
            normalized_mix({"reads": -0.1, "updates": 1.0})
        with pytest.raises(ValueError, match="all be zero"):
            normalized_mix({"reads": 0.0})

    def test_mix_write_fraction(self):
        assert mix_write_fraction({"reads": 1.0, "updates": 1.0}) == 0.5
        assert mix_write_fraction(DEFAULT_MIX) == pytest.approx(0.40)

    def test_zipf_weights_sum_and_skew(self):
        flat = zipf_weights(100, 0.0)
        skewed = zipf_weights(100, 1.2)
        assert float(flat.sum()) == pytest.approx(1.0)
        assert float(skewed.sum()) == pytest.approx(1.0)
        assert flat[0] == pytest.approx(flat[-1])
        assert skewed[0] > 10 * skewed[-1]  # head concentrates with theta

    def test_write_heavier_mix_raises_write_ratio(self):
        read_heavy = Ycsb(
            scale_rows=6_000, mix={"reads": 0.9, "updates": 0.1}
        ).run()
        write_heavy = Ycsb(
            scale_rows=6_000, mix={"reads": 0.1, "updates": 0.9}
        ).run()
        assert write_heavy.write_ratio > read_heavy.write_ratio


class TestTransactional:
    def test_tpcb_conserves_money(self):
        """Branch balances must equal the sum of all deltas applied."""
        profile = TpcB(scale_rows=5_000).run()
        # the answer is branches.sum(), which must equal sum of deltas —
        # conservation means accounts+tellers+branches all got the same total
        assert isinstance(profile.answer, int)

    def test_tpcb_write_ratio_close_to_paper(self):
        profile = TpcB(scale_rows=5_000).run()
        assert profile.write_ratio == pytest.approx(5.19e-2, rel=0.25)

    def test_tpcc_answer_consistency(self):
        profile = workload_by_name("tpcc").run()
        district_total, balance_total = profile.answer
        assert district_total > 0  # new orders were placed
        assert balance_total < 0  # payments reduce balances
