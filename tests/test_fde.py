"""Tests for the full-disk-encryption engine, and its gap vs IceClave."""

import pytest

from repro.core import StreamCipherEngine
from repro.core.fde import FdeEngine


def make_engine():
    return FdeEngine(data_key=b"0123456789abcdef", tweak_key=b"fedcba9876543210")


class TestFde:
    def test_roundtrip(self):
        fde = make_engine()
        page = bytes(range(256)) * 16  # 4 KB
        assert fde.decrypt_page(7, fde.encrypt_page(7, page)) == page

    def test_at_rest_confidentiality(self):
        fde = make_engine()
        plaintext = b"credit card 4111-1111" + bytes(4096 - 21)
        stored = fde.encrypt_page(3, plaintext)
        assert stored != plaintext
        assert b"credit card" not in stored

    def test_same_plaintext_different_ppa_different_ciphertext(self):
        """The XTS tweak binds ciphertext to its physical location."""
        fde = make_engine()
        page = b"A" * 4096
        assert fde.encrypt_page(1, page) != fde.encrypt_page(2, page)

    def test_wrong_ppa_fails_to_decrypt(self):
        fde = make_engine()
        page = b"B" * 4096
        ct = fde.encrypt_page(5, page)
        assert fde.decrypt_page(6, ct) != page  # moved ciphertext is garbage

    def test_blockwise_tweaks_differ(self):
        """Identical 16-byte blocks within a page encrypt differently."""
        fde = make_engine()
        ct = fde.encrypt_page(0, b"C" * 64)
        blocks = [ct[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_partial_block_rejected(self):
        with pytest.raises(ValueError):
            make_engine().encrypt_page(0, b"short")

    def test_stats(self):
        fde = make_engine()
        fde.decrypt_page(0, fde.encrypt_page(0, bytes(32)))
        assert fde.stats.pages_encrypted == 1
        assert fde.stats.pages_decrypted == 1


class TestFdeGapVsIceClave:
    def test_fde_is_deterministic_per_location(self):
        """The limitation §4.4 points at: FDE re-reads put the *same* bytes
        on the internal bus every time — a snooper can correlate accesses,
        and with a known-plaintext dictionary, recover content."""
        fde = make_engine()
        page = b"D" * 4096
        assert fde.encrypt_page(9, page) == fde.encrypt_page(9, page)

    def test_stream_cipher_rereads_are_fresh(self):
        """IceClave's engine gives each transfer a fresh IV instead."""
        engine = StreamCipherEngine(key=b"secure-key")
        page = b"D" * 4096
        _, first = engine.encrypt_page(9, page)
        _, second = engine.encrypt_page(9, page)
        assert first != second
