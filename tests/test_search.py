"""Tests for repro.search: genome, adapters, shrinker, engine, corpus, CLI.

The shrinker trio the issue demands sits in :class:`TestShrink`:
determinism (same hit -> byte-identical minimal repro), fixed-point
(shrinking a minimal repro changes nothing) and soundness (a fresh
evaluation of the shrunk genome still trips the original objective).
Everything runs against the resilience target with small budgets — an
evaluation there costs ~10ms, so whole campaigns fit in a unit test.
"""

import dataclasses
import json

import pytest

from repro.cli import main as repro_main
from repro.crypto.prng import XorShift64
from repro.search import (
    Scenario,
    SearchConfig,
    build_corpus,
    corpus_fingerprint,
    crossover,
    default_scenario,
    evaluate_scenario,
    load_corpus,
    mutate,
    random_scenario,
    replay_corpus,
    run_search,
    save_corpus,
    score_evaluation,
    shrink,
)
from repro.search.genome import MAX_OPS, MIN_OPS, TARGETS
from repro.search.objectives import OBJECTIVES, OBJECTIVES_BY_NAME

# the resilience default genome is a known hit (no policies enabled, fault
# plan on) — cheap enough to evaluate repeatedly in tests
HIT = default_scenario("resilience")

SMALL = SearchConfig(budget_ops=4_000, targets=("resilience",))


@pytest.fixture(scope="module")
def hit_evaluation():
    return evaluate_scenario(HIT)


@pytest.fixture(scope="module")
def hit_objective(hit_evaluation):
    scores = score_evaluation(hit_evaluation)
    assert scores, "default resilience scenario must be a hit"
    return max(scores, key=lambda name: (scores[name], name))


@pytest.fixture(scope="module")
def campaign():
    return run_search(7, SMALL)


class TestGenome:
    def test_round_trip_preserves_fingerprint(self):
        for target in TARGETS:
            scenario = default_scenario(target)
            clone = Scenario.from_dict(scenario.to_dict())
            assert clone == scenario
            assert clone.fingerprint() == scenario.fingerprint()

    def test_fingerprint_is_content_addressed(self):
        a = default_scenario("chaos")
        b = dataclasses.replace(a, seed=a.seed + 1)
        assert a.fingerprint() != b.fingerprint()
        assert len(a.fingerprint()) == 64

    def test_validation_rejects_bad_genomes(self):
        with pytest.raises(ValueError, match="unknown target"):
            dataclasses.replace(HIT, target="toaster")
        with pytest.raises(ValueError, match="ops"):
            dataclasses.replace(HIT, ops=MIN_OPS["resilience"] - 1)
        with pytest.raises(ValueError, match="ops"):
            dataclasses.replace(HIT, ops=MAX_OPS["resilience"] + 1)

    def test_random_scenario_is_seed_deterministic(self):
        a = random_scenario("chaos", XorShift64(5))
        b = random_scenario("chaos", XorShift64(5))
        c = random_scenario("chaos", XorShift64(6))
        assert a == b
        assert a != c

    def test_mutate_is_seed_deterministic_and_stays_valid(self):
        rng_a, rng_b = XorShift64(11), XorShift64(11)
        cur_a, cur_b = HIT, HIT
        for _ in range(32):
            cur_a = mutate(cur_a, rng_a)
            cur_b = mutate(cur_b, rng_b)
            assert cur_a == cur_b  # __post_init__ revalidated every step

    def test_crossover_mixes_same_target_parents_only(self):
        a = random_scenario("resilience", XorShift64(1))
        b = random_scenario("resilience", XorShift64(2))
        child = crossover(a, b, XorShift64(3))
        assert child.target == "resilience"
        assert child.seed in (a.seed, b.seed)
        with pytest.raises(ValueError, match="target"):
            crossover(a, random_scenario("chaos", XorShift64(4)), XorShift64(5))


class TestAdapters:
    @pytest.mark.parametrize("target", ["chaos", "resilience", "fleet"])
    def test_evaluation_is_deterministic(self, target):
        scenario = default_scenario(target)
        a = evaluate_scenario(scenario)
        b = evaluate_scenario(scenario)
        assert a.run_fingerprint == b.run_fingerprint
        assert a.signals == b.signals
        assert a.cost > 0

    def test_objectives_cover_every_target(self):
        for target in TARGETS:
            assert any(o.applies_to(target) for o in OBJECTIVES), target

    def test_scores_are_clamped_nonnegative(self, hit_evaluation):
        for objective in OBJECTIVES:
            assert objective.score(hit_evaluation) >= 0.0


class TestShrink:
    def test_shrink_is_deterministic(self, hit_objective):
        a = shrink(HIT, hit_objective, evaluate_scenario)
        b = shrink(HIT, hit_objective, evaluate_scenario)
        assert a.scenario.fingerprint() == b.scenario.fingerprint()
        assert a.steps == b.steps
        assert a.evaluation.run_fingerprint == b.evaluation.run_fingerprint
        assert a.scenario.canonical_json() == b.scenario.canonical_json()

    def test_shrink_reaches_fixed_point(self, hit_objective):
        first = shrink(HIT, hit_objective, evaluate_scenario)
        assert first.at_fixed_point
        again = shrink(first.scenario, hit_objective, evaluate_scenario)
        assert again.scenario == first.scenario
        assert again.steps == ("fixed-point",)  # nothing left to cut

    def test_shrunk_repro_is_sound(self, hit_objective):
        result = shrink(HIT, hit_objective, evaluate_scenario)
        fresh = evaluate_scenario(result.scenario)
        assert OBJECTIVES_BY_NAME[hit_objective].score(fresh) > 0.0
        assert fresh.run_fingerprint == result.evaluation.run_fingerprint

    def test_shrink_only_shrinks(self, hit_objective):
        result = shrink(HIT, hit_objective, evaluate_scenario)
        assert result.scenario.ops <= HIT.ops
        for gene, value in result.scenario.faults.items():
            assert value <= HIT.faults.get(gene, 0), gene

    def test_shrink_rejects_non_firing_objective(self):
        with pytest.raises(ValueError, match="does not fire"):
            shrink(HIT, "data-loss", evaluate_scenario)  # fleet-only

    def test_eval_cap_is_respected(self, hit_objective):
        calls = []

        def counting(scenario):
            calls.append(scenario)
            return evaluate_scenario(scenario)

        result = shrink(HIT, hit_objective, counting, max_evals=3)
        assert len(calls) <= 3
        assert result.evals_used <= 3


class TestEngine:
    def test_campaign_finds_and_shrinks_hits(self, campaign):
        assert campaign.hits, "budgeted search must find a scoring scenario"
        assert campaign.minimal, "top hits must be shrunk"
        assert campaign.stats.evaluations > 0
        assert campaign.stats.sim_ops_spent >= SMALL.budget_ops
        for shrunk in campaign.minimal.values():
            assert shrunk.score > 0.0

    def test_double_run_is_byte_identical(self, campaign):
        rerun = run_search(7, SMALL)
        doc_a, doc_b = build_corpus(campaign), build_corpus(rerun)
        assert doc_a["fingerprint"] == doc_b["fingerprint"]
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(doc_b, sort_keys=True)

    def test_seed_changes_the_campaign(self, campaign):
        other = run_search(8, SMALL)
        assert (
            build_corpus(other)["fingerprint"]
            != build_corpus(campaign)["fingerprint"]
        )

    def test_config_rejects_unknown_target(self):
        with pytest.raises(ValueError, match="unknown search targets"):
            SearchConfig(targets=("resilience", "blender"))
        with pytest.raises(ValueError, match="at least one"):
            SearchConfig(targets=())


class TestCorpus:
    def test_save_load_round_trip(self, campaign, tmp_path):
        document = build_corpus(campaign)
        path = save_corpus(document, tmp_path / "corpus.json")
        loaded = load_corpus(path)
        assert loaded == document
        assert loaded["schema"] == "search-corpus/v1"
        assert loaded["fingerprint"] == corpus_fingerprint(loaded)

    def test_tampering_is_detected(self, campaign, tmp_path):
        document = build_corpus(campaign)
        path = save_corpus(document, tmp_path / "corpus.json")
        tampered = json.loads(path.read_text())
        tampered["entries"][0]["objectives"] = {}
        path.write_text(json.dumps(tampered))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_corpus(path)

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"schema": "search-corpus/v999"}))
        with pytest.raises(ValueError, match="not a search-corpus/v1"):
            load_corpus(path)

    def test_replay_reproduces_every_entry(self, campaign):
        report = replay_corpus(build_corpus(campaign))
        assert report.all_reproduced
        assert len(report.outcomes) == len(campaign.hits)
        assert "REPRODUCED" in report.format()

    def test_replay_flags_stale_fingerprints(self, campaign):
        document = json.loads(json.dumps(build_corpus(campaign)))
        entry = document["entries"][0]
        (entry["minimal"] or entry)["run_fingerprint"] = "0" * 64
        report = replay_corpus(document)
        assert not report.all_reproduced
        assert not report.outcomes[0].fingerprint_match


class TestSearchCli:
    def test_search_writes_replayable_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        args = [
            "search", "--seed", "7", "--targets", "resilience",
            "--budget", "4000", "--out", str(out),
        ]
        assert repro_main(args) == 0
        first = capsys.readouterr().out
        assert "hit " in first and "minimal " in first
        assert f"wrote {out}" in first
        assert repro_main(["search", "--replay", str(out)]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_search_is_deterministic_across_invocations(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        base = ["search", "--seed", "7", "--targets", "resilience",
                "--budget", "4000", "--out"]
        assert repro_main(base + [str(a)]) == 0
        assert repro_main(base + [str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_bad_arguments_exit_2(self, tmp_path, capsys):
        assert repro_main(["search", "--targets", "toaster"]) == 2
        assert repro_main(["search", "--budget", "0"]) == 2
        assert repro_main(["search", "--replay", str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_no_shrink_skips_minimal_repros(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        assert repro_main([
            "search", "--seed", "7", "--targets", "resilience",
            "--budget", "2000", "--out", str(out), "--no-shrink",
        ]) == 0
        assert "minimal " not in capsys.readouterr().out
        document = load_corpus(out)
        assert all(e["minimal"] is None for e in document["entries"])

    def test_chaos_monitors_flag_collects_counters(self, capsys):
        assert repro_main([
            "chaos", "ycsb", "--ops", "400", "--monitors", "--seed", "11",
        ]) == 0
        output = capsys.readouterr().out
        assert "monitors" in output
        assert "deterministic: yes" in output
