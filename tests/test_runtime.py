"""Tests for the IceClave runtime: TEE lifecycle and translation paths."""

import pytest

from repro.core import IceClaveConfig, IceClaveRuntime, TeeAbort, TeeCreationError, TeeState
from repro.core.config import KIB, MIB
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.ftl.mapping import PUBLIC_ID


def make_runtime(dram_mib=512, prealloc_mib=16, cache_kib=256):
    geo = small_geometry()
    ftl = Ftl(geo, chip=FlashChip(geo))
    config = IceClaveConfig(
        dram_bytes=dram_mib * MIB,
        tee_preallocation_bytes=prealloc_mib * MIB,
        protected_region_bytes=8 * MIB,
        secure_region_bytes=8 * MIB,
    )
    from repro.ftl.mapping_cache import MappingCache
    cache = MappingCache(cache_bytes=cache_kib * KIB)
    runtime = IceClaveRuntime(ftl, config=config, mapping_cache=cache)
    return runtime, ftl


def populate(ftl, lpas):
    for lpa in lpas:
        ftl.write(lpa)


CODE = b"\x90" * 1024  # 1 KB program


class TestLifecycle:
    def test_create_assigns_id_and_stamps_entries(self):
        runtime, ftl = make_runtime()
        populate(ftl, range(8))
        tee = runtime.create_tee(CODE, lpas=list(range(8)))
        assert tee.state is TeeState.READY
        assert 1 <= tee.eid <= 15
        for lpa in range(8):
            assert ftl.mapping.entry_unchecked(lpa).owner == tee.eid

    def test_create_charges_table5_time(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        runtime.create_tee(CODE, lpas=[0])
        assert runtime.charged_time == pytest.approx(95e-6)

    def test_terminate_releases_everything(self):
        runtime, ftl = make_runtime()
        populate(ftl, range(4))
        tee = runtime.create_tee(CODE, lpas=range(4))
        tee.result = b"answer"
        assert runtime.terminate_tee(tee) == b"answer"
        assert tee.state is TeeState.TERMINATED
        assert ftl.mapping.entry_unchecked(0).owner == PUBLIC_ID
        assert not runtime.tees

    def test_ids_are_recycled(self):
        """§4.3: IceClave reuses IDs for newly created TEEs."""
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        first = runtime.create_tee(CODE, lpas=[0])
        eid = first.eid
        runtime.terminate_tee(first)
        second = runtime.create_tee(CODE, lpas=[0])
        assert second.eid == eid

    def test_fifteen_concurrent_tees_max(self):
        runtime, ftl = make_runtime(dram_mib=1024, prealloc_mib=4)
        populate(ftl, [0])
        tees = [runtime.create_tee(CODE, lpas=[]) for _ in range(15)]
        with pytest.raises(TeeCreationError):
            runtime.create_tee(CODE, lpas=[])
        for tee in tees:
            runtime.terminate_tee(tee)

    def test_oversized_program_rejected(self):
        runtime, _ = make_runtime()
        big = b"\x90" * (600 * KIB)  # over the 528 KB bound
        with pytest.raises(TeeCreationError):
            runtime.create_tee(big, lpas=[])

    def test_dram_exhaustion_fails_creation(self):
        """Paper: creation fails when the program exceeds available DRAM."""
        runtime, ftl = make_runtime(dram_mib=48, prealloc_mib=16)
        populate(ftl, [0])
        runtime.create_tee(CODE, lpas=[0])  # fits (48 - 16 reserved = 32 MB)
        with pytest.raises(TeeCreationError):
            runtime.create_tee(CODE, lpas=[])  # second 16 MB prealloc won't fit

    def test_throw_out_aborts_and_releases(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        tee = runtime.create_tee(CODE, lpas=[0])
        message = runtime.throw_out_tee(tee, "metadata corrupted")
        assert tee.state is TeeState.ABORTED
        assert message.reason == "metadata corrupted"
        assert runtime.aborted == 1
        assert ftl.mapping.entry_unchecked(0).owner == PUBLIC_ID

    def test_measurement_binds_code(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0, 1])
        t1 = runtime.create_tee(b"\x01" * 100, lpas=[0])
        t2 = runtime.create_tee(b"\x02" * 100, lpas=[1])
        assert t1.measurement != t2.measurement


class TestTranslation:
    def test_cached_translation_no_context_switch(self):
        runtime, ftl = make_runtime()
        populate(ftl, range(16))
        tee = runtime.create_tee(CODE, lpas=range(16))
        runtime.read_mapping_entry(tee, 0)  # cold miss fills the cache
        switches_before = runtime.context_switches
        for lpa in range(1, 16):  # same translation page
            runtime.read_mapping_entry(tee, lpa)
        assert runtime.context_switches == switches_before

    def test_miss_costs_context_switch(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        tee = runtime.create_tee(CODE, lpas=[0])
        before = runtime.charged_time
        runtime.read_mapping_entry(tee, 0)
        assert runtime.context_switches == 1
        assert runtime.charged_time - before >= runtime.config.context_switch_time

    def test_translation_returns_correct_ppa(self):
        runtime, ftl = make_runtime()
        populate(ftl, [5])
        tee = runtime.create_tee(CODE, lpas=[5])
        assert runtime.read_mapping_entry(tee, 5) == ftl.translate(5, tee.eid)

    def test_cross_tee_probe_aborts(self):
        """§4.3 attack: probing another TEE's entries aborts the prober."""
        runtime, ftl = make_runtime()
        populate(ftl, [0, 1])
        victim = runtime.create_tee(CODE, lpas=[0])
        attacker = runtime.create_tee(CODE, lpas=[1])
        with pytest.raises(TeeAbort):
            runtime.read_mapping_entry(attacker, 0)
        assert attacker.state is TeeState.ABORTED
        assert victim.state is TeeState.READY  # victim unaffected

    def test_aborted_tee_cannot_translate(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        tee = runtime.create_tee(CODE, lpas=[0])
        runtime.throw_out_tee(tee, "test")
        with pytest.raises(TeeAbort):
            runtime.read_mapping_entry(tee, 0)

    def test_miss_rate_low_for_sequential_scan(self):
        """§6.3: sequential in-storage scans show ~0.17% translation misses."""
        runtime, ftl = make_runtime(cache_kib=1024)
        lpas = list(range(4096))
        populate(ftl, lpas)
        tee = runtime.create_tee(CODE, lpas=lpas)
        for lpa in lpas:
            runtime.read_mapping_entry(tee, lpa)
        assert runtime.translation_miss_rate() <= 0.005


class TestTeeHeap:
    def test_malloc_within_preallocation(self):
        runtime, ftl = make_runtime()
        populate(ftl, [0])
        tee = runtime.create_tee(CODE, lpas=[0])
        off1 = tee.malloc(1 * MIB)
        off2 = tee.malloc(2 * MIB)
        assert off2 == off1 + 1 * MIB

    def test_malloc_exhaustion(self):
        runtime, ftl = make_runtime(prealloc_mib=1)
        populate(ftl, [0])
        tee = runtime.create_tee(CODE, lpas=[0])
        with pytest.raises(MemoryError):
            tee.malloc(2 * MIB)

    def test_malloc_before_creation_fails(self):
        from repro.core.tee import Tee
        tee = Tee(eid=1, tid=0, code=b"x", lpas=[])
        with pytest.raises(RuntimeError):
            tee.malloc(10)
