"""Tests for the integrated SSD system (FTL + event-driven flash)."""

import pytest

from repro.flash.geometry import small_geometry
from repro.flash.timing import FlashTiming
from repro.ftl.mapping import AccessDeniedError
from repro.ftl.ssd_system import SsdSystem


def tiny():
    return small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                          planes_per_die=1, blocks_per_plane=8, pages_per_block=8)


class TestBasicIo:
    def test_read_after_write(self):
        ssd = SsdSystem(geometry=tiny())
        ssd.write_many([0, 1, 2])
        ssd.read_many([0, 1, 2])
        assert ssd.stats.reads_issued == 3
        assert ssd.stats.read_latency.count == 3

    def test_read_latency_matches_device_timing(self):
        ssd = SsdSystem(geometry=tiny())
        ssd.write_many([0])
        ssd.read_many([0])
        t = ssd.device.timing
        expected = t.read_latency + t.transfer_time(ssd.geometry.page_bytes)
        assert ssd.mean_read_latency() == pytest.approx(expected)

    def test_write_latency_without_gc(self):
        ssd = SsdSystem(geometry=tiny())
        ssd.write_many([0])
        t = ssd.device.timing
        expected = t.transfer_time(ssd.geometry.page_bytes) + t.program_latency
        assert ssd.mean_write_latency() == pytest.approx(expected)

    def test_unmapped_read_raises(self):
        ssd = SsdSystem(geometry=tiny())
        with pytest.raises(KeyError):
            ssd.read(0)

    def test_permission_checked_read(self):
        ssd = SsdSystem(geometry=tiny())
        ssd.write(0, owner=3)
        ssd.run_to_completion()
        ssd.read(0, tee_id=3)
        with pytest.raises(AccessDeniedError):
            ssd.read(0, tee_id=5)

    def test_completion_callback_gets_latency(self):
        ssd = SsdSystem(geometry=tiny())
        seen = []
        ssd.write(0, on_done=seen.append)
        ssd.run_to_completion()
        assert len(seen) == 1 and seen[0] > 0

    def test_functional_storage(self):
        ssd = SsdSystem(geometry=tiny(), store_data=True)
        ssd.write(0, data=b"persisted")
        ssd.run_to_completion()
        assert ssd.ftl.read_data(0) == b"persisted"


class TestGcTiming:
    def test_gc_pauses_inflate_tail_latency(self):
        """Writes that trigger GC complete much later than plain writes."""
        ssd = SsdSystem(geometry=tiny())
        geo = ssd.geometry
        ssd.write_many([i % 4 for i in range(geo.total_pages * 2)])
        assert ssd.stats.gc_stalled_writes > 0
        plain = (ssd.device.timing.transfer_time(geo.page_bytes)
                 + ssd.device.timing.program_latency)
        assert ssd.p99_style_max_write() > 3 * plain

    def test_write_amplification_visible_in_device_counts(self):
        """Interleaved hot/cold writes leave live pages in GC victims, so
        relocations add device-level writes beyond the host's."""
        ssd = SsdSystem(geometry=tiny())
        geo = ssd.geometry
        cold = ssd.ftl.logical_pages // 2
        pattern = []
        for i in range(geo.total_pages * 2):
            # hot overwrites interleaved with cold (live-forever) pages
            pattern.append(i % 4 if i % 2 == 0 else 4 + (i // 2) % cold)
        ssd.write_many(pattern)
        host_writes = len(pattern)
        assert ssd.ftl.gc.total_relocations > 0
        assert ssd.device.stats.counter("page_writes").value > host_writes
        assert ssd.device.stats.counter("block_erases").value > 0

    def test_sequential_writes_no_gc(self):
        ssd = SsdSystem(geometry=tiny())
        # half the logical space once: no overwrites, no GC needed
        ssd.write_many(list(range(ssd.ftl.logical_pages // 2)))
        assert ssd.stats.gc_stalled_writes == 0


class TestParallelism:
    def test_channel_parallel_reads_faster_than_serial(self):
        geo = tiny()
        ssd = SsdSystem(geometry=geo)
        ssd.write_many(list(range(8)))
        engine_reset = ssd.engine.now
        elapsed_parallel = ssd.read_many(list(range(8))) - engine_reset
        # a serial device would need 8 full read latencies
        serial = 8 * (ssd.device.timing.read_latency
                      + ssd.device.timing.transfer_time(geo.page_bytes))
        assert elapsed_parallel < serial

    def test_slow_flash_slows_everything(self):
        fast = SsdSystem(geometry=tiny(), timing=FlashTiming(read_latency=10e-6))
        slow = SsdSystem(geometry=tiny(), timing=FlashTiming(read_latency=110e-6))
        for ssd in (fast, slow):
            ssd.write_many(list(range(8)))
            ssd.read_many(list(range(8)))
        assert slow.mean_read_latency() > fast.mean_read_latency()
