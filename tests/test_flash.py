"""Tests for flash geometry, chip state machine, ECC, and device timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash import (
    EccModel,
    FlashChip,
    FlashDevice,
    FlashGeometry,
    FlashTiming,
    PageState,
    PhysicalAddress,
)
from repro.flash.chip import FlashProgramError
from repro.flash.ecc import EccConfig, EccUncorrectableError
from repro.flash.geometry import small_geometry
from repro.sim import Engine


class TestGeometry:
    def test_paper_configuration_is_one_terabyte(self):
        """Table 3: 8ch x 4chips x 4dies x 2planes x 2048blk x 512pg x 4KB = 1 TB."""
        geo = FlashGeometry()
        assert geo.capacity_bytes == 1 << 40

    def test_total_counts(self):
        geo = FlashGeometry()
        assert geo.total_dies == 8 * 4 * 4
        assert geo.total_planes == geo.total_dies * 2
        assert geo.total_blocks == geo.total_planes * 2048

    def test_decompose_compose_roundtrip_examples(self):
        geo = small_geometry()
        for ppa in (0, 1, 17, geo.total_pages - 1):
            assert geo.compose(geo.decompose(ppa)) == ppa

    @given(st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, raw):
        geo = small_geometry()
        ppa = raw % geo.total_pages
        assert geo.compose(geo.decompose(ppa)) == ppa

    def test_consecutive_ppas_stripe_channels(self):
        geo = small_geometry(channels=8)
        channels = [geo.decompose(ppa).channel for ppa in range(8)]
        assert channels == list(range(8))

    def test_out_of_range_ppa_rejected(self):
        geo = small_geometry()
        with pytest.raises(ValueError):
            geo.decompose(geo.total_pages)
        with pytest.raises(ValueError):
            geo.decompose(-1)

    def test_compose_validates_coordinates(self):
        geo = small_geometry()
        with pytest.raises(ValueError):
            geo.compose(PhysicalAddress(geo.channels, 0, 0, 0, 0, 0))

    def test_block_of_consistent_with_pages_of_block(self):
        geo = small_geometry()
        chip = FlashChip(geo)
        for block in (0, 3, geo.total_blocks - 1):
            for ppa in chip.pages_of_block(block):
                assert geo.block_of(ppa) == block

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            FlashGeometry(channels=0)


class TestChip:
    def make(self, store=False):
        geo = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                             blocks_per_plane=4, pages_per_block=4)
        return geo, FlashChip(geo, store_data=store)

    def test_pages_start_free(self):
        _, chip = self.make()
        assert chip.page_state(0) is PageState.FREE

    def test_program_marks_valid(self):
        _, chip = self.make()
        block0_pages = chip.pages_of_block(0)
        chip.program(block0_pages[0])
        assert chip.page_state(block0_pages[0]) is PageState.VALID

    def test_cannot_reprogram_valid_page(self):
        _, chip = self.make()
        ppa = chip.pages_of_block(0)[0]
        chip.program(ppa)
        with pytest.raises(FlashProgramError):
            chip.program(ppa)

    def test_sequential_program_enforced(self):
        _, chip = self.make()
        pages = chip.pages_of_block(0)
        with pytest.raises(FlashProgramError):
            chip.program(pages[2])  # skipping pages 0 and 1

    def test_erase_frees_pages_and_ages_block(self):
        _, chip = self.make()
        pages = chip.pages_of_block(0)
        chip.program(pages[0])
        chip.erase(0)
        assert chip.page_state(pages[0]) is PageState.FREE
        assert chip.wear_of(0) == 1
        chip.program(pages[0])  # reprogram after erase is legal

    def test_invalidate_then_read_fails(self):
        _, chip = self.make()
        ppa = chip.pages_of_block(0)[0]
        chip.program(ppa)
        chip.invalidate(ppa)
        with pytest.raises(FlashProgramError):
            chip.read(ppa)

    def test_functional_store_roundtrip(self):
        _, chip = self.make(store=True)
        ppa = chip.pages_of_block(1)[0]
        chip.program(ppa, b"hello flash")
        assert chip.read(ppa) == b"hello flash"

    def test_functional_store_requires_data(self):
        _, chip = self.make(store=True)
        with pytest.raises(ValueError):
            chip.program(chip.pages_of_block(0)[0], None)

    def test_oversized_page_rejected(self):
        geo, chip = self.make(store=True)
        with pytest.raises(ValueError):
            chip.program(chip.pages_of_block(0)[0], b"x" * (geo.page_bytes + 1))

    def test_valid_page_count(self):
        _, chip = self.make()
        pages = chip.pages_of_block(0)
        chip.program(pages[0])
        chip.program(pages[1])
        chip.invalidate(pages[0])
        assert chip.valid_pages_in_block(0) == 1


class TestEcc:
    def test_rber_grows_with_wear(self):
        ecc = EccModel()
        assert ecc.rber(1000) > ecc.rber(0)

    def test_fresh_block_reads_clean(self):
        ecc = EccModel()
        for _ in range(50):
            assert ecc.check_read(wear=0) <= ecc.config.correctable_bits

    def test_extreme_wear_uncorrectable(self):
        ecc = EccModel(EccConfig(correctable_bits=4, base_rber=1e-5, wear_scale=100.0))
        with pytest.raises(EccUncorrectableError):
            for _ in range(100):
                ecc.check_read(wear=2000)

    def test_wear_limit_is_consistent(self):
        ecc = EccModel()
        limit = ecc.wear_limit()
        assert ecc.expected_errors(limit) == pytest.approx(
            ecc.config.correctable_bits, rel=0.05
        )

    def test_deterministic_given_seed(self):
        a = EccModel(seed=5)
        b = EccModel(seed=5)
        assert [a.sample_errors(5000) for _ in range(10)] == [
            b.sample_errors(5000) for _ in range(10)
        ]


class TestDeviceTiming:
    def make(self, channels=2, **kw):
        engine = Engine()
        geo = small_geometry(channels=channels, chips_per_channel=1, dies_per_chip=1,
                             planes_per_die=1, blocks_per_plane=8, pages_per_block=8)
        dev = FlashDevice(engine, geo, FlashTiming(**kw))
        return engine, geo, dev

    def test_single_read_latency(self):
        engine, geo, dev = self.make()
        done = []
        dev.read(0, on_done=lambda: done.append(engine.now))
        engine.run()
        expected = dev.timing.read_latency + dev.timing.transfer_time(geo.page_bytes)
        assert done == [pytest.approx(expected)]

    def test_reads_on_different_channels_overlap(self):
        engine, geo, dev = self.make(channels=2)
        done = []
        dev.read(0, on_done=lambda: done.append(engine.now))  # channel 0
        dev.read(1, on_done=lambda: done.append(engine.now))  # channel 1
        engine.run()
        expected = dev.timing.read_latency + dev.timing.transfer_time(geo.page_bytes)
        assert done[0] == pytest.approx(expected)
        assert done[1] == pytest.approx(expected)

    def test_reads_on_same_die_serialize(self):
        engine, geo, dev = self.make(channels=1)
        done = []
        # two pages on the same (only) die
        dev.read(0, on_done=lambda: done.append(engine.now))
        dev.read(1, on_done=lambda: done.append(engine.now))
        engine.run()
        t_rd = dev.timing.read_latency
        xfer = dev.timing.transfer_time(geo.page_bytes)
        assert done[0] == pytest.approx(t_rd + xfer)
        # second read senses only after the first releases the die
        assert done[1] == pytest.approx(2 * t_rd + xfer)

    def test_write_timing(self):
        engine, geo, dev = self.make()
        done = []
        dev.write(0, on_done=lambda: done.append(engine.now))
        engine.run()
        expected = dev.timing.transfer_time(geo.page_bytes) + dev.timing.program_latency
        assert done == [pytest.approx(expected)]

    def test_erase_timing(self):
        engine, _, dev = self.make()
        done = []
        dev.erase(0, on_done=lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(dev.timing.erase_latency)]

    def test_read_many_completion(self):
        engine, geo, dev = self.make(channels=2)
        done = []
        count = dev.read_many(range(10), on_all_done=lambda: done.append(engine.now))
        engine.run()
        assert count == 10
        assert len(done) == 1
        assert dev.stats.counter("page_reads").value == 10

    def test_read_many_empty(self):
        engine, _, dev = self.make()
        done = []
        dev.read_many([], on_all_done=lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.0)]

    def test_channel_scaling_improves_throughput(self):
        """More channels => shorter makespan for a fixed page batch (Fig. 12)."""
        times = {}
        for channels in (1, 2, 4):
            engine, geo, dev = self.make(channels=channels)
            npages = 32
            dev.read_many(range(npages))
            times[channels] = engine.run()
        assert times[4] < times[2] < times[1]

    def test_higher_read_latency_slows_batch(self):
        """Figure 14: flash latency sweeps shift the read-throughput bound."""
        def makespan(read_latency_us):
            engine, geo, dev = self.make(channels=2, read_latency=read_latency_us * 1e-6)
            dev.read_many(range(32))
            return engine.run()

        assert makespan(110) > makespan(10)

    def test_max_read_throughput_crossover(self):
        engine, _, dev = self.make(channels=2, read_latency=10e-6)
        fast = dev.max_read_throughput()
        engine2, _, dev2 = self.make(channels=2, read_latency=110e-6)
        slow = dev2.max_read_throughput()
        assert fast > slow

    def test_functional_coupling(self):
        engine = Engine()
        geo = small_geometry(channels=1, chips_per_channel=1, dies_per_chip=1,
                             planes_per_die=1, blocks_per_plane=4, pages_per_block=4)
        chip = FlashChip(geo, store_data=True)
        dev = FlashDevice(engine, geo, chip=chip)
        sink = []
        dev.write(chip.pages_of_block(0)[0], data=b"payload")
        dev.read(chip.pages_of_block(0)[0], data_sink=sink)
        engine.run()
        assert sink == [b"payload"]
