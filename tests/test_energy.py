"""Tests for the energy model."""

import pytest

from repro.platform import PlatformConfig, make_platform
from repro.platform.energy import EnergyModel
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def setup():
    config = PlatformConfig()
    profile = workload_by_name("tpch-q1").run()
    results = {
        s: make_platform(s, config).run(profile)
        for s in ("host", "host+sgx", "isc", "iceclave")
    }
    return config, profile, results


class TestEnergyModel:
    def test_components_positive(self, setup):
        config, profile, results = setup
        model = EnergyModel(config)
        for result in results.values():
            parts = model.estimate(profile, result)
            assert all(v >= 0 for v in parts.values())
            assert model.total(profile, result) > 0

    def test_isc_saves_link_energy(self, setup):
        """ISC only ships results over PCIe, not 32 GB of data."""
        config, profile, results = setup
        model = EnergyModel(config)
        host = model.estimate(profile, results["host"])
        isc = model.estimate(profile, results["isc"])
        assert isc["pcie"] < host["pcie"] / 100

    def test_isc_total_below_host(self, setup):
        """Moving compute to the A72s beats burning i7 cores + the link."""
        config, profile, results = setup
        model = EnergyModel(config)
        assert model.total(profile, results["isc"]) < model.total(profile, results["host"])

    def test_sgx_costs_more_than_host(self, setup):
        config, profile, results = setup
        model = EnergyModel(config)
        assert model.total(profile, results["host+sgx"]) > model.total(
            profile, results["host"]
        )

    def test_iceclave_security_energy_is_small(self, setup):
        """The paper: cipher engine adds minimal energy overhead."""
        config, profile, results = setup
        model = EnergyModel(config)
        parts = model.estimate(profile, results["iceclave"])
        assert "cipher" in parts and "mee" in parts
        total = model.total(profile, results["iceclave"])
        assert (parts["cipher"] + parts["mee"]) / total < 0.10
        assert model.cipher_overhead_fraction(profile, results["iceclave"]) < 0.05

    def test_iceclave_close_to_isc(self, setup):
        config, profile, results = setup
        model = EnergyModel(config)
        isc = model.total(profile, results["isc"])
        ice = model.total(profile, results["iceclave"])
        assert isc <= ice <= isc * 1.25

    def test_host_schemes_have_no_cipher_component(self, setup):
        config, profile, results = setup
        model = EnergyModel(config)
        assert "cipher" not in model.estimate(profile, results["host"])
