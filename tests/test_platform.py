"""Tests for the execution schemes and their paper-shape properties."""

import statistics

import pytest

from repro.core.mee import EncryptionScheme
from repro.cpu.models import CORTEX_A53, CORTEX_A72
from repro.platform import (
    MultiTenantIceClave,
    PlatformConfig,
    make_platform,
)
from repro.platform.config import MAPPING_IN_SECURE
from repro.platform.schemes import flash_read_throughput
from repro.workloads import ALL_WORKLOADS, workload_by_name


@pytest.fixture(scope="module")
def profiles():
    return {name: workload_by_name(name).run() for name in ALL_WORKLOADS}


@pytest.fixture(scope="module")
def base_config():
    return PlatformConfig()


class TestThroughputMeasurement:
    def test_scales_with_channels(self, base_config):
        t8 = flash_read_throughput(base_config.with_channels(8))
        t16 = flash_read_throughput(base_config.with_channels(16))
        assert 1.5 <= t16 / t8 <= 2.1

    def test_bounded_by_channel_bandwidth(self, base_config):
        t = flash_read_throughput(base_config)
        assert t <= base_config.channels * base_config.flash_timing.channel_bandwidth

    def test_high_latency_hits_queue_bound(self, base_config):
        fast = flash_read_throughput(base_config.with_flash_read_latency(10e-6))
        slow = flash_read_throughput(base_config.with_flash_read_latency(110e-6))
        assert slow < fast

    def test_internal_exceeds_pcie(self, base_config):
        """The premise of in-storage computing (§2.2)."""
        assert flash_read_throughput(base_config) > base_config.pcie.effective_bandwidth


class TestSchemeFactory:
    def test_all_four_schemes(self, base_config):
        for name in ("host", "host+sgx", "isc", "iceclave"):
            assert make_platform(name, base_config).name == name

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="known:"):
            make_platform("tpu")


class TestFigure11Shapes:
    """The headline results of §6.2."""

    def test_iceclave_beats_host_on_average(self, profiles, base_config):
        ice = make_platform("iceclave", base_config)
        host = make_platform("host", base_config)
        speedups = [ice.run(p).speedup_over(host.run(p)) for p in profiles.values()]
        assert 1.9 <= statistics.mean(speedups) <= 2.8  # paper: 2.31x

    def test_iceclave_beats_host_sgx_more(self, profiles, base_config):
        ice = make_platform("iceclave", base_config)
        host = make_platform("host", base_config)
        sgx = make_platform("host+sgx", base_config)
        for p in profiles.values():
            assert sgx.run(p).total_time >= host.run(p).total_time

    def test_iceclave_overhead_over_isc_small(self, profiles, base_config):
        ice = make_platform("iceclave", base_config)
        isc = make_platform("isc", base_config)
        overheads = [ice.run(p).overhead_over(isc.run(p)) for p in profiles.values()]
        assert 0.03 <= statistics.mean(overheads) <= 0.12  # paper: 7.6%
        assert all(o >= 0 for o in overheads)

    def test_breakdown_components_present(self, profiles, base_config):
        result = make_platform("iceclave", base_config).run(profiles["tpch-q1"])
        assert set(result.components) == {"load", "compute", "security"}
        assert all(v >= 0 for v in result.components.values())

    def test_host_breakdown_stacks_to_total(self, profiles, base_config):
        result = make_platform("host", base_config).run(profiles["filter"])
        assert sum(result.components.values()) == pytest.approx(result.total_time)

    def test_isc_loads_faster_than_host(self, profiles, base_config):
        """Internal bandwidth beats PCIe: the Fig. 11 load-segment gap."""
        isc = make_platform("isc", base_config).run(profiles["tpch-q1"])
        host = make_platform("host", base_config).run(profiles["tpch-q1"])
        assert isc.components["load"] < host.components["load"]

    def test_write_heavy_overhead_exceeds_read_heavy(self, profiles, base_config):
        ice = make_platform("iceclave", base_config)
        isc = make_platform("isc", base_config)
        wc = ice.run(profiles["wordcount"]).overhead_over(isc.run(profiles["wordcount"]))
        q1 = ice.run(profiles["tpch-q1"]).overhead_over(isc.run(profiles["tpch-q1"]))
        assert wc > q1


class TestFigure5MappingLocation:
    def test_protected_region_beats_secure_world(self, profiles, base_config):
        """§4.2 / Figure 5: ~21.6% faster with the protected-region table."""
        ice = make_platform("iceclave", base_config)
        sec = make_platform("iceclave", base_config.with_mapping_location(MAPPING_IN_SECURE))
        slowdowns = [
            sec.run(p).total_time / ice.run(p).total_time for p in profiles.values()
        ]
        assert 1.1 <= statistics.mean(slowdowns) <= 1.5

    def test_miss_rate_matches_paper_figure(self, profiles, base_config):
        """§6.3: ~0.17% of translations miss the cached mapping table."""
        result = make_platform("iceclave", base_config).run(profiles["tpch-q1"])
        assert result.stats["translation_miss_rate"] == pytest.approx(1 / 512, rel=0.05)


class TestFigure8MeeSchemes:
    def test_hybrid_beats_split_counter(self, profiles, base_config):
        sc = make_platform("iceclave", base_config.with_mee_scheme(EncryptionScheme.SPLIT_COUNTER))
        hy = make_platform("iceclave", base_config.with_mee_scheme(EncryptionScheme.HYBRID))
        for name in ("tpch-q1", "filter", "arithmetic"):
            assert hy.run(profiles[name]).total_time < sc.run(profiles[name]).total_time

    def test_none_is_fastest(self, profiles, base_config):
        none = make_platform("iceclave", base_config.with_mee_scheme(EncryptionScheme.NONE))
        hy = make_platform("iceclave", base_config)
        assert none.run(profiles["wordcount"]).total_time <= hy.run(profiles["wordcount"]).total_time


class TestFigure12to16Sweeps:
    def test_channel_scaling_monotone(self, profiles, base_config):
        """Figure 12: more channels, more speedup over Host."""
        p = profiles["tpch-q12"]
        speedups = []
        for ch in (4, 8, 16, 32):
            cfg = base_config.with_channels(ch)
            ice, host = make_platform("iceclave", cfg), make_platform("host", cfg)
            speedups.append(ice.run(p).speedup_over(host.run(p)))
        assert speedups == sorted(speedups)
        assert speedups[-1] / speedups[0] > 1.5

    def test_overhead_grows_with_channels(self, profiles, base_config):
        """Figure 13: relative overhead increases with internal bandwidth."""
        p = profiles["tpcc"]
        overheads = []
        for ch in (8, 32):
            cfg = base_config.with_channels(ch)
            overheads.append(
                make_platform("iceclave", cfg).run(p).overhead_over(make_platform("isc", cfg).run(p))
            )
        assert overheads[1] > overheads[0]

    def test_flash_latency_sweep(self, profiles, base_config):
        """Figure 14: slower flash narrows the ISC advantage."""
        p = profiles["aggregate"]
        fast_cfg = base_config.with_flash_read_latency(10e-6)
        slow_cfg = base_config.with_flash_read_latency(110e-6)
        su_fast = make_platform("iceclave", fast_cfg).run(p).speedup_over(
            make_platform("host", fast_cfg).run(p))
        su_slow = make_platform("iceclave", slow_cfg).run(p).speedup_over(
            make_platform("host", slow_cfg).run(p))
        assert su_slow < su_fast
        assert su_slow > 1.0  # still beats host (paper: 1.8-3.2x band)

    def test_cpu_capability_sweep(self, profiles, base_config):
        """Figure 15: A72 > A53; higher frequency > lower."""
        p = profiles["tpcb"]
        t = {}
        for core, f in ((CORTEX_A72, 1.6e9), (CORTEX_A72, 0.8e9), (CORTEX_A53, 1.6e9)):
            cfg = base_config.with_isc_core(core.with_frequency(f))
            t[(core.name, f)] = make_platform("iceclave", cfg).run(p).total_time
        assert t[("cortex-a72", 1.6e9)] < t[("cortex-a72", 0.8e9)]
        assert t[("cortex-a72", 1.6e9)] < t[("cortex-a53", 1.6e9)]

    def test_dram_capacity_sweep(self, profiles, base_config):
        """Figure 16: 2 GB DRAM hurts ISC; IceClave tracks the trend."""
        p = profiles["tpcc"]
        isc4 = make_platform("isc", base_config.with_dram(4 << 30)).run(p).total_time
        isc2 = make_platform("isc", base_config.with_dram(2 << 30)).run(p).total_time
        drop = isc2 / isc4 - 1
        assert 0.10 <= drop <= 0.60  # paper: 12-44% band
        ice4 = make_platform("iceclave", base_config.with_dram(4 << 30)).run(p).total_time
        ice2 = make_platform("iceclave", base_config.with_dram(2 << 30)).run(p).total_time
        assert ice2 > ice4


class TestMultiTenant:
    def test_two_tenants_mild_slowdown(self, profiles, base_config):
        """Figure 17: collocating two instances costs single-digit percents."""
        mt = MultiTenantIceClave(base_config)
        results = mt.run([profiles["tpcc"], profiles["tpch-q1"]])
        for r in results:
            assert 1.0 <= r.stats["slowdown"] <= 1.25

    def test_four_tenants_larger_slowdown(self, profiles, base_config):
        """Figure 18: four instances average ~21% slowdown."""
        mt = MultiTenantIceClave(base_config)
        quad = [profiles[n] for n in ("tpcc", "tpch-q1", "filter", "wordcount")]
        results = mt.run(quad)
        slowdowns = [r.stats["slowdown"] for r in results]
        assert 1.08 <= statistics.mean(slowdowns) <= 1.45

    def test_four_worse_than_two(self, profiles, base_config):
        mt = MultiTenantIceClave(base_config)
        two = mt.run([profiles["tpcc"], profiles["filter"]])
        four = mt.run([profiles[n] for n in ("tpcc", "filter", "tpch-q1", "tpcb")])
        assert statistics.mean(r.stats["slowdown"] for r in four) > statistics.mean(
            r.stats["slowdown"] for r in two
        )

    def test_single_instance_unchanged(self, profiles, base_config):
        mt = MultiTenantIceClave(base_config)
        solo = mt.run([profiles["filter"]])[0]
        assert solo.total_time == pytest.approx(mt.run_solo(profiles["filter"]).total_time)

    def test_empty_rejected(self, base_config):
        with pytest.raises(ValueError):
            MultiTenantIceClave(base_config).run([])


class TestConfigValidation:
    def test_sweep_helpers_return_new_configs(self, base_config):
        assert base_config.with_channels(16).channels == 16
        assert base_config.channels == 8  # original untouched

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            PlatformConfig(channels=0)
        with pytest.raises(ValueError):
            PlatformConfig(mapping_table_location="enclave")
