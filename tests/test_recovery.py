"""Tests for repro.recovery: snapshots, monitors, the oracle, and soak.

The heart of the suite is the crash-point differential oracle acceptance
sweep (27 crash points over 3 seeds must restore byte-identically) and a
Hypothesis stateful machine that interleaves I/O, GC pressure, chaos
faults and snapshot/restore against a reference model.
"""

import copy

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.cli import main
from repro.core.mee import FunctionalMee
from repro.crypto.prng import XorShift64
from repro.faults.chaos import ChaosRunner, run_chaos
from repro.flash import FlashChip
from repro.flash.ecc import EccModel, ReadRetryPolicy
from repro.flash.geometry import small_geometry
from repro.ftl.ftl import Ftl, MappingIntegrityError
from repro.ftl.mapping import MappingEntry
from repro.platform.metrics import RunResult
from repro.recovery import (
    SNAPSHOT_VERSION,
    InvariantViolation,
    MonitorSuite,
    RecoveryStats,
    Snapshot,
    SnapshotCorruptError,
    SnapshotVersionError,
    canonical_fingerprint,
    crash_points,
    load_snapshot,
    restore_chaos_runner,
    run_oracle,
    run_soak,
    run_soak_campaigns,
    save_snapshot,
    snapshot_chaos_runner,
)
from repro.recovery.snapshot import dict_items, items_dict
from repro.recovery.soak import SOAK_KILLED_EXIT, load_results, recovery_csv_rows
from repro.resilience.breaker import BreakerBoard
from repro.resilience.degrade import DegradationLadder, ServiceMode
from repro.sim.stats import ReliabilityStats


def tiny_geometry(**kw):
    defaults = dict(channels=2, chips_per_channel=1, dies_per_chip=1,
                    planes_per_die=2, blocks_per_plane=8, pages_per_block=8)
    defaults.update(kw)
    return small_geometry(**defaults)


def make_ftl(seed=3, **geometry_kw):
    geometry = tiny_geometry(**geometry_kw)
    chip = FlashChip(geometry, store_data=True)
    ftl = Ftl(geometry, chip=chip, overprovision=0.25)
    ftl.attach_reliability(
        ecc=EccModel(seed=seed),
        retry_policy=ReadRetryPolicy(),
        reliability=ReliabilityStats(),
    )
    return ftl


def make_mee():
    return FunctionalMee(pages=8, aes_key=b"0123456789abcdef", mac_key=b"mac-key")


class TestCanonicalFingerprint:
    def test_deterministic(self):
        value = {"a": [1, 2.5, "x", b"y", None, True], "b": (3, 4)}
        assert canonical_fingerprint(value) == canonical_fingerprint(copy.deepcopy(value))

    def test_type_tags_distinguish_lookalikes(self):
        # these all print the same-ish but must fingerprint differently
        fps = {canonical_fingerprint(v) for v in (0, False, 0.0, "0", b"0", None)}
        assert len(fps) == 6
        assert canonical_fingerprint([1, 2]) != canonical_fingerprint((1, 2))

    def test_dict_key_order_is_canonical(self):
        assert canonical_fingerprint({"a": 1, "b": 2}) == canonical_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_item_lists_capture_insertion_order(self):
        first = dict_items({"a": 1, "b": 2})
        second = dict_items({"b": 2, "a": 1})
        assert canonical_fingerprint(first) != canonical_fingerprint(second)
        assert items_dict(first) == {"a": 1, "b": 2}
        assert list(items_dict(second)) == ["b", "a"]

    def test_rejects_non_primitives(self):
        with pytest.raises(TypeError):
            canonical_fingerprint({"bad": object()})


class TestSnapshotFile:
    STATE = {
        "none": None,
        "flags": [True, False],
        "counts": {"a": 1, "b": -2},
        "ratio": 0.125,
        "name": "répro",
        "blob": b"\x00\x01\xff",
        "pair": (3, "x"),
        "ordered": [("k2", 2), ("k1", 1)],
    }
    # Pinned format regression: this digest only moves when the canonical
    # encoding or the fingerprinted envelope changes — both of which
    # require a SNAPSHOT_VERSION bump (docs/RECOVERY.md).
    PINNED = "9ade8ee90bcce22308ecdc4c1d98c131c6802bd9b1252c6476c2ef58e6f28511"

    def _snap(self):
        return Snapshot(kind="format-regression", meta={"seed": 7}, state=self.STATE)

    def test_format_fingerprint_is_pinned(self):
        assert SNAPSHOT_VERSION == 1
        assert self._snap().fingerprint() == self.PINNED

    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.snap"
        fingerprint = save_snapshot(self._snap(), path)
        loaded = load_snapshot(path, expect_kind="format-regression")
        assert fingerprint == self.PINNED
        assert loaded.state == self.STATE
        assert loaded.meta == {"seed": 7}
        assert loaded.fingerprint() == fingerprint

    def test_corruption_is_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        save_snapshot(self._snap(), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_garbage_is_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_other_versions_are_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        future = Snapshot(kind="x", state={"a": 1}, version=SNAPSHOT_VERSION + 1)
        save_snapshot(future, path)
        with pytest.raises(SnapshotVersionError):
            load_snapshot(path)

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        save_snapshot(self._snap(), path)
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path, expect_kind="something-else")

    def test_non_primitive_state_fails_at_save(self, tmp_path):
        with pytest.raises(TypeError):
            save_snapshot(Snapshot(kind="x", state={"o": object()}), tmp_path / "t.snap")


class TestComponentRoundTrips:
    def test_prng_resumes_identical_stream(self):
        a = XorShift64(seed=123)
        for _ in range(10):
            a.next_u64()
        state = a.snapshot_state()
        b = XorShift64(seed=999)  # wrong seed on purpose; state must win
        b.restore_state(state)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_ftl_round_trip_preserves_data_and_future(self):
        ftl = make_ftl()
        data = {}
        for round_ in range(4):
            for lpa in range(50):
                data[lpa] = f"r{round_}-{lpa}".encode()
                ftl.write(lpa, data[lpa])
        state = ftl.snapshot_state()
        twin = make_ftl()
        twin.restore_state(state)
        assert twin.check_mapping_integrity() == []
        for lpa, payload in data.items():
            # read via both so the chip read counters stay in lockstep
            assert twin.chip.read(twin.translate(lpa)) == payload
            assert ftl.chip.read(ftl.translate(lpa)) == payload
        # identical futures: same writes produce the same state on both
        for lpa in range(50):
            ftl.write(lpa, f"post-{lpa}".encode())
            twin.write(lpa, f"post-{lpa}".encode())
        assert canonical_fingerprint(twin.snapshot_state()) == canonical_fingerprint(
            ftl.snapshot_state()
        )

    def test_functional_mee_round_trip(self):
        mee = make_mee()
        for page in range(4):
            for line in range(3):
                mee.write_line(page, line, f"p{page}l{line}".encode())
        state = mee.snapshot_state()
        twin = make_mee()
        twin.restore_state(state)
        for page in range(4):
            twin.verify_counter_block(page)
            for line in range(3):
                assert twin.read_line(page, line) == f"p{page}l{line}".encode()
        assert twin.counter_pair(2, 1) == mee.counter_pair(2, 1)

    def test_breaker_board_round_trip(self):
        board = BreakerBoard()
        for _ in range(10):
            board.breaker("die0").record_failure(1.0)
        board.breaker("die1").record_success(1.5)
        twin = BreakerBoard()
        twin.restore_state(board.snapshot_state())
        assert twin.breaker("die0").state == board.breaker("die0").state
        assert twin.breaker("die0").transitions == board.breaker("die0").transitions
        assert canonical_fingerprint(twin.snapshot_state()) == canonical_fingerprint(
            board.snapshot_state()
        )

    def test_degradation_ladder_round_trip(self):
        ladder = DegradationLadder()
        for _ in range(4):
            ladder.note_integrity_violation(2.0)
        ladder.evaluate(2.0)
        twin = DegradationLadder()
        twin.restore_state(ladder.snapshot_state())
        assert twin.mode == ladder.mode
        assert twin.mode != ServiceMode.NORMAL
        assert canonical_fingerprint(twin.snapshot_state()) == canonical_fingerprint(
            ladder.snapshot_state()
        )

    def test_chaos_runner_round_trip_mid_run(self):
        runner = ChaosRunner("tpch-q1", 0.5, seed=11, ops=200)
        runner.run_until(90)
        snapshot = snapshot_chaos_runner(runner)
        twin = restore_chaos_runner(snapshot)
        assert twin.ops_executed == 90
        runner.run_until(200)
        twin.run_until(200)
        assert twin.finalize().fingerprint() == runner.finalize().fingerprint()


class TestInvariantMonitors:
    def test_components_default_to_disabled(self):
        assert make_ftl().invariant_monitor is None
        assert make_mee().invariant_monitor is None

    def test_armed_run_fingerprint_matches_disabled_run(self):
        golden = run_chaos("tpch-q1", 0.5, seed=13, ops=250)
        runner = ChaosRunner("tpch-q1", 0.5, seed=13, ops=250)
        stats = RecoveryStats()
        runner.arm_monitors(MonitorSuite(stats))
        armed = runner.run()
        assert armed.fingerprint() == golden.fingerprint()
        assert stats.invariant_checks > 0
        assert stats.violations == 0

    def test_sim_clock_monotonicity(self):
        suite = MonitorSuite()
        suite.after_engine_event(1.0)
        suite.after_engine_event(1.0)  # equal is fine (zero-delay events)
        with pytest.raises(InvariantViolation) as exc:
            suite.after_engine_event(0.5)
        assert exc.value.monitor == "sim-clock"
        assert suite.stats.violations == 1

    def test_counter_monotonicity(self):
        suite = MonitorSuite()
        mee = make_mee()
        suite.attach_mee(mee, "tenant1")
        mee.write_line(0, 0, b"first")  # primes the shadow via the hook
        mee.write_line(0, 0, b"second")  # advances past it
        # replaying a commit without advancing the counter must trip
        with pytest.raises(InvariantViolation) as exc:
            suite.after_mee_commit(mee, 0, 0)
        assert exc.value.monitor == "counter-monotonic"
        assert exc.value.component == "tenant1"

    def test_reattach_resets_counter_shadows(self):
        suite = MonitorSuite()
        mee = make_mee()
        suite.attach_mee(mee, "tenant1")
        mee.write_line(0, 0, b"old-generation")
        fresh = make_mee()  # a restarted tenant starts counting from zero
        suite.attach_mee(fresh, "tenant1")
        fresh.write_line(0, 0, b"new-generation")  # must not trip

    def test_merkle_root_check_catches_counter_tampering(self):
        suite = MonitorSuite()
        mee = make_mee()
        suite.attach_mee(mee, "tenant1")
        mee.write_line(0, 0, b"payload")
        mee._counters[0].minors[0] += 1  # diverge counters from the tree
        mee._ser_cache.pop(0, None)
        with pytest.raises(InvariantViolation) as exc:
            suite.after_mee_commit(mee, 0, 0)
        assert exc.value.monitor == "merkle-root"

    def test_armed_ftl_monitor_catches_seeded_mapping_corruption(self):
        ftl = make_ftl()
        for lpa in range(40):
            ftl.write(lpa, f"v{lpa}".encode())
        suite = MonitorSuite()
        suite.attach_ftl(ftl)
        suite.after_ftl_step(ftl, "healthy")  # clean state passes
        # corrupt the forward map behind the reverse index's back
        victim = ftl.mapping._forward[7]
        ftl.mapping._forward[7] = MappingEntry(ppa=victim.ppa + 1, owner=victim.owner)
        with pytest.raises(InvariantViolation) as exc:
            suite.after_ftl_step(ftl, "corrupted")
        assert exc.value.monitor == "ftl-mapping"
        assert "[corrupted]" in exc.value.detail
        assert suite.stats.violations == 1

    def test_disabled_monitor_sees_nothing(self):
        ftl = make_ftl()
        for lpa in range(20):
            ftl.write(lpa, b"x")
        victim = ftl.mapping._forward[3]
        ftl.mapping._forward[3] = MappingEntry(ppa=victim.ppa + 1, owner=victim.owner)
        ftl.write(100, b"still-works")  # no monitor, no raise


class TestPowerLossRebuildFailsLoudly:
    """Satellite: a rebuild that produces a corrupt map must not be silent."""

    def _corrupted_ftl(self):
        ftl = make_ftl()
        for lpa in range(60):
            ftl.write(lpa, f"v{lpa}".encode())
        # erase one mapped page's OOB journal entry: after the cut the
        # rebuild cannot re-map it, leaving an orphaned VALID page
        ftl.chip._oob.pop(ftl.translate(17))
        return ftl

    def test_structured_error_and_reliability_counter(self):
        ftl = self._corrupted_ftl()
        with pytest.raises(MappingIntegrityError) as exc:
            ftl.recover_from_power_loss()
        assert exc.value.where == "power-loss recovery"
        assert exc.value.problems
        assert ftl.reliability.recovery_integrity_failures == 1
        assert ftl.reliability.power_loss_recoveries == 0  # not a success

    def test_armed_monitor_reports_the_same_failure(self):
        ftl = self._corrupted_ftl()
        suite = MonitorSuite()
        suite.attach_ftl(ftl)
        with pytest.raises(InvariantViolation) as exc:
            ftl.recover_from_power_loss()
        assert exc.value.monitor == "ftl-mapping"
        assert suite.stats.violations == 1

    def test_healthy_rebuild_still_passes_through_the_check(self):
        ftl = make_ftl()
        for lpa in range(60):
            ftl.write(lpa, f"v{lpa}".encode())
        suite = MonitorSuite()
        suite.attach_ftl(ftl)
        report = ftl.recover_from_power_loss()
        assert report.mappings_recovered == 60
        assert ftl.reliability.power_loss_recoveries == 1
        assert suite.stats.invariant_checks >= 1
        assert suite.stats.violations == 0


class TestCrashPointOracle:
    def test_crash_points_are_interior_and_sorted(self):
        points = crash_points(1200, 9)
        assert points == sorted(points)
        assert len(points) == 9
        assert all(0 < p < 1200 for p in points)
        with pytest.raises(ValueError):
            crash_points(1, 3)

    def test_acceptance_sweep_passes(self):
        """The headline guarantee: >= 25 crash points over >= 3 seeds."""
        stats = RecoveryStats()
        report = run_oracle(
            "tpch-q1", 0.5, base_seed=42, seeds=3, points=9, ops=300, stats=stats
        )
        assert len(report.points) == 27
        assert len({p.seed for p in report.points}) == 3
        assert report.all_passed
        assert report.corruption_rejected
        assert stats.oracle_points_passed == 27
        assert stats.snapshots_taken == 27
        assert stats.restores == 27

    def test_report_requires_points_and_corruption_probe(self):
        from repro.recovery.oracle import OracleReport

        empty = OracleReport(workload="w", write_ratio=0.5, ops=100)
        assert not empty.all_passed
        empty.corruption_rejected = True
        assert not empty.all_passed  # still no points


class TestSoak:
    def test_kill_resume_verify(self, tmp_path):
        state_dir = str(tmp_path / "soak")
        args = dict(
            workload="tpch-q1", write_ratio=0.5, seed=21, ops=300,
            state_dir=state_dir, checkpoint_every=100,
        )
        code, result = run_soak(kill_at=150, **args)
        assert code == SOAK_KILLED_EXIT and result is None
        stats = RecoveryStats()
        code, result = run_soak(verify=True, stats=stats, **args)
        assert code == 0
        assert result.verified is True
        assert result.resumed_from_op == 100  # last checkpoint before the kill
        assert stats.restores == 1

    def test_campaigns_skip_completed_seeds(self, tmp_path):
        state_dir = str(tmp_path / "soak")
        args = dict(
            workload="tpch-q1", write_ratio=0.5, seed=5, ops=120,
            state_dir=state_dir, checkpoint_every=60, campaigns=2,
        )
        code, results = run_soak_campaigns(**args)
        assert code == 0 and len(results) == 2
        assert sorted(load_results(state_dir)) == ["5", "6"]
        log = []
        code, rerun = run_soak_campaigns(log=log.append, **args)
        assert code == 0 and rerun == []  # nothing re-run
        assert any("already completed" in line for line in log)

    def test_csv_rows_shape(self, tmp_path):
        state_dir = str(tmp_path / "soak")
        stats = RecoveryStats()
        _, results = run_soak_campaigns(
            "tpch-q1", 0.5, 9, 120, state_dir, checkpoint_every=60, stats=stats
        )
        rows = recovery_csv_rows(results, stats)
        assert rows[0][:5] == ["workload", "seed", "ops", "fingerprint", "chaos_violations"]
        assert "snapshots_taken" in rows[0]
        assert len(rows) == 2
        assert all(len(row) == len(rows[0]) for row in rows)


class TestMetricsSurface:
    def test_recovery_counters_reach_run_result_fingerprint(self):
        stats = RecoveryStats()
        stats.invariant_checks = 7
        stats.snapshots_taken = 2
        a = RunResult(workload="w", scheme="s", total_time=1.0)
        b = RunResult(workload="w", scheme="s", total_time=1.0)
        assert a.fingerprint() == b.fingerprint()
        a.record_recovery(stats)
        assert a.fingerprint() != b.fingerprint()
        assert a.recovery["invariant_checks"] == 7.0


class TestRecoveryCli:
    def test_oracle_command_exits_clean(self, capsys):
        code = main(["oracle", "tpch-q1", "--ops", "150", "--seeds", "1", "--points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical  : 3/3" in out
        assert "rejected (content fingerprint)" in out

    def test_soak_command_kill_then_resume(self, tmp_path, capsys):
        state_dir = str(tmp_path / "soak")
        base = ["soak", "tpch-q1", "--ops", "200", "--checkpoint-every", "80",
                "--state-dir", state_dir]
        assert main(base + ["--kill-at", "100"]) == SOAK_KILLED_EXIT
        csv_path = str(tmp_path / "soak.csv")
        code = main(base + ["--verify", "--csv", csv_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from" in out
        assert "byte-identical" in out
        header = open(csv_path).readline()
        assert header.startswith("workload,seed,ops,fingerprint")


GEOMETRY = tiny_geometry()


class RecoveryMachine(RuleBasedStateMachine):
    """I/O, GC pressure, chaos faults, and snapshot/restore, interleaved.

    The FTL (plus its ECC and reliability state) is checkpointed and
    restored mid-workload; a reference dict is checkpointed alongside it.
    After any interleaving, reads must match the model and the mapping
    invariants must hold.
    """

    def __init__(self):
        super().__init__()
        self.ftl = make_ftl(seed=17)
        self.model = {}
        self.max_live = self.ftl.logical_pages // 2
        self.checkpoint = None  # (ftl_state, model_copy)

    @rule(lpa=st.integers(min_value=0, max_value=60),
          payload=st.binary(min_size=1, max_size=16))
    def write(self, lpa, payload):
        lpa = lpa % self.ftl.logical_pages
        if lpa not in self.model and len(self.model) >= self.max_live:
            return  # keep occupancy bounded so GC can always win
        self.ftl.write(lpa, payload)
        self.model[lpa] = payload

    @rule(lpa=st.integers(min_value=0, max_value=60))
    def trim(self, lpa):
        lpa = lpa % self.ftl.logical_pages
        if lpa in self.model:
            self.ftl.trim(lpa)
            del self.model[lpa]

    @rule(lpa=st.integers(min_value=0, max_value=60))
    def read(self, lpa):
        lpa = lpa % self.ftl.logical_pages
        if lpa in self.model:
            assert self.ftl.read_data(lpa) == self.model[lpa]

    @rule()
    def power_cut_and_recover(self):
        # DRAM state is lost and rebuilt from flash; data must survive
        self.ftl.recover_from_power_loss()

    @rule(extra_bits=st.integers(min_value=1, max_value=6))
    def read_burst(self, extra_bits):
        if not self.model:
            return
        self.ftl.ecc.inject(self.ftl.ecc.config.correctable_bits + extra_bits)
        lpa = sorted(self.model)[0]
        assert self.ftl.read_data(lpa) == self.model[lpa]

    @rule()
    def take_checkpoint(self):
        self.checkpoint = (self.ftl.snapshot_state(), dict(self.model))

    @precondition(lambda self: self.checkpoint is not None)
    @rule()
    def crash_and_restore(self):
        state, model = self.checkpoint
        self.ftl = make_ftl(seed=17)  # the old instance is the crash casualty
        self.ftl.restore_state(copy.deepcopy(state))
        self.model = dict(model)

    @invariant()
    def mapping_invariants_hold(self):
        assert self.ftl.check_mapping_integrity("stateful") == []

    @invariant()
    def model_agreement(self):
        assert len(self.ftl.mapping) == len(self.model)


TestRecoveryStateful = RecoveryMachine.TestCase
TestRecoveryStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
