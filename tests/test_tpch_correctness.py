"""Deep correctness tests: every TPC-H query vs a naive reimplementation."""

import numpy as np
import pytest

from repro.workloads.tpch import datagen
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.queries import TpchQ12, TpchQ14, TpchQ19

SCALE = 6_000
SEED = 13


@pytest.fixture(scope="module")
def data():
    return generate(SCALE, seed=SEED)


class TestQ12Naive:
    def test_counts_match(self, data):
        profile = TpchQ12(scale_rows=SCALE, seed=SEED).run()
        li, orders = data.lineitem, data.orders
        year_start = datagen.DAY_1994_01_01
        priorities = {
            int(ok): int(p)
            for ok, p in zip(orders.column("orderkey"), orders.column("orderpriority"))
        }
        naive = {}
        rows = zip(li.column("shipmode"), li.column("commitdate"),
                   li.column("receiptdate"), li.column("shipdate"),
                   li.column("orderkey"))
        for mode, commit, receipt, ship, ok in rows:
            if int(mode) not in (datagen.SHIPMODE_MAIL, datagen.SHIPMODE_SHIP):
                continue
            if not (commit < receipt and ship < commit
                    and year_start <= receipt < year_start + 365):
                continue
            high = priorities[int(ok)] in (0, 1)
            counts = naive.setdefault(int(mode), [0, 0])
            counts[0 if high else 1] += 1

        result = profile.answer
        measured = {
            int(m): (int(h), int(l))
            for m, h, l in zip(result.column("shipmode"),
                               result.column("high_line_count_sum"),
                               result.column("low_line_count_sum"))
        }
        assert measured == {m: tuple(c) for m, c in naive.items()}


class TestQ14Naive:
    def test_promo_ratio_matches(self, data):
        profile = TpchQ14(scale_rows=SCALE, seed=SEED).run()
        li, part = data.lineitem, data.part
        start = datagen.DAY_1995_09_01
        types = part.column("type")
        promo = total = 0.0
        for sd, pk, ep, disc in zip(li.column("shipdate"), li.column("partkey"),
                                    li.column("extendedprice"), li.column("discount")):
            if not start <= sd < start + 30:
                continue
            revenue = float(ep) * (1 - float(disc))
            total += revenue
            if types[int(pk)] < 5:
                promo += revenue
        expected = 100.0 * promo / total if total else 0.0
        measured = float(profile.answer.column("promo_revenue")[0])
        assert measured == pytest.approx(expected, rel=1e-5)


class TestQ19Naive:
    def test_revenue_matches(self, data):
        profile = TpchQ19(scale_rows=SCALE, seed=SEED).run()
        li, part = data.lineitem, data.part
        brand = part.column("brand")
        container = part.column("container")
        size = part.column("size")
        naive = 0.0
        rows = zip(li.column("shipmode"), li.column("shipinstruct"),
                   li.column("quantity"), li.column("partkey"),
                   li.column("extendedprice"), li.column("discount"))
        for mode, instr, qty, pk, ep, disc in rows:
            if int(mode) not in (datagen.SHIPMODE_AIR, datagen.SHIPMODE_AIR_REG):
                continue
            if int(instr) != datagen.SHIPINSTRUCT_DELIVER_IN_PERSON:
                continue
            if not 1 <= qty <= 30:
                continue
            b, c, s = int(brand[int(pk)]), int(container[int(pk)]), int(size[int(pk)])
            ok = (
                (b == 12 and c < 2 and 1 <= qty <= 11 and s <= 5)
                or (b == 23 and c == 2 and 10 <= qty <= 20 and s <= 10)
                or (b == 34 and c >= 3 and 20 <= qty <= 30 and s <= 15)
            )
            if ok:
                naive += float(ep) * (1 - float(disc))
        measured = float(profile.answer.column("revenue")[0])
        assert measured == pytest.approx(naive, rel=1e-4, abs=1e-6)


class TestDatagenDistributions:
    def test_discounts_in_spec_range(self, data):
        disc = data.lineitem.column("discount")
        assert float(disc.min()) >= 0.0 and float(disc.max()) <= 0.10 + 1e-6

    def test_quantities_in_spec_range(self, data):
        qty = data.lineitem.column("quantity")
        assert float(qty.min()) >= 1 and float(qty.max()) <= 50

    def test_every_lineitem_has_an_order(self, data):
        assert int(data.lineitem.column("orderkey").max()) < data.orders.num_rows

    def test_every_order_has_a_customer(self, data):
        assert int(data.orders.column("custkey").max()) < data.customer.num_rows

    def test_mktsegments_roughly_uniform(self, data):
        seg = data.customer.column("mktsegment")
        counts = np.bincount(seg, minlength=datagen.SEGMENTS)
        assert counts.min() > 0.5 * counts.mean()

    def test_shipmodes_cover_all_codes(self, data):
        modes = set(int(m) for m in data.lineitem.column("shipmode"))
        assert modes == set(range(datagen.SHIPMODES))

    def test_deterministic_per_seed(self):
        a = generate(1_000, seed=3)
        b = generate(1_000, seed=3)
        assert np.array_equal(a.lineitem.column("extendedprice"),
                              b.lineitem.column("extendedprice"))
        c = generate(1_000, seed=4)
        assert not np.array_equal(a.lineitem.column("extendedprice"),
                                  c.lineitem.column("extendedprice"))
