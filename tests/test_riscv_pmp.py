"""Tests for the RISC-V PMP realization of IceClave's regions (§4.7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AccessType, MemoryRegion, MMUFault
from repro.core.memory_protection import World, check_access
from repro.core.riscv_pmp import (
    AddressMatch,
    PhysicalMemoryProtection,
    PmpEntry,
    PrivilegeLevel,
    iceclave_pmp_layout,
    region_of_pmp_layout,
)

SECURE = 1 << 16
PROTECTED = 1 << 16
DRAM = 1 << 20


@pytest.fixture()
def pmp():
    return iceclave_pmp_layout(SECURE, PROTECTED, DRAM)


class TestPmpEntry:
    def test_napot_roundtrip(self):
        entry = PmpEntry.napot(0x10000, 0x1000, r=True, w=False, x=False, locked=False)
        assert entry.napot_range() == (0x10000, 0x11000)

    def test_napot_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PmpEntry.napot(0, 3000, True, False, False, False)

    def test_napot_requires_alignment(self):
        with pytest.raises(ValueError):
            PmpEntry.napot(0x100, 0x1000, True, False, False, False)

    def test_write_without_read_reserved(self):
        with pytest.raises(ValueError):
            PmpEntry.tor(0x1000, r=False, w=True, x=False, locked=False)

    def test_tor_granularity(self):
        with pytest.raises(ValueError):
            PmpEntry.tor(0x1001, r=True, w=True, x=False, locked=False)

    @given(st.integers(3, 20), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_napot_roundtrip_property(self, log_size, base_mult):
        size = 1 << log_size
        base = base_mult * size
        entry = PmpEntry.napot(base, size, True, True, False, False)
        assert entry.napot_range() == (base, base + size)


class TestIceClaveLayout:
    def test_user_mode_matrix(self, pmp):
        """U-mode sees exactly the Figure 6 normal-world permissions."""
        # secure region: nothing
        with pytest.raises(MMUFault):
            pmp.check(0, PrivilegeLevel.USER, AccessType.READ)
        with pytest.raises(MMUFault):
            pmp.check(0, PrivilegeLevel.USER, AccessType.WRITE)
        # protected region: read-only
        pmp.check(SECURE, PrivilegeLevel.USER, AccessType.READ)
        with pytest.raises(MMUFault):
            pmp.check(SECURE, PrivilegeLevel.USER, AccessType.WRITE)
        # normal region: read/write
        pmp.check(SECURE + PROTECTED, PrivilegeLevel.USER, AccessType.READ)
        pmp.check(SECURE + PROTECTED, PrivilegeLevel.USER, AccessType.WRITE)

    def test_machine_mode_unconstrained(self, pmp):
        """M-mode (FTL + runtime) has R/W everywhere, like the secure world."""
        for addr in (0, SECURE, SECURE + PROTECTED, DRAM - 4):
            for access in AccessType:
                pmp.check(addr, PrivilegeLevel.MACHINE, access)

    def test_supervisor_same_as_user(self, pmp):
        with pytest.raises(MMUFault):
            pmp.check(SECURE, PrivilegeLevel.SUPERVISOR, AccessType.WRITE)
        pmp.check(SECURE, PrivilegeLevel.SUPERVISOR, AccessType.READ)

    def test_unmatched_su_access_faults(self, pmp):
        with pytest.raises(MMUFault):
            pmp.check(DRAM + 4096, PrivilegeLevel.USER, AccessType.READ)

    def test_fault_counter(self, pmp):
        with pytest.raises(MMUFault):
            pmp.check(0, PrivilegeLevel.USER, AccessType.READ)
        assert pmp.faults == 1

    def test_equivalence_with_trustzone_matrix(self, pmp):
        """Every (region, world, access) decision matches the ARM model."""
        probes = {
            MemoryRegion.SECURE: 0,
            MemoryRegion.PROTECTED: SECURE,
            MemoryRegion.NORMAL: SECURE + PROTECTED,
        }
        pairs = [
            (World.NORMAL, PrivilegeLevel.USER),
            (World.SECURE, PrivilegeLevel.MACHINE),
        ]
        for region, addr in probes.items():
            for world, priv in pairs:
                for access in AccessType:
                    arm_allows = True
                    try:
                        check_access(region, world, access)
                    except MMUFault:
                        arm_allows = False
                    pmp_allows = True
                    try:
                        pmp.check(addr, priv, access)
                    except MMUFault:
                        pmp_allows = False
                    assert arm_allows == pmp_allows, (region, world, access)

    def test_region_classification(self):
        assert region_of_pmp_layout(0, SECURE, PROTECTED, DRAM) is MemoryRegion.SECURE
        assert region_of_pmp_layout(SECURE, SECURE, PROTECTED, DRAM) is MemoryRegion.PROTECTED
        assert region_of_pmp_layout(DRAM - 4, SECURE, PROTECTED, DRAM) is MemoryRegion.NORMAL
        with pytest.raises(MMUFault):
            region_of_pmp_layout(DRAM, SECURE, PROTECTED, DRAM)

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            iceclave_pmp_layout(0, PROTECTED, DRAM)
        with pytest.raises(ValueError):
            iceclave_pmp_layout(DRAM, DRAM, DRAM)


class TestPmpSemantics:
    def test_priority_first_match_wins(self):
        pmp = PhysicalMemoryProtection([
            PmpEntry.napot(0x1000, 0x1000, r=True, w=True, x=False, locked=False),
            PmpEntry.napot(0x1000, 0x1000, r=False, w=False, x=False, locked=False),
        ])
        pmp.check(0x1800, PrivilegeLevel.USER, AccessType.WRITE)  # first entry wins

    def test_locked_entry_binds_machine_mode(self):
        pmp = PhysicalMemoryProtection([
            PmpEntry.napot(0x1000, 0x1000, r=True, w=False, x=False, locked=True),
        ])
        pmp.check(0x1800, PrivilegeLevel.MACHINE, AccessType.READ)
        with pytest.raises(MMUFault):
            pmp.check(0x1800, PrivilegeLevel.MACHINE, AccessType.WRITE)

    def test_off_entries_skipped(self):
        pmp = PhysicalMemoryProtection([
            PmpEntry(AddressMatch.OFF, 0x1000 >> 2, True, True, True, False),
            PmpEntry.tor(0x2000, r=True, w=False, x=False, locked=False),
        ])
        # OFF entry only provides the TOR floor
        pmp.check(0x1800, PrivilegeLevel.USER, AccessType.READ)
        with pytest.raises(MMUFault):
            pmp.check(0x800, PrivilegeLevel.USER, AccessType.READ)  # below floor

    def test_entry_bank_bounded(self):
        entries = [PmpEntry.tor(4 * (i + 1), True, False, False, False) for i in range(16)]
        pmp = PhysicalMemoryProtection(entries)
        with pytest.raises(ValueError):
            pmp.add(PmpEntry.tor(0x100, True, False, False, False))
