"""Tests for repro.analysis: the determinism/security/sim-time lint suite.

Three layers of coverage:

- fixture snippets under ``tests/analysis_fixtures/`` where every rule must
  fire exactly once (and clean/suppressed fixtures must stay silent);
- the machinery: suppression comments, the content-addressed baseline, the
  JSON reporter against a committed golden file, CLI exit codes;
- the self-scan: ``repro lint src/`` must be clean modulo the committed
  baseline — the same gate CI enforces.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import ProjectRule, all_rules, analyze_paths
from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.finding import FindingStatus, UNJUSTIFIED_SUPPRESSION_RULE
from repro.analysis.report import render_json
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"

# fixture file -> the one rule it must trip, exactly once
RULE_FIXTURES = {
    "det_import_random.py": "det-import-random",
    "det_wallclock.py": "det-wallclock",
    "det_id_order.py": "det-id-order",
    "det_unordered_iter.py": "det-unordered-iter",
    "perf_hot_loop_alloc.py": "perf-hot-loop-alloc",
    "sec_layering.py": "sec-layering",
    "sec_key_containment.py": "sec-key-containment",
    "sec_boundary_bypass.py": "sec-boundary-bypass",
    "sec_telemetry_leak.py": "sec-telemetry-leak",
    "sec_broad_except.py": "sec-broad-except",
    "serve_session_key_leak.py": "serve-session-key-leak",
    "sim_float_eq.py": "sim-float-eq",
    "sim_private_mutation.py": "sim-private-mutation",
    "resilience_unbounded_retry.py": "resilience-unbounded-retry",
    "recovery_unserialized_state.py": "recovery-unserialized-state",
    "fleet_unseeded_topology.py": "fleet-unseeded-topology",
    "search_unseeded_randomness.py": "search-unseeded-randomness",
}


def scan(path: Path, **kwargs):
    return analyze_paths([path], root=FIXTURES, **kwargs)


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture,rule", sorted(RULE_FIXTURES.items()), ids=sorted(RULE_FIXTURES)
    )
    def test_rule_fires_exactly_once(self, fixture, rule):
        result = scan(FIXTURES / fixture)
        fired = [f.rule for f in result.findings]
        assert fired == [rule]
        assert result.findings[0].status is FindingStatus.NEW
        assert result.exit_code == 1

    def test_every_registered_rule_has_a_fixture(self):
        # project-level (interprocedural) rules have their own fixture map
        # in tests/test_analysis_flow.py
        module_rules = [r.id for r in all_rules() if not isinstance(r, ProjectRule)]
        assert sorted(RULE_FIXTURES.values()) == sorted(module_rules)

    def test_every_rule_family_is_covered(self):
        families = {r.family for r in all_rules()}
        assert families == {
            "determinism",
            "flow",
            "perf",
            "recovery",
            "resilience",
            "security-flow",
            "sim-time",
        }
        for rule in all_rules():
            assert rule.summary and rule.rationale

    def test_clean_fixture_has_no_findings(self):
        result = scan(FIXTURES / "clean.py")
        assert result.findings == []
        assert result.exit_code == 0


class TestSuppressions:
    def test_justified_suppression_is_clean(self):
        result = scan(FIXTURES / "suppressed_ok.py")
        assert result.exit_code == 0
        statuses = [f.status for f in result.findings]
        assert statuses == [FindingStatus.SUPPRESSED]
        assert "justified waivers" in result.findings[0].justification

    def test_unjustified_suppression_is_a_finding(self):
        result = scan(FIXTURES / "unjustified_suppression.py")
        assert result.exit_code == 1
        by_rule = {f.rule: f.status for f in result.findings}
        # the waiver still silences the import, but is itself reported
        assert by_rule["det-import-random"] is FindingStatus.SUPPRESSED
        assert by_rule[UNJUSTIFIED_SUPPRESSION_RULE] is FindingStatus.NEW


class TestBaseline:
    def test_baseline_absorbs_then_releases_on_edit(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import random\n")
        first = analyze_paths([victim], root=tmp_path)
        assert first.exit_code == 1

        baseline = Baseline.from_findings(first.new_findings)
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path)

        absorbed = analyze_paths(
            [victim], root=tmp_path, baseline=Baseline.load(baseline_path)
        )
        assert absorbed.exit_code == 0
        assert [f.status for f in absorbed.findings] == [FindingStatus.BASELINED]

        # line content changed -> the baseline entry no longer matches
        victim.write_text("import random as rnd\n")
        changed = analyze_paths(
            [victim], root=tmp_path, baseline=Baseline.load(baseline_path)
        )
        assert changed.exit_code == 1

    def test_baseline_counts_cap_absorption(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import random\n")
        baseline = Baseline.from_findings(
            analyze_paths([victim], root=tmp_path).new_findings
        )
        # two identical findings, one baseline slot: the second stays new
        victim.write_text("import random\nimport random\n")
        result = analyze_paths([victim], root=tmp_path, baseline=baseline)
        statuses = sorted(f.status.value for f in result.findings)
        assert statuses == ["baselined", "new"]

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestGoldenReport:
    def test_json_report_matches_golden(self):
        result = scan(FIXTURES / "golden_input.py")
        rendered = render_json(result.findings, result.files_scanned)
        golden = (FIXTURES / "golden_report.json").read_text()
        assert json.loads(rendered) == json.loads(golden)
        assert rendered == golden  # byte-identical: the reporter is deterministic


class TestCli:
    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert repro_main(["lint", str(clean), "--no-baseline"]) == 0
        assert repro_main(["lint", str(dirty), "--no-baseline"]) == 1
        assert repro_main(["lint", str(tmp_path / "absent.py")]) == 2
        capsys.readouterr()

    def test_json_format_and_list_rules(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert lint_main([str(dirty), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert lint_main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in listing

    def test_update_baseline_round_trip(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        baseline_path = tmp_path / "baseline.json"
        args = [str(dirty), "--baseline", str(baseline_path), "--root", str(tmp_path)]
        assert lint_main(args + ["--update-baseline"]) == 0
        assert lint_main(args) == 0
        capsys.readouterr()

    def test_parse_error_fails_lint(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        assert lint_main([str(broken), "--no-baseline"]) == 1
        assert "meta-parse-error" in capsys.readouterr().out


class TestSelfScan:
    """The gate CI enforces: the real tree is clean modulo the baseline."""

    def test_src_is_clean_modulo_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        result = analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline
        )
        offenders = [
            f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in result.new_findings
        ]
        assert offenders == [], "\n".join(offenders)

    def test_committed_baseline_is_not_stale(self):
        """Every baseline entry still matches a real finding (no dead weight)."""
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        result = analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline
        )
        baselined = sum(
            1 for f in result.findings if f.status is FindingStatus.BASELINED
        )
        assert baselined == baseline.total()

    def test_intentional_waivers_are_justified(self):
        """The §4.5 broad-except waivers all carry a reason."""
        result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        suppressed = [
            f for f in result.findings if f.status is FindingStatus.SUPPRESSED
        ]
        assert len(suppressed) >= 3
        assert all(f.justification for f in suppressed)
