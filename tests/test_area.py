"""Tests for the CACTI-style area/energy model."""

import pytest

from repro.area import AreaModel, CipherEngineArea
from repro.area.cacti import NODE_22NM, NODE_32NM, NODE_45NM


class TestAreaModel:
    def test_sram_area_linear(self):
        model = AreaModel(NODE_32NM)
        assert model.sram_area(256) == pytest.approx(2 * model.sram_area(128))

    def test_newer_node_denser(self):
        assert AreaModel(NODE_22NM).sram_area(128) < AreaModel(NODE_32NM).sram_area(128)
        assert AreaModel(NODE_32NM).logic_area(10) < AreaModel(NODE_45NM).logic_area(10)

    def test_negative_rejected(self):
        model = AreaModel(NODE_32NM)
        with pytest.raises(ValueError):
            model.sram_area(-1)
        with pytest.raises(ValueError):
            model.logic_area(-1)

    def test_energy_positive(self):
        model = AreaModel(NODE_32NM)
        assert model.sram_energy(100) > 0
        assert model.logic_energy(3.2, 512) > 0


class TestCipherEngineArea:
    def test_paper_overhead_claim(self):
        """§5: the cipher engine adds ~1.6% area to a P4500-class controller."""
        overhead = CipherEngineArea().overhead_fraction()
        assert 0.008 <= overhead <= 0.025

    def test_overhead_scales_with_channels(self):
        assert (
            CipherEngineArea(channels=16).engine_mm2()
            > CipherEngineArea(channels=8).engine_mm2()
        )

    def test_engine_is_small_in_absolute_terms(self):
        assert CipherEngineArea().engine_mm2() < 2.0  # mm^2

    def test_energy_per_page_reasonable(self):
        """Ciphering a 4 KB page should cost nanojoules, not microjoules."""
        pj = CipherEngineArea().energy_per_page_pj()
        assert 100 <= pj <= 100_000
