"""Tests for the FTL: mapping table, allocator, GC, wear leveling, cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash import FlashChip, PageState
from repro.flash.geometry import small_geometry
from repro.ftl import (
    Ftl,
    MappingCache,
    MappingEntry,
    MappingTable,
    PageAllocator,
    PUBLIC_ID,
)
from repro.ftl.mapping import AccessDeniedError, MAX_TEE_ID
from repro.ftl.page_allocator import OutOfSpaceError


def tiny_geometry(**kw):
    defaults = dict(channels=2, chips_per_channel=1, dies_per_chip=1,
                    planes_per_die=1, blocks_per_plane=8, pages_per_block=8)
    defaults.update(kw)
    return small_geometry(**defaults)


class TestMappingTable:
    def test_update_and_lookup(self):
        table = MappingTable(100)
        table.update(5, 42)
        assert table.lookup(5, tee_id=1).ppa == 42

    def test_unmapped_lookup_raises(self):
        with pytest.raises(KeyError):
            MappingTable(100).lookup(5, tee_id=1)

    def test_injective_ppa_enforced(self):
        table = MappingTable(100)
        table.update(1, 42)
        with pytest.raises(ValueError):
            table.update(2, 42)

    def test_remap_releases_old_ppa(self):
        table = MappingTable(100)
        old = table.update(1, 42)
        assert old is None
        old = table.update(1, 43)
        assert old == 42
        table.update(2, 42)  # 42 is free again

    def test_id_bits_access_control(self):
        """§4.3: a TEE cannot read entries owned by another TEE."""
        table = MappingTable(100)
        table.update(1, 42)
        table.set_id_bits(1, tee_id=3)
        assert table.lookup(1, tee_id=3).ppa == 42
        with pytest.raises(AccessDeniedError):
            table.lookup(1, tee_id=4)
        assert table.permission_denials == 1

    def test_public_entries_readable_by_all(self):
        table = MappingTable(100)
        table.update(1, 42)  # owner defaults to PUBLIC_ID
        for tee in (1, 2, MAX_TEE_ID):
            assert table.lookup(1, tee_id=tee).ppa == 42

    def test_clear_id_bits_releases_ownership(self):
        table = MappingTable(100)
        table.update(1, 42)
        table.update(2, 43)
        table.set_id_bits(1, tee_id=3)
        table.set_id_bits(2, tee_id=3)
        assert table.clear_id_bits(3) == 2
        assert table.lookup(1, tee_id=7).ppa == 42

    def test_id_bits_range_checked(self):
        table = MappingTable(100)
        table.update(1, 42)
        with pytest.raises(ValueError):
            table.set_id_bits(1, tee_id=MAX_TEE_ID + 1)

    def test_entry_packing_roundtrip(self):
        entry = MappingEntry(ppa=123456, owner=9)
        assert MappingEntry.unpack(entry.packed()) == entry

    def test_id_bits_storage_overhead_matches_paper(self):
        """Paper: 4 ID bits per 8-byte entry = 6.25% cost."""
        assert MappingTable(10).id_bits_overhead() == pytest.approx(0.0625)

    def test_unmap(self):
        table = MappingTable(100)
        table.update(1, 42)
        assert table.unmap(1) == 42
        assert 1 not in table
        assert table.unmap(1) is None

    @given(st.lists(st.tuples(st.integers(0, 49), st.integers(0, 199)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_forward_reverse_consistency(self, updates):
        """Property: reverse map is exactly the inverse of the forward map."""
        table = MappingTable(50)
        used_ppas = {}
        for lpa, ppa in updates:
            if ppa in used_ppas and used_ppas[ppa] != lpa:
                continue  # would violate injectivity; table would reject
            old = table.entry_unchecked(lpa)
            if old is not None:
                used_ppas.pop(old.ppa, None)
            table.update(lpa, ppa)
            used_ppas[ppa] = lpa
        for lpa, entry in table.items():
            assert table.lpa_of_ppa(entry.ppa) == lpa


class TestPageAllocator:
    def test_allocates_sequentially_within_block(self):
        geo = tiny_geometry(channels=1)
        chip = FlashChip(geo)
        alloc = PageAllocator(geo, chip)
        ppas = [alloc.allocate(plane=0) for _ in range(geo.pages_per_block)]
        pages = [geo.decompose(p).page for p in ppas]
        assert pages == list(range(geo.pages_per_block))
        for ppa in ppas:
            chip_block = geo.block_of(ppa)
            assert chip_block == geo.block_of(ppas[0])

    def test_round_robin_stripes_planes(self):
        geo = tiny_geometry(channels=2, planes_per_die=1)
        alloc = PageAllocator(geo, FlashChip(geo))
        planes = [geo.plane_index(alloc.allocate()) for _ in range(4)]
        assert planes == [0, 1, 0, 1]

    def test_out_of_space(self):
        geo = tiny_geometry(channels=1, blocks_per_plane=2, pages_per_block=2)
        chip = FlashChip(geo)
        alloc = PageAllocator(geo, chip)
        for _ in range(geo.total_pages):
            chip.program(alloc.allocate())
        with pytest.raises(OutOfSpaceError):
            alloc.allocate()

    def test_release_block_returns_to_pool(self):
        geo = tiny_geometry(channels=1, blocks_per_plane=2, pages_per_block=2)
        chip = FlashChip(geo)
        alloc = PageAllocator(geo, chip)
        for _ in range(geo.total_pages):
            chip.program(alloc.allocate())
        chip.erase(0)
        alloc.release_block(0)
        ppa = alloc.allocate()
        assert geo.block_of(ppa) == 0

    def test_double_release_rejected(self):
        geo = tiny_geometry(channels=1)
        chip = FlashChip(geo)
        alloc = PageAllocator(geo, chip)
        with pytest.raises(ValueError):
            alloc.release_block(0)  # still in the free pool

    def test_wear_aware_allocation_prefers_young_blocks(self):
        geo = tiny_geometry(channels=1, blocks_per_plane=4)
        chip = FlashChip(geo)
        chip.block_wear[0] = 50
        chip.block_wear[1] = 10
        chip.block_wear[2] = 30
        chip.block_wear[3] = 40
        alloc = PageAllocator(geo, chip)
        ppa = alloc.allocate(plane=0)
        assert geo.block_of(ppa) == 1


class TestFtl:
    def make_ftl(self, **kw):
        geo = tiny_geometry()
        chip = FlashChip(geo, store_data=kw.pop("store_data", False))
        return geo, Ftl(geo, chip=chip, **kw)

    def test_write_then_translate(self):
        _, ftl = self.make_ftl()
        cost = ftl.write(0)
        assert ftl.translate(0) == cost.ppa

    def test_write_is_out_of_place(self):
        _, ftl = self.make_ftl()
        first = ftl.write(0).ppa
        second = ftl.write(0).ppa
        assert first != second
        assert ftl.chip.page_state(first) is PageState.INVALID

    def test_functional_data_preserved_across_overwrites(self):
        _, ftl = self.make_ftl(store_data=True)
        ftl.write(0, b"version 1")
        ftl.write(0, b"version 2")
        assert ftl.read_data(0) == b"version 2"

    def test_gc_triggers_and_reclaims(self):
        geo, ftl = self.make_ftl()
        # hammer a small logical range so most pages become invalid
        for i in range(geo.total_pages * 2):
            ftl.write(i % 4)
        assert ftl.gc.total_erases > 0
        assert ftl.allocator.total_free_blocks() > 0
        # all four logical pages still translate
        for lpa in range(4):
            assert ftl.translate(lpa) is not None

    def test_gc_preserves_data(self):
        geo, ftl = self.make_ftl(store_data=True)
        payload = {lpa: f"data-{lpa}".encode() for lpa in range(4)}
        for lpa, data in payload.items():
            ftl.write(lpa, data)
        # churn to force GC relocations of live data
        for i in range(geo.total_pages * 2):
            ftl.write(4 + (i % 3), b"churn")
        for lpa, data in payload.items():
            assert ftl.read_data(lpa) == data

    def test_write_amplification_reported(self):
        geo, ftl = self.make_ftl()
        for i in range(geo.total_pages * 2):
            ftl.write(i % 8)
        wa = ftl.gc.write_amplification(ftl.stats.host_writes)
        assert wa >= 1.0

    def test_permission_checked_read(self):
        _, ftl = self.make_ftl()
        ftl.write(0, owner=2)
        assert ftl.read(0, tee_id=2).page_reads == 1
        with pytest.raises(AccessDeniedError):
            ftl.read(0, tee_id=3)

    def test_trim(self):
        _, ftl = self.make_ftl()
        ppa = ftl.write(0).ppa
        ftl.trim(0)
        assert ftl.chip.page_state(ppa) is PageState.INVALID
        with pytest.raises(KeyError):
            ftl.translate(0)

    def test_wear_stays_bounded_under_churn(self):
        """Wear leveling keeps the max/min wear gap near the threshold."""
        geo, ftl = self.make_ftl(wear_threshold=4)
        for i in range(geo.total_pages * 6):
            ftl.write(i % 4)
        min_w, max_w, _ = ftl.wear_leveler.wear_stats()
        # some slack: leveling runs after the fact
        assert max_w - min_w <= 4 * 3

    def test_utilization(self):
        geo, ftl = self.make_ftl()
        assert ftl.utilization() == 0.0
        ftl.write(0)
        assert 0 < ftl.utilization() <= 1.0

    def test_overprovision_bounds_logical_space(self):
        geo, ftl = self.make_ftl()
        assert ftl.logical_pages < geo.total_pages
        with pytest.raises(ValueError):
            ftl.write(ftl.logical_pages)


class TestMappingCache:
    def test_miss_then_hit(self):
        cache = MappingCache(cache_bytes=4096 * 4)
        assert cache.access(0) is False
        assert cache.access(1) is True  # same translation page
        assert cache.miss_rate == pytest.approx(0.5)

    def test_translation_page_granularity(self):
        cache = MappingCache(cache_bytes=4096)
        assert cache.translation_page(0) == cache.translation_page(511)
        assert cache.translation_page(512) == 1

    def test_lru_eviction(self):
        cache = MappingCache(cache_bytes=4096 * 2)  # 2 pages
        cache.access(0)          # page 0
        cache.access(512)        # page 1
        cache.access(0)          # touch page 0 (page 1 becomes LRU)
        cache.access(1024)       # page 2 evicts page 1
        assert cache.contains(0)
        assert not cache.contains(512)
        assert cache.evictions == 1

    def test_sequential_scan_low_miss_rate(self):
        """A sequential scan misses once per 512 LPAs — the locality that
        yields the paper's 0.17% miss rate."""
        cache = MappingCache(cache_bytes=64 * 4096)
        for lpa in range(512 * 64):
            cache.access(lpa)
        assert cache.miss_rate == pytest.approx(1 / 512, rel=0.01)

    def test_invalidate_page(self):
        cache = MappingCache(cache_bytes=4096 * 2)
        cache.access(0)
        cache.invalidate_page(0)
        assert not cache.contains(0)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            MappingCache(cache_bytes=4096, page_bytes=100)
