"""Property-based tests for MEE counter-state invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import EncryptionScheme, IceClaveConfig
from repro.core.mee import LINES_PER_PAGE, MemoryEncryptionEngine


def make_mee(scheme=EncryptionScheme.HYBRID, minor_bits=7):
    config = IceClaveConfig(minor_counter_bits=minor_bits)
    return MemoryEncryptionEngine(config=config, scheme=scheme)


ops = st.lists(
    st.tuples(
        st.booleans(),  # is_write
        st.integers(0, 15),  # page
        st.integers(0, LINES_PER_PAGE - 1),  # line
        st.booleans(),  # readonly region flag
    ),
    max_size=120,
)


class TestCounterInvariants:
    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_counters_never_decrease(self, operations):
        """(major, minor) pairs are non-decreasing lexicographically."""
        mee = make_mee()
        last = {}
        for is_write, page, line, readonly in operations:
            if is_write:
                mee.write(page, line, readonly=readonly)
            else:
                mee.read(page, line, readonly=readonly)
            major, minor = mee.counter_of(page, line, readonly=False)
            key = (page, line)
            if key in last:
                assert (major, minor) >= last[key] or major > last[key][0]
            last[key] = (major, minor)

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_traffic_accounting_consistent(self, operations):
        """Stats totals equal the number of operations issued."""
        mee = make_mee()
        reads = writes = 0
        for is_write, page, line, readonly in operations:
            if is_write:
                mee.write(page, line, readonly=readonly)
                writes += 1
            else:
                mee.read(page, line, readonly=readonly)
                reads += 1
        assert mee.stats.data_reads == reads
        assert mee.stats.data_writes == writes
        assert mee.stats.encryption_lines >= 0
        assert mee.stats.verification_lines >= 0

    @given(st.integers(0, 63), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_minor_overflow_always_resets(self, line, minor_bits):
        """Whatever the counter width, overflow bumps major and zeroes minors."""
        mee = make_mee(minor_bits=minor_bits)
        limit = 1 << minor_bits
        for _ in range(limit):
            mee.write(0, line, readonly=False)
        major, minor = mee.counter_of(0, line, readonly=False)
        assert major == 1
        assert minor == 0
        assert mee.stats.minor_overflows == 1

    @given(st.integers(0, 15))
    @settings(max_examples=15, deadline=None)
    def test_promote_demote_cycle_monotone(self, page):
        """§4.4 permission flips: the major counter strictly grows each flip."""
        mee = make_mee()
        mee.read(page, 0, readonly=True)
        majors = []
        for _ in range(3):
            mee.write(page, 0, readonly=True)  # promote (re-encrypt)
            majors.append(mee.counter_of(page, 0, readonly=False)[0])
            mee.make_readonly(page)  # demote (copy back, increment)
            majors.append(mee.counter_of(page, 0, readonly=True)[0])
        assert majors == sorted(majors)
        assert majors[-1] > majors[0]

    @given(ops)
    @settings(max_examples=25, deadline=None)
    def test_none_scheme_is_always_free(self, operations):
        mee = make_mee(scheme=EncryptionScheme.NONE)
        for is_write, page, line, readonly in operations:
            result = (mee.write if is_write else mee.read)(page, line, readonly=readonly)
            assert result.latency == 0.0
            assert result.encryption_lines == 0.0
            assert result.verification_lines == 0.0
