"""Tests for the user→TEE key-wrapping flow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.key_management import (
    KeyWrapError,
    WrappedKey,
    derive_kek,
    unwrap_key,
    wrap_key,
)

SECRET = b"vendor-provisioned-secret!"
MEASUREMENT = b"m" * 16
NONCE = b"n" * 16


class TestKekDerivation:
    def test_deterministic(self):
        assert derive_kek(SECRET, MEASUREMENT, NONCE) == derive_kek(
            SECRET, MEASUREMENT, NONCE
        )

    def test_measurement_binding(self):
        """A trojaned TEE (different code) derives a different KEK."""
        good = derive_kek(SECRET, MEASUREMENT, NONCE)
        evil = derive_kek(SECRET, b"e" * 16, NONCE)
        assert good != evil

    def test_session_binding(self):
        assert derive_kek(SECRET, MEASUREMENT, b"session-1") != derive_kek(
            SECRET, MEASUREMENT, b"session-2"
        )

    def test_weak_inputs_rejected(self):
        with pytest.raises(ValueError):
            derive_kek(b"short", MEASUREMENT, NONCE)
        with pytest.raises(ValueError):
            derive_kek(SECRET, MEASUREMENT, b"tiny")


class TestWrapUnwrap:
    def test_roundtrip(self):
        kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        wrapped = wrap_key(kek, b"users-data-key-16")
        assert unwrap_key(kek, wrapped) == b"users-data-key-16"

    def test_ciphertext_hides_key(self):
        kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        wrapped = wrap_key(kek, b"users-data-key-16")
        assert wrapped.ciphertext != b"users-data-key-16"

    def test_wrong_kek_cannot_unwrap(self):
        """The end-to-end property: a trojaned TEE never sees the key."""
        user_kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        trojan_kek = derive_kek(SECRET, b"trojan-measuremen", NONCE)
        wrapped = wrap_key(user_kek, b"users-data-key-16")
        with pytest.raises(KeyWrapError):
            unwrap_key(trojan_kek, wrapped)

    def test_tampered_blob_detected(self):
        kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        wrapped = wrap_key(kek, b"users-data-key-16")
        flipped = bytes([wrapped.ciphertext[0] ^ 1]) + wrapped.ciphertext[1:]
        with pytest.raises(KeyWrapError):
            unwrap_key(kek, WrappedKey(ciphertext=flipped, tag=wrapped.tag))

    def test_empty_key_rejected(self):
        kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        with pytest.raises(ValueError):
            wrap_key(kek, b"")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data_key):
        kek = derive_kek(SECRET, MEASUREMENT, NONCE)
        assert unwrap_key(kek, wrap_key(kek, data_key)) == data_key
