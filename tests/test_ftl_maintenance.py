"""Tests for FTL maintenance machinery: read-disturb refresh, background GC."""

import pytest

from repro.flash import FlashChip, PageState
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl


def tiny_geometry():
    return small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                          planes_per_die=1, blocks_per_plane=8, pages_per_block=8)


class TestReadDisturb:
    def make_ftl(self, threshold=20):
        geo = tiny_geometry()
        chip = FlashChip(geo, store_data=True)
        return Ftl(geo, chip=chip, read_disturb_threshold=threshold)

    def test_hot_reads_trigger_refresh(self):
        ftl = self.make_ftl(threshold=10)
        ftl.write(0, b"hot page")
        # fill both planes' active blocks so LPA 0's block is sealed
        for i in range(1, 16):
            ftl.write(i, b"filler")
        for _ in range(10):
            ftl.read(0)
        assert ftl.stats.disturb_refreshes == 1

    def test_refresh_relocates_and_preserves_data(self):
        ftl = self.make_ftl(threshold=10)
        for i in range(16):
            ftl.write(i, f"page-{i}".encode())
        old_ppa = ftl.translate(0)
        cost = None
        for _ in range(10):
            cost = ftl.read(0)
        assert cost is not None and cost.block_erases == 1
        assert ftl.translate(0) != old_ppa  # moved
        for i in range(16):
            assert ftl.read_data(i) == f"page-{i}".encode()

    def test_counter_resets_after_refresh(self):
        ftl = self.make_ftl(threshold=10)
        for i in range(16):
            ftl.write(i, b"x")
        for _ in range(10):
            ftl.read(0)
        assert ftl.stats.disturb_refreshes == 1
        for _ in range(9):
            ftl.read(0)
        assert ftl.stats.disturb_refreshes == 1  # not yet at threshold again

    def test_active_block_never_refreshed(self):
        ftl = self.make_ftl(threshold=3)
        ftl.write(0, b"in the active block")
        for _ in range(10):
            ftl.read(0)
        assert ftl.stats.disturb_refreshes == 0
        assert ftl.read_data(0) == b"in the active block"

    def test_default_threshold_is_high(self):
        ftl = self.make_ftl(threshold=100_000)
        ftl.write(0, b"x")
        for _ in range(500):
            ftl.read(0)
        assert ftl.stats.disturb_refreshes == 0

    def test_invalid_threshold(self):
        geo = tiny_geometry()
        with pytest.raises(ValueError):
            Ftl(geo, chip=FlashChip(geo), read_disturb_threshold=0)


class TestBackgroundGc:
    def make_churned_ftl(self):
        geo = tiny_geometry()
        ftl = Ftl(geo, chip=FlashChip(geo), gc_watermark=1)
        # burn through most free blocks with a hot working set
        for i in range(geo.total_pages - 24):
            ftl.write(i % 4)
        return ftl

    def test_background_gc_reclaims(self):
        ftl = self.make_churned_ftl()
        free_before = ftl.allocator.total_free_blocks()
        result = ftl.background_collect(soft_watermark=6, max_blocks=2)
        assert result.blocks_erased >= 1
        assert ftl.allocator.total_free_blocks() >= free_before
        assert ftl.stats.background_collections == 1

    def test_bounded_per_call(self):
        ftl = self.make_churned_ftl()
        result = ftl.background_collect(soft_watermark=6, max_blocks=1)
        assert result.blocks_erased <= 1

    def test_background_gc_reduces_foreground_stalls(self):
        """Proactive reclamation means later writes rarely trigger GC."""
        def churn(background):
            geo = tiny_geometry()
            ftl = Ftl(geo, chip=FlashChip(geo), gc_watermark=1)
            foreground = 0
            for i in range(geo.total_pages * 3):
                cost = ftl.write(i % 4)
                if cost.gc is not None:
                    foreground += 1
                if background and i % 4 == 0:
                    ftl.background_collect(soft_watermark=5, max_blocks=1)
            return foreground

        assert churn(background=True) < churn(background=False)

    def test_idle_system_noop(self):
        geo = tiny_geometry()
        ftl = Ftl(geo, chip=FlashChip(geo))
        result = ftl.background_collect(soft_watermark=4)
        assert result.blocks_erased == 0
        assert ftl.stats.background_collections == 0

    def test_soft_watermark_must_exceed_hard(self):
        ftl = self.make_churned_ftl()
        with pytest.raises(ValueError):
            ftl.background_collect(soft_watermark=1)
