"""Tests for the fault-injection subsystem: plans, recovery, chaos runs."""

import pytest

from repro.cli import main
from repro.core.exceptions import IntegrityError
from repro.faults import (
    EnclaveIntegrityGuard,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanConfig,
    PowerLossError,
    run_chaos,
)
from repro.flash import FlashChip
from repro.flash.chip import DieFailureError
from repro.flash.ecc import EccModel, EccUncorrectableError, ReadRetryPolicy
from repro.flash.geometry import small_geometry
from repro.ftl.ftl import Ftl, UncorrectableReadError
from repro.host.nvme import NvmeStatus, status_for_exception
from repro.sim.stats import ReliabilityStats


def tiny_geometry(**kw):
    defaults = dict(channels=2, chips_per_channel=1, dies_per_chip=2,
                    planes_per_die=2, blocks_per_plane=8, pages_per_block=8)
    defaults.update(kw)
    return small_geometry(**defaults)


def make_ftl(seed=3, **geometry_kw):
    geometry = tiny_geometry(**geometry_kw)
    chip = FlashChip(geometry, store_data=True)
    ftl = Ftl(geometry, chip=chip, overprovision=0.25)
    ftl.attach_reliability(
        ecc=EccModel(seed=seed),
        retry_policy=ReadRetryPolicy(),
        reliability=ReliabilityStats(),
    )
    return ftl


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(99, 1000)
        b = FaultPlan.generate(99, 1000)
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(1, 1000)
        b = FaultPlan.generate(2, 1000)
        assert a.events != b.events

    def test_counts_match_config(self):
        config = FaultPlanConfig(read_bursts=4, die_failures=2, power_losses=3)
        plan = FaultPlan.generate(5, 500, config)
        counts = plan.by_kind()
        assert counts[FaultKind.READ_BURST] == 4
        assert counts[FaultKind.DIE_FAILURE] == 2
        assert counts[FaultKind.POWER_LOSS] == 3
        assert len(plan.events) == config.total()

    def test_events_avoid_warmup_and_final_op(self):
        plan = FaultPlan.generate(7, 1000)
        for event in plan.events:
            assert 100 <= event.op_index < 999

    def test_events_sorted_by_op(self):
        plan = FaultPlan.generate(11, 1000)
        indices = [e.op_index for e in plan.events]
        assert indices == sorted(indices)


class TestReadRetryAndRemap:
    def test_burst_recovered_by_retry_then_scrubbed(self):
        ftl = make_ftl()
        ftl.write(7, b"payload-7")
        old_ppa = ftl.translate(7)
        t = ftl.ecc.config.correctable_bits
        ftl.ecc.inject(t + 5)
        cost = ftl.read(7)
        assert cost.read_retries >= 1
        assert cost.remapped
        assert ftl.translate(7) != old_ppa  # scrubbed to a fresh page
        assert ftl.chip.read(ftl.translate(7)) == b"payload-7"
        assert ftl.reliability.read_retries >= 1
        assert ftl.reliability.remaps == 1
        assert ftl.reliability.faults_recovered >= 1

    def test_hard_uncorrectable_is_fatal_and_unmapped(self):
        ftl = make_ftl()
        ftl.write(3, b"doomed")
        ftl.ecc.inject(100 * ftl.ecc.config.correctable_bits)
        with pytest.raises(UncorrectableReadError):
            ftl.read(3)
        assert 3 not in ftl.mapping  # stable error on subsequent reads
        assert ftl.reliability.faults_fatal == 1

    def test_inline_correctable_needs_no_retry(self):
        ftl = make_ftl()
        ftl.write(1, b"fine")
        ftl.ecc.inject(ftl.ecc.config.correctable_bits // 2)
        cost = ftl.read(1)
        assert cost.read_retries == 0
        assert not cost.remapped
        assert ftl.reliability.errors_corrected > 0


class TestPowerLossRecovery:
    def test_mappings_survive_clean_cut(self):
        ftl = make_ftl()
        data = {lpa: f"v{lpa}".encode() for lpa in range(100)}
        for lpa, payload in data.items():
            ftl.write(lpa, payload)
        for lpa in range(0, 100, 3):  # overwrites leave stale copies behind
            data[lpa] = f"v{lpa}'".encode()
            ftl.write(lpa, data[lpa])
        report = ftl.recover_from_power_loss()
        assert report.mappings_recovered == 100
        assert ftl.reliability.power_loss_recoveries == 1
        for lpa, payload in data.items():
            assert ftl.chip.read(ftl.translate(lpa)) == payload

    def test_gc_still_works_after_recovery(self):
        ftl = make_ftl()
        for lpa in range(60):
            ftl.write(lpa, f"a{lpa}".encode())
        ftl.recover_from_power_loss()
        # enough churn to force several GC passes on the rebuilt allocator
        for round_ in range(6):
            for lpa in range(60):
                ftl.write(lpa, f"r{round_}-{lpa}".encode())
        assert ftl.stats.gc_erases > 0
        for lpa in range(60):
            assert ftl.chip.read(ftl.translate(lpa)) == f"r5-{lpa}".encode()

    def test_mid_gc_cut_newest_copy_wins(self):
        ftl = make_ftl()
        cut = {"armed": True}

        def hook(point):
            if cut["armed"] and point == "gc_mid_relocate":
                cut["armed"] = False
                raise PowerLossError(point)

        ftl.gc.fault_hook = hook
        # interleave hot rewrites with colder data so GC victim blocks still
        # hold valid pages — only then does a relocation (and the armed cut)
        # actually happen
        data = {}
        raised = False
        try:
            for i in range(4000):
                hot = i % 40
                cold = 40 + (i % 200)
                for lpa, payload in ((hot, f"h{i}"), (cold, f"c{i}")):
                    ftl.write(lpa, payload.encode())
                    data[lpa] = payload.encode()
        except PowerLossError:
            raised = True
        assert raised, "GC never relocated a valid page; cut not exercised"
        report = ftl.recover_from_power_loss()
        # the interrupted relocation left two VALID copies of one LPA; the
        # rebuild must keep the newer and discard the stale one
        assert report.stale_copies_discarded >= 1
        for lpa, payload in data.items():
            assert ftl.chip.read(ftl.translate(lpa)) == payload


class TestDieFailure:
    def test_quarantine_drops_only_stranded_mappings(self):
        ftl = make_ftl()
        for lpa in range(80):
            ftl.write(lpa, f"d{lpa}".encode())
        on_die0 = [lpa for lpa in range(80)
                   if ftl.chip.die_of_ppa(ftl.translate(lpa)) == 0]
        survivors = [lpa for lpa in range(80) if lpa not in on_die0]
        assert on_die0 and survivors
        ftl.chip.fail_die(0)
        lost = ftl.quarantine_die(0)
        assert lost == len(on_die0)
        for lpa in on_die0:
            assert lpa not in ftl.mapping
        for lpa in survivors:
            assert ftl.chip.read(ftl.translate(lpa)) == f"d{lpa}".encode()

    def test_writes_continue_on_surviving_dies(self):
        ftl = make_ftl()
        for lpa in range(40):
            ftl.write(lpa, f"x{lpa}".encode())
        ftl.chip.fail_die(1)
        ftl.quarantine_die(1)
        for lpa in range(40):
            cost = ftl.write(lpa, f"y{lpa}".encode())
            assert ftl.chip.die_of_ppa(cost.ppa) != 1


class TestNvmeStatusMapping:
    def test_exception_to_status(self):
        assert status_for_exception(
            EccUncorrectableError("too many raw errors", raw_errors=99)
        ) is NvmeStatus.UNRECOVERED_READ_ERROR
        assert status_for_exception(
            UncorrectableReadError(1, 2, "gone")
        ) is NvmeStatus.UNRECOVERED_READ_ERROR
        assert status_for_exception(
            DieFailureError(0)
        ) is NvmeStatus.UNRECOVERED_READ_ERROR
        assert status_for_exception(ValueError()) is NvmeStatus.INTERNAL_ERROR

    def test_host_read_of_lost_page_gets_error_status_not_crash(self):
        ftl = make_ftl()
        ftl.write(9, b"will-vanish")
        ftl.ecc.inject(100 * ftl.ecc.config.correctable_bits)
        status = NvmeStatus.SUCCESS
        try:
            ftl.read(9)
        except UncorrectableReadError as exc:
            status = status_for_exception(exc)
        assert status is NvmeStatus.UNRECOVERED_READ_ERROR


class TestEnclaveContainment:
    def _guard(self):
        guard = EnclaveIntegrityGuard()
        for tee_id in (1, 2):
            guard.register(tee_id, pages=4, aes_key=bytes([tee_id]) * 16,
                           mac_key=bytes([9 + tee_id]) * 16)
            for line in range(4):
                guard.write(tee_id, 0, line, f"t{tee_id}l{line}".encode())
        return guard

    def test_corruption_aborts_only_affected_tenant(self):
        guard = self._guard()
        guard.tenants[1].mee.tamper_mac(0, 2)
        aborts = guard.sweep()
        assert [m.tee_id for m in aborts] == [1]
        assert guard.live_tenants() == [2]
        # the neighbour still decrypts and verifies
        assert guard.read(2, 0, 1) == b"t2l1"
        assert guard.stats.tenant_aborts == 1

    def test_merkle_corruption_detected(self):
        guard = self._guard()
        guard.tenants[2].mee.tamper_counter_tree(0)
        aborts = guard.sweep()
        assert [m.tee_id for m in aborts] == [2]
        assert guard.live_tenants() == [1]

    def test_restart_provisions_fresh_generation(self):
        guard = self._guard()
        guard.tenants[1].mee.tamper_ciphertext(0, 0)
        guard.sweep()
        tenant = guard.restart(1)
        assert tenant.generation == 1
        guard.write(1, 0, 0, b"reborn")
        assert guard.read(1, 0, 0) == b"reborn"

    def test_detection_is_an_integrity_error(self):
        guard = self._guard()
        guard.tenants[1].mee.tamper_ciphertext(0, 3)
        with pytest.raises(IntegrityError):
            guard.tenants[1].mee.read_line(0, 3)

    def test_restart_replays_committed_writes(self):
        """Regression: a post-restart read of the last committed line must
        round-trip — the tamper dies with the old MEE state, not the data."""
        guard = self._guard()
        guard.write(1, 2, 1, b"last-commit")  # the final committed write
        guard.tenants[1].mee.tamper_mac(0, 2)
        guard.sweep()
        tenant = guard.restart(1)
        assert tenant.generation == 1
        assert guard.read(1, 2, 1) == b"last-commit"
        for line in range(4):
            assert guard.read(1, 0, line) == f"t1l{line}".encode()
        assert guard.live_tenants() == [1, 2]

    def test_restart_replays_last_write_wins(self):
        """The journal is an epoch: an overwritten line replays its newest
        payload, in original first-write order."""
        guard = self._guard()
        guard.write(1, 0, 1, b"v2-overwrite")
        guard.tenants[1].mee.tamper_ciphertext(0, 3)
        guard.sweep()
        guard.restart(1)
        assert guard.read(1, 0, 1) == b"v2-overwrite"
        assert guard.read(1, 0, 0) == b"t1l0"

    def test_restart_without_replay_is_scorched_earth(self):
        guard = self._guard()
        guard.tenants[1].mee.tamper_mac(0, 0)
        guard.sweep()
        tenant = guard.restart(1, replay=False)
        assert tenant.lines_written == [] and tenant.journal == {}
        # the fresh enclave accepts new writes immediately
        guard.write(1, 0, 0, b"fresh-start")
        assert guard.read(1, 0, 0) == b"fresh-start"

    def test_restart_of_live_tenant_is_refused(self):
        guard = self._guard()
        with pytest.raises(ValueError):
            guard.restart(2)


class TestChaosDeterminism:
    def test_same_seed_identical_log_and_stats(self):
        a = run_chaos("tpch-q1", write_ratio=0.05, seed=42, ops=1200)
        b = run_chaos("tpch-q1", write_ratio=0.05, seed=42, ops=1200)
        assert a.event_log == b.event_log
        assert a.reliability == b.reliability
        assert a.nvme_statuses == b.nvme_statuses
        assert a.ftl_counters == b.ftl_counters
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_diverges(self):
        a = run_chaos("tpch-q1", write_ratio=0.05, seed=1, ops=1200)
        b = run_chaos("tpch-q1", write_ratio=0.05, seed=2, ops=1200)
        assert a.fingerprint() != b.fingerprint()

    def test_every_nonfatal_class_recovers(self):
        report = run_chaos("tpcc", write_ratio=0.4, seed=42, ops=1500)
        rel = report.reliability
        assert report.invariant_violations == 0
        assert rel["faults_injected"] == FaultPlanConfig().total()
        assert rel["power_loss_recoveries"] >= 2  # clean cut + mid-GC (or fallback)
        assert rel["tenant_aborts"] == 2
        assert rel["read_retries"] >= 1
        assert rel["remaps"] >= 1
        assert rel["dies_failed"] == 1
        assert rel["added_latency_s"] > 0

    def test_reliability_counters_reach_run_result(self):
        from repro.platform.metrics import RunResult

        report = run_chaos("tpch-q1", write_ratio=0.05, seed=3, ops=1200)
        result = RunResult.from_chaos(report)
        assert result.reliability["faults_injected"] == report.reliability["faults_injected"]
        assert result.scheme == "chaos"


class TestChaosCli:
    def test_chaos_command_exits_clean(self, capsys):
        assert main(["chaos", "tpch-q1", "--seed", "42", "--ops", "1000"]) == 0
        out = capsys.readouterr().out
        assert "deterministic: yes" in out
        assert "faults injected" in out
        assert "faults recovered" in out
        assert "faults fatal" in out

    def test_seed_flag_accepted_by_run(self, capsys):
        assert main(["run", "filter", "--dataset-gb", "1", "--seed", "5"]) == 0

    def test_injector_requires_reliability_wiring(self):
        geometry = tiny_geometry()
        bare = Ftl(geometry, chip=FlashChip(geometry, store_data=True))
        plan = FaultPlan.generate(1, 100)
        with pytest.raises(ValueError):
            FaultInjector(plan, bare)
