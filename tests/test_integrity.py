"""Tests for the Bonsai Merkle tree: tamper and replay detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BonsaiMerkleTree, IntegrityError


def make_tree(n=20, arity=4):
    tree = BonsaiMerkleTree(b"tree-key", arity=arity)
    leaves = [f"counter-{i}".encode() for i in range(n)]
    tree.build(leaves)
    return tree, leaves


class TestBuildVerify:
    def test_all_leaves_verify_after_build(self):
        tree, leaves = make_tree()
        for i, leaf in enumerate(leaves):
            tree.verify(i, leaf)

    def test_wrong_leaf_content_fails(self):
        tree, _ = make_tree()
        with pytest.raises(IntegrityError):
            tree.verify(3, b"forged counter")

    def test_update_then_verify(self):
        tree, leaves = make_tree()
        tree.update(5, b"new counter value")
        tree.verify(5, b"new counter value")
        with pytest.raises(IntegrityError):
            tree.verify(5, leaves[5])  # the old value no longer verifies

    def test_update_changes_root(self):
        tree, _ = make_tree()
        old_root = tree.root
        tree.update(0, b"bump")
        assert tree.root != old_root

    def test_single_leaf_tree(self):
        tree = BonsaiMerkleTree(b"k")
        tree.build([b"only"])
        tree.verify(0, b"only")

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            BonsaiMerkleTree(b"k").build([])

    def test_index_bounds(self):
        tree, _ = make_tree(5)
        with pytest.raises(IndexError):
            tree.verify(5, b"x")

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            BonsaiMerkleTree(b"k", arity=1)


class TestAttackDetection:
    def test_tampering_dram_node_detected(self):
        """Flipping a stored node is caught when it serves as a sibling.

        Verifying a leaf *recomputes* its own path, so the tamper surfaces
        through any leaf whose path uses the flipped node as a sibling —
        here (1, 0) is a sibling for leaves under (1, 1).
        """
        tree, leaves = make_tree(n=20, arity=4)
        tree.dram_nodes[(1, 0)] = b"\x00" * 8
        with pytest.raises(IntegrityError):
            tree.verify(4, leaves[4])  # leaf 4 sits under node (1, 1)

    def test_tampering_leaf_digest_detected(self):
        tree, leaves = make_tree(n=20, arity=4)
        tree.dram_nodes[(0, 1)] = b"\xff" * 8
        with pytest.raises(IntegrityError):
            tree.verify(0, leaves[0])  # leaf 1 is leaf 0's sibling

    def test_replay_attack_detected(self):
        """Rolling a leaf digest AND its path back to a stale snapshot still
        fails because the root register is on-chip (§4.4)."""
        tree, leaves = make_tree()
        # snapshot the attacker-visible state
        stale_nodes = dict(tree.dram_nodes)
        tree.update(2, b"counter-2-v2")
        # attacker restores the entire stale DRAM image (perfect replay)
        tree.dram_nodes.clear()
        tree.dram_nodes.update(stale_nodes)
        with pytest.raises(IntegrityError):
            tree.verify(2, leaves[2])  # old value + old nodes != new on-chip root

    def test_cross_leaf_splice_detected(self):
        """Substituting another leaf's digest in place fails."""
        tree, leaves = make_tree()
        tree.dram_nodes[(0, 1)] = tree.dram_nodes[(0, 2)]
        with pytest.raises(IntegrityError):
            tree.verify(1, leaves[2])


class TestSizing:
    def test_storage_estimate_matches_built_tree(self):
        tree, _ = make_tree(100, arity=8)
        assert tree.storage_bytes() == BonsaiMerkleTree.storage_estimate(100, arity=8)

    def test_paper_footnote_tree_sizes(self):
        """Footnote 1: ~0.5 MB (major tree) + ~4 MB (split tree) for 4 GB DRAM.

        4 GB / 4 KB pages = 1 Mi split-counter leaves; major blocks cover
        8 pages so 128 Ki leaves. MAC width 8 bytes, arity 8.
        """
        split_leaves = (4 << 30) // 4096
        major_leaves = split_leaves // 8
        split_mb = BonsaiMerkleTree.storage_estimate(split_leaves, 8) / (1 << 20)
        major_mb = BonsaiMerkleTree.storage_estimate(major_leaves, 8) / (1 << 20)
        # interior-node-only trees in the paper; our estimate includes the
        # leaf digests, so allow a generous band around 4 MB / 0.5 MB
        assert 4 <= split_mb <= 12
        assert 0.5 <= major_mb <= 1.5

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_verify_update_consistency_property(self, n):
        tree = BonsaiMerkleTree(b"k", arity=8)
        leaves = [bytes([i % 256]) * 4 for i in range(n)]
        tree.build(leaves)
        idx = n // 2
        tree.update(idx, b"changed")
        tree.verify(idx, b"changed")
        for other in {0, n - 1} - {idx}:
            tree.verify(other, leaves[other])
