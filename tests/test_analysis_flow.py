"""Tests for repro.analysis.flow: the interprocedural analysis layer.

Four layers of coverage:

- fixtures: every flow rule has at least one positive it catches and one
  near-miss it must ignore, plus a cross-module case only the summary
  fixpoint can see;
- the machinery: SARIF reporter, `--graph` export, entropy-source
  extensions to the determinism rules;
- the self-scan regression: zero unbaselined flow findings on `src/repro`
  (the serve `stop()` race and the stale layer grants are FIXED, and must
  stay fixed);
- determinism + budget: two consecutive runs are byte-identical and the
  whole-program pass fits the CI wall-time budget.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import ProjectRule, all_rules, analyze_paths
from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.finding import FindingStatus
from repro.analysis.flow.graph import build_graph, render_graph
from repro.analysis.report import render_json, render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"

FLOW_RULE_IDS = sorted(
    rule.id for rule in all_rules() if isinstance(rule, ProjectRule)
)

# (fixture files scanned together) -> expected flow findings (rule, path)
FLOW_FIXTURES = {
    ("flow_secret_escape.py",): [
        ("flow-secret-escape", "flow_secret_escape.py")
    ],
    ("flow_secret_escape_ok.py",): [],
    ("flow_cross_tcb.py", "flow_cross_leak.py"): [
        ("flow-secret-escape", "flow_cross_leak.py")
    ],
    ("flow_race_await.py",): [
        ("race-await-atomicity", "flow_race_await.py")
    ],
    ("flow_race_await_ok.py",): [],
    ("flow_exception_containment.py",): [
        ("flow-exception-containment", "flow_exception_containment.py")
    ],
    ("flow_exception_containment_ok.py",): [],
    ("flow_drift_a.py", "flow_drift_b.py"): [
        ("flow-layer-drift", "flow_drift_a.py")
    ],
    ("flow_drift_used.py", "flow_drift_b.py"): [],
}


def scan(*names):
    return analyze_paths([FIXTURES / n for n in names], root=FIXTURES)


def flow_findings(result):
    return [
        f for f in result.findings
        if f.rule in FLOW_RULE_IDS and f.status is FindingStatus.NEW
    ]


class TestFlowFixtures:
    @pytest.mark.parametrize(
        "names,expected",
        sorted(FLOW_FIXTURES.items()),
        ids=["+".join(k) for k in sorted(FLOW_FIXTURES)],
    )
    def test_fixture_flow_findings(self, names, expected):
        result = scan(*names)
        got = [(f.rule, f.path) for f in flow_findings(result)]
        assert got == expected

    def test_every_flow_rule_has_positive_and_near_miss(self):
        fired = {rule for hits in FLOW_FIXTURES.values() for rule, _ in hits}
        assert fired == set(FLOW_RULE_IDS)
        # every rule with a positive also has a scan that stays silent
        assert any(not hits for hits in FLOW_FIXTURES.values())

    def test_secret_escape_defeats_name_heuristic_only(self):
        """The positive is invisible to the old name-based rule."""
        result = scan("flow_secret_escape.py")
        assert [f.rule for f in result.findings] == ["flow-secret-escape"]
        message = result.findings[0].message
        assert "session_key" in message  # the origin is named in the report

    def test_containment_near_miss_uses_interprocedural_reachability(self):
        """escalate() -> throw_out_tee() is only visible to the fixpoint."""
        result = scan("flow_exception_containment_ok.py")
        assert flow_findings(result) == []
        # the broad except itself is waived, not silently ignored
        statuses = {f.rule: f.status for f in result.findings}
        assert statuses.get("sec-broad-except") is FindingStatus.SUPPRESSED

    def test_race_positive_pinpoints_write_after_await(self):
        result = scan("flow_race_await.py")
        (finding,) = flow_findings(result)
        assert "flushing" in finding.message
        assert "await" in finding.message


class TestEntropyRules:
    """Satellite: det-import-random covers secrets/os.urandom/uuid4."""

    @pytest.mark.parametrize(
        "snippet",
        [
            "import secrets\n",
            "from secrets import token_bytes\n",
            "import os\nx = os.urandom(16)\n",
            "import uuid\nx = uuid.uuid4()\n",
            "from uuid import uuid4\n",
        ],
    )
    def test_entropy_source_is_flagged(self, tmp_path, snippet):
        victim = tmp_path / "victim.py"
        victim.write_text(snippet)
        result = analyze_paths([victim], root=tmp_path)
        fired = [f.rule for f in result.findings]
        assert fired == ["det-import-random"], snippet

    def test_plain_os_and_uuid_imports_are_fine(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import os\nimport uuid\np = os.sep\n")
        result = analyze_paths([victim], root=tmp_path)
        assert result.findings == []


class TestSarifReporter:
    def test_sarif_shape_and_determinism(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import secrets\n")
        result = analyze_paths([victim], root=tmp_path)
        rendered = render_sarif(result.findings, result.files_scanned)
        assert rendered == render_sarif(result.findings, result.files_scanned)
        payload = json.loads(rendered)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(FLOW_RULE_IDS) <= rule_ids
        (sarif_result,) = run["results"]
        assert sarif_result["ruleId"] == "det-import-random"
        assert sarif_result["level"] == "error"
        region = sarif_result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1

    def test_suppressed_findings_become_sarif_suppressions(self):
        result = scan("flow_exception_containment_ok.py")
        payload = json.loads(
            render_sarif(result.findings, result.files_scanned)
        )
        suppressed = [
            r for r in payload["runs"][0]["results"] if "suppressions" in r
        ]
        assert suppressed, "waived finding must carry a SARIF suppression"
        assert all(r["level"] == "note" for r in suppressed)

    def test_cli_sarif_format(self, tmp_path, capsys):
        victim = tmp_path / "victim.py"
        victim.write_text("import random\n")
        code = lint_main([str(victim), "--no-baseline", "--format", "sarif"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"]


class TestGraphExport:
    def test_graph_reports_drift_sets(self):
        result = analyze_paths(
            [FIXTURES / "flow_drift_a.py", FIXTURES / "flow_drift_b.py"],
            root=FIXTURES,
            need_project=True,
        )
        graph = build_graph(result.project.index)
        assert "flash -> crypto" in graph["layers"]["unused_grants"]

    def test_cli_graph_export(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        code = lint_main(
            [
                str(FIXTURES / "flow_cross_tcb.py"),
                str(FIXTURES / "flow_cross_leak.py"),
                "--no-baseline",
                "--root", str(FIXTURES),
                "--graph", str(out),
            ]
        )
        assert code == 1  # the cross-module leak still fails the lint
        capsys.readouterr()
        graph = json.loads(out.read_text())
        assert graph["version"] == 1
        callers = graph["call_graph"][
            "repro.core.fixture_flow_caller.report"
        ]
        assert "repro.core.fixture_flow_tcb.stretch" in callers


class TestSelfScan:
    """The gates CI enforces for the whole-program pass."""

    def _scan_src(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        return analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline
        )

    def test_zero_unbaselined_flow_findings_on_src(self):
        """Regression pin: the serve stop() race and the stale layer grants
        are fixed; new flow findings on src must be fixed, not baselined."""
        result = self._scan_src()
        offenders = [
            f"{f.path}:{f.line}: {f.rule}: {f.message}"
            for f in flow_findings(result)
        ]
        assert offenders == [], "\n".join(offenders)

    def test_flow_pass_is_deterministic_and_within_budget(self):
        start = time.monotonic()  # repro: allow[det-wallclock] -- test harness measures the CI budget, not sim time
        first = self._scan_src()
        second = self._scan_src()
        elapsed = time.monotonic()  # repro: allow[det-wallclock] -- test harness measures the CI budget, not sim time
        assert (elapsed - start) < 30.0, "flow pass blew the CI lint budget"
        first_json = render_json(first.findings, first.files_scanned)
        second_json = render_json(second.findings, second.files_scanned)
        assert first_json == second_json  # byte-identical double run

    def test_graph_export_is_deterministic_and_drift_free(self):
        first = analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, need_project=True
        )
        second = analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, need_project=True
        )
        a = render_graph(first.project.index)
        b = render_graph(second.project.index)
        assert a == b
        graph = json.loads(a)
        assert graph["layers"]["unused_grants"] == []
        assert graph["layers"]["undocumented"] == []
        # the taint engine resolved real cross-layer edges, not nothing
        assert len(graph["call_graph"]) > 100
