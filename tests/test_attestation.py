"""Tests for in-storage TEE attestation."""

import pytest

from repro.core.attestation import (
    AttestationDevice,
    AttestationError,
    AttestationVerifier,
    Quote,
    measure_code,
)
from repro.core.tee import Tee

SECRET = b"vendor-provisioned-secret!"
CODE = b"\x90" * 128


def make_pair():
    device = AttestationDevice(SECRET)
    verifier = AttestationVerifier(SECRET, device.device_id)
    return device, verifier


def make_tee(code=CODE, eid=3):
    return Tee(eid=eid, tid=1, code=code, lpas=[0, 1])


class TestQuoteFlow:
    def test_honest_quote_verifies(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"session-1")
        quote = device.quote(tee, nonce)
        verifier.verify(quote, expected_code=CODE, nonce=nonce)  # no raise

    def test_wrong_binary_detected(self):
        """A compromised SSD running different code cannot attest."""
        device, verifier = make_pair()
        tee = make_tee(code=b"\xcc" * 128)  # trojaned binary
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        with pytest.raises(AttestationError, match="measurement mismatch"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_forged_signature_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        forged = Quote(quote.device_id, quote.tee_eid, quote.measurement,
                       quote.nonce, b"\x00" * 8)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(forged, expected_code=CODE, nonce=nonce)

    def test_impostor_device_detected(self):
        """A device with a different secret cannot impersonate."""
        _, verifier = make_pair()
        impostor = AttestationDevice(b"some-other-device-secret")
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = impostor.quote(tee, nonce)
        with pytest.raises(AttestationError, match="unknown device"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_stale_nonce_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        old_nonce = verifier.fresh_nonce(b"old")
        quote = device.quote(tee, old_nonce)
        fresh = verifier.fresh_nonce(b"new")
        with pytest.raises(AttestationError, match="different challenge"):
            verifier.verify(quote, expected_code=CODE, nonce=fresh)

    def test_quote_replay_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        verifier.verify(quote, expected_code=CODE, nonce=nonce)
        with pytest.raises(AttestationError, match="replay"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_measurement_matches_tee_construction(self):
        tee = make_tee()
        assert tee.measurement == measure_code(CODE)

    def test_tampered_field_breaks_signature(self):
        device, verifier = make_pair()
        tee = make_tee(eid=3)
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        tampered = Quote(quote.device_id, 4, quote.measurement, quote.nonce,
                         quote.signature)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(tampered, expected_code=CODE, nonce=nonce)


class TestValidation:
    def test_weak_secret_rejected(self):
        with pytest.raises(ValueError):
            AttestationDevice(b"short")

    def test_weak_nonce_rejected(self):
        device, _ = make_pair()
        with pytest.raises(ValueError):
            device.quote(make_tee(), b"tiny")
