"""Tests for in-storage TEE attestation."""

import pytest

from repro.core.attestation import (
    AttestationDevice,
    AttestationError,
    AttestationVerifier,
    Quote,
    measure_code,
)
from repro.core.tee import Tee

SECRET = b"vendor-provisioned-secret!"
CODE = b"\x90" * 128


def make_pair():
    device = AttestationDevice(SECRET)
    verifier = AttestationVerifier(SECRET, device.device_id)
    return device, verifier


def make_tee(code=CODE, eid=3):
    return Tee(eid=eid, tid=1, code=code, lpas=[0, 1])


class TestQuoteFlow:
    def test_honest_quote_verifies(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"session-1")
        quote = device.quote(tee, nonce)
        verifier.verify(quote, expected_code=CODE, nonce=nonce)  # no raise

    def test_wrong_binary_detected(self):
        """A compromised SSD running different code cannot attest."""
        device, verifier = make_pair()
        tee = make_tee(code=b"\xcc" * 128)  # trojaned binary
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        with pytest.raises(AttestationError, match="measurement mismatch"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_forged_signature_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        forged = Quote(quote.device_id, quote.tee_eid, quote.measurement,
                       quote.nonce, b"\x00" * 8)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(forged, expected_code=CODE, nonce=nonce)

    def test_impostor_device_detected(self):
        """A device with a different secret cannot impersonate."""
        _, verifier = make_pair()
        impostor = AttestationDevice(b"some-other-device-secret")
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = impostor.quote(tee, nonce)
        with pytest.raises(AttestationError, match="unknown device"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_stale_nonce_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        old_nonce = verifier.fresh_nonce(b"old")
        quote = device.quote(tee, old_nonce)
        fresh = verifier.fresh_nonce(b"new")
        with pytest.raises(AttestationError, match="different challenge"):
            verifier.verify(quote, expected_code=CODE, nonce=fresh)

    def test_quote_replay_detected(self):
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        verifier.verify(quote, expected_code=CODE, nonce=nonce)
        with pytest.raises(AttestationError, match="replay"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_measurement_matches_tee_construction(self):
        tee = make_tee()
        assert tee.measurement == measure_code(CODE)

    def test_tampered_field_breaks_signature(self):
        device, verifier = make_pair()
        tee = make_tee(eid=3)
        nonce = verifier.fresh_nonce(b"s")
        quote = device.quote(tee, nonce)
        tampered = Quote(quote.device_id, 4, quote.measurement, quote.nonce,
                         quote.signature)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(tampered, expected_code=CODE, nonce=nonce)


class TestReplayHardening:
    """Regression tests for the nonce session window (replay hardening)."""

    def test_fresh_nonce_rejects_reuse_within_window(self):
        _, verifier = make_pair()
        verifier.fresh_nonce(b"session-1")
        with pytest.raises(AttestationError, match="nonce reuse within the session window"):
            verifier.fresh_nonce(b"session-1")

    def test_replayed_quote_is_refused(self):
        """An attacker who recorded a whole handshake cannot replay it."""
        device, verifier = make_pair()
        tee = make_tee()
        nonce = verifier.fresh_nonce(b"session-1")
        quote = device.quote(tee, nonce)
        verifier.verify(quote, expected_code=CODE, nonce=nonce)
        # replaying the recorded (quote, nonce) pair must be refused
        with pytest.raises(AttestationError, match="replay"):
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_unissued_challenge_is_refused(self):
        """A quote over an attacker-chosen nonce never verifies."""
        device, verifier = make_pair()
        tee = make_tee()
        forged_nonce = b"\xab" * 16  # never issued by this verifier
        quote = device.quote(tee, forged_nonce)
        with pytest.raises(AttestationError, match="not issued"):
            verifier.verify(quote, expected_code=CODE, nonce=forged_nonce)

    def test_challenge_aged_out_of_window_is_refused(self):
        from repro.core.attestation import AttestationDevice, AttestationVerifier

        device = AttestationDevice(SECRET)
        verifier = AttestationVerifier(SECRET, device.device_id, nonce_window=2)
        tee = make_tee()
        old = verifier.fresh_nonce(b"old")
        quote = device.quote(tee, old)
        # two newer challenges evict the old one from the window
        verifier.fresh_nonce(b"newer-1")
        verifier.fresh_nonce(b"newer-2")
        with pytest.raises(AttestationError, match="not issued"):
            verifier.verify(quote, expected_code=CODE, nonce=old)

    def test_distinct_entropy_still_flows(self):
        device, verifier = make_pair()
        for i in range(8):
            nonce = verifier.fresh_nonce(b"session-%d" % i)
            quote = device.quote(make_tee(), nonce)
            verifier.verify(quote, expected_code=CODE, nonce=nonce)

    def test_window_must_be_positive(self):
        from repro.core.attestation import AttestationVerifier

        with pytest.raises(ValueError):
            AttestationVerifier(SECRET, b"\x00" * 8, nonce_window=0)


class TestValidation:
    def test_weak_secret_rejected(self):
        with pytest.raises(ValueError):
            AttestationDevice(b"short")

    def test_weak_nonce_rejected(self):
        device, _ = make_pair()
        with pytest.raises(ValueError):
            device.quote(make_tee(), b"tiny")
