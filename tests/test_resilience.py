"""Tests for repro.resilience: policies, breakers, admission, degradation,
the SLO tracker, and the availability lab.

The two properties the PR stands on:

- every policy is a pure function of (sim clock, explicit seed) — the
  same-seed lab runs must produce byte-identical fingerprints, CSV rows and
  SLO summaries;
- on the seed-7 chaos plan, policies-on must beat policies-off on both
  availability and p99 read latency (the CLI enforces the same gate).
"""

import math

import pytest

from repro.cli import main as repro_main
from repro.host.library import IceClaveLibrary, ServiceDegradedError
from repro.platform.metrics import SloObjectives, SloTracker
from repro.resilience import (
    AdmissionConfig,
    AdmissionController,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DegradationLadder,
    DegradeConfig,
    HedgePolicy,
    RetryPolicy,
    ServiceMode,
    TimeoutBudget,
    TokenBucket,
    run_resilience,
)


class TestTimeoutBudget:
    def test_defaults_are_sane(self):
        budget = TimeoutBudget()
        assert 0 < budget.command_timeout_s <= budget.request_deadline_s

    def test_rejects_inverted_budget(self):
        with pytest.raises(ValueError):
            TimeoutBudget(command_timeout_s=2e-3, request_deadline_s=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TimeoutBudget(command_timeout_s=0.0)


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)

    def test_first_retry_is_immediate(self):
        assert RetryPolicy().delay(0) == 0.0

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=100e-6, multiplier=2.0,
            cap_s=400e-6, jitter_fraction=0.0, seed=1,
        )
        delays = [policy.delay(k) for k in range(1, 6)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(100e-6)
        assert max(delays) == pytest.approx(400e-6)  # capped

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(jitter_fraction=0.5, seed=77)
        b = RetryPolicy(jitter_fraction=0.5, seed=77)
        assert [a.delay(k) for k in range(1, 5)] == [b.delay(k) for k in range(1, 5)]

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(
            base_delay_s=100e-6, multiplier=1.0, cap_s=100e-6,
            jitter_fraction=0.25, seed=5,
        )
        for k in range(1, 20):
            assert 100e-6 <= policy.delay(k) <= 125e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=2e-3, cap_s=1e-3)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)


class TestHedgePolicy:
    def test_floor_until_enough_samples(self):
        policy = HedgePolicy(floor_s=400e-6, min_samples=8)
        assert policy.hedge_delay([50e-6] * 7) == 400e-6

    def test_tracks_observed_quantile(self):
        policy = HedgePolicy(quantile=0.9, floor_s=1e-6, min_samples=4)
        observed = sorted(i * 100e-6 for i in range(1, 11))
        assert policy.hedge_delay(observed) == pytest.approx(900e-6)

    def test_never_below_floor(self):
        policy = HedgePolicy(quantile=0.9, floor_s=5e-3, min_samples=2)
        assert policy.hedge_delay([1e-6, 2e-6, 3e-6]) == 5e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(floor_s=0.0)


class TestCircuitBreaker:
    def make(self, **kw):
        defaults = dict(
            failure_threshold=3, reset_timeout_s=1e-3,
            probe_interval_s=0.5e-3, success_threshold=1,
        )
        defaults.update(kw)
        return CircuitBreaker("ch0", BreakerConfig(**defaults))

    def test_full_lifecycle_closed_open_halfopen_closed(self):
        breaker = self.make()
        for t in (1e-6, 2e-6, 3e-6):
            assert breaker.allow(t)
            breaker.record_failure(t)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(0.5e-3)  # still inside reset timeout
        assert breaker.allow(1.2e-3)  # reset elapsed: probe admitted
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(1.25e-3)
        assert breaker.state is BreakerState.CLOSED
        assert [label for _, label in breaker.transitions] == [
            "closed->open", "open->half_open", "half_open->closed",
        ]

    def test_failed_probe_reopens_and_rearms(self):
        breaker = self.make()
        for t in (1e-6, 2e-6, 3e-6):
            breaker.record_failure(t)
        assert breaker.allow(1.2e-3)
        breaker.record_failure(1.3e-3)
        assert breaker.state is BreakerState.OPEN
        # the reset timer restarted at the failed probe
        assert not breaker.allow(1.9e-3)
        assert breaker.allow(2.4e-3)

    def test_half_open_paces_probes(self):
        breaker = self.make()
        for t in (1e-6, 2e-6, 3e-6):
            breaker.record_failure(t)
        assert breaker.allow(1.2e-3)  # first probe
        assert not breaker.allow(1.3e-3)  # too soon for another
        assert breaker.allow(1.8e-3)  # probe_interval elapsed

    def test_success_resets_failure_streak(self):
        breaker = self.make()
        breaker.record_failure(1e-6)
        breaker.record_failure(2e-6)
        breaker.record_success(3e-6)
        breaker.record_failure(4e-6)
        breaker.record_failure(5e-6)
        assert breaker.state is BreakerState.CLOSED  # streak broken at 2

    def test_effectively_open_ages_out(self):
        breaker = self.make()
        for t in (1e-6, 2e-6, 3e-6):
            breaker.record_failure(t)
        assert breaker.effectively_open(0.5e-3)
        assert not breaker.effectively_open(1.5e-3)  # ready to probe

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(reset_timeout_s=0.0)


class TestBreakerBoard:
    def test_keys_created_on_first_use_and_sorted(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        for key in ("ch2", "ch0"):
            for _ in range(1):
                board.breaker(key).record_failure(1e-6)
        assert board.open_keys() == ["ch0", "ch2"]
        assert board.open_count() == 2

    def test_time_aware_open_count(self):
        config = BreakerConfig(failure_threshold=1, reset_timeout_s=1e-3)
        board = BreakerBoard(config)
        board.breaker("ch0").record_failure(0.0)
        assert board.open_count(0.5e-3) == 1
        assert board.open_count(2e-3) == 0  # past reset: recovering, not dark
        assert board.open_count() == 1  # state alone is still OPEN


class TestAdmission:
    def test_bucket_refills_with_sim_clock(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # empty
        assert bucket.try_take(1e-3)  # one token refilled after 1 ms

    def test_bucket_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2.0)
        bucket.try_take(0.0)
        assert bucket.tokens == pytest.approx(1.0)
        bucket.try_take(10.0)  # long idle: refill capped at burst
        assert bucket.tokens == pytest.approx(1.0)

    def test_queue_depth_backpressure(self):
        controller = AdmissionController(
            AdmissionConfig(rate_per_s=1e6, burst=100.0, max_queued=4)
        )
        assert controller.admit(0.0, queued=3)
        assert not controller.admit(0.0, queued=4)
        assert controller.shed_queue == 1
        assert controller.shed == 1

    def test_rate_shed_counted_separately(self):
        controller = AdmissionController(
            AdmissionConfig(rate_per_s=1000.0, burst=1.0, max_queued=10)
        )
        assert controller.admit(0.0, queued=0)
        assert not controller.admit(0.0, queued=0)
        assert controller.shed_rate == 1 and controller.shed_queue == 0
        assert controller.admitted == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_per_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queued=0)


class TestDegradationLadder:
    def make(self, **kw):
        defaults = dict(
            open_breakers_readonly=2, integrity_violations_readonly=2,
            open_breakers_failsafe=3, integrity_violations_failsafe=4,
            fatal_faults_failsafe=2, recovery_window_s=1e-3,
        )
        defaults.update(kw)
        return DegradationLadder(DegradeConfig(**defaults))

    def test_normal_allows_everything(self):
        ladder = self.make()
        assert ladder.allows_reads() and ladder.allows_writes()
        assert ladder.allows_offload()

    def test_violations_trip_readonly(self):
        ladder = self.make()
        ladder.note_integrity_violation(1e-6)
        assert ladder.mode is ServiceMode.NORMAL
        ladder.note_integrity_violation(2e-6)
        assert ladder.mode is ServiceMode.DEGRADED_READONLY
        assert ladder.allows_reads() and not ladder.allows_writes()
        assert not ladder.allows_offload()

    def test_breakers_trip_failsafe(self):
        ladder = self.make()
        ladder.note_open_breakers(1e-6, 3)
        assert ladder.mode is ServiceMode.FAILSAFE
        assert not ladder.allows_reads() and not ladder.allows_writes()

    def test_fatal_faults_trip_failsafe(self):
        ladder = self.make()
        ladder.note_fatal_fault(1e-6)
        ladder.note_fatal_fault(2e-6)
        assert ladder.mode is ServiceMode.FAILSAFE

    def test_climbs_one_rung_per_clean_window(self):
        ladder = self.make()
        ladder.note_open_breakers(0.0, 3)
        assert ladder.mode is ServiceMode.FAILSAFE
        ladder.note_open_breakers(0.1e-3, 0)  # breakers recovered
        assert ladder.mode is ServiceMode.FAILSAFE  # window not elapsed
        assert ladder.evaluate(1.2e-3) is ServiceMode.DEGRADED_READONLY
        assert ladder.evaluate(1.5e-3) is ServiceMode.DEGRADED_READONLY
        assert ladder.evaluate(2.4e-3) is ServiceMode.NORMAL

    def test_violations_decay_after_quiet_window(self):
        """A violation-pinned mode must recover on its own (no deadlock)."""
        ladder = self.make()
        ladder.note_integrity_violation(0.0)
        ladder.note_integrity_violation(0.1e-3)
        assert ladder.mode is ServiceMode.DEGRADED_READONLY
        assert ladder.evaluate(0.5e-3) is ServiceMode.DEGRADED_READONLY
        assert ladder.evaluate(1.5e-3) is ServiceMode.NORMAL
        assert ladder.integrity_violations == 0

    def test_fresh_violation_restarts_the_clock(self):
        ladder = self.make()
        ladder.note_integrity_violation(0.0)
        ladder.note_integrity_violation(0.1e-3)
        ladder.note_integrity_violation(0.9e-3)  # still sick
        assert ladder.evaluate(1.5e-3) is ServiceMode.DEGRADED_READONLY
        assert ladder.evaluate(2.0e-3) is ServiceMode.NORMAL

    def test_transitions_are_timestamped(self):
        ladder = self.make()
        ladder.note_open_breakers(1e-3, 2)
        assert ladder.transitions == [(1e-3, "normal->degraded_readonly")]
        assert ladder.transition_log() == ["t=1000.0us mode normal->degraded_readonly"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradeConfig(recovery_window_s=0.0)


class TestLibraryDegradation:
    def test_service_mode_without_ladder_is_normal(self):
        library = IceClaveLibrary(runtime=object())
        assert library.service_mode() == "normal"

    def test_degraded_mode_refuses_offload(self):
        ladder = DegradationLadder(DegradeConfig())
        ladder.note_open_breakers(1e-6, 5)
        library = IceClaveLibrary(runtime=object(), degradation=ladder)
        assert library.service_mode() == "failsafe"
        with pytest.raises(ServiceDegradedError) as excinfo:
            library.offload_code(b"\x00", lpas=[1, 2])
        assert excinfo.value.mode == "failsafe"


class TestSloTracker:
    def make(self):
        return SloTracker(SloObjectives(availability=0.9, p99_read_s=1e-3),
                          window_s=1e-3)

    def test_availability_and_percentiles(self):
        slo = self.make()
        for i in range(9):
            slo.record(i * 1e-4, "read", 100e-6, ok=True)
        slo.record(9e-4, "read", 5e-3, ok=False)
        assert slo.availability() == pytest.approx(0.9)
        assert slo.percentile("read", 50) == pytest.approx(100e-6)
        # the failed request's latency still counts in the tail
        assert slo.percentile("read", 99) == pytest.approx(5e-3)

    def test_error_budget(self):
        slo = self.make()
        for i in range(10):
            slo.record(0.0, "read", 1e-6, ok=(i != 0))
        assert slo.error_budget_remaining() == pytest.approx(0.0)

    def test_worst_window(self):
        slo = self.make()
        slo.record(0.1e-3, "read", 1e-6, ok=True)
        slo.record(5.2e-3, "read", 1e-6, ok=False)
        slo.record(5.4e-3, "read", 1e-6, ok=False)
        start, requests, failures = slo.worst_window()
        assert start == pytest.approx(5e-3)
        assert (requests, failures) == (2, 2)

    def test_summary_is_deterministic(self):
        def build():
            slo = self.make()
            slo.record(0.0, "read", 80e-6, ok=True)
            slo.record(1e-4, "write", 120e-6, ok=False)
            return slo.format()
        assert build() == build()

    def test_meets_objectives(self):
        slo = self.make()
        slo.record(0.0, "read", 10e-6, ok=True)
        assert slo.meets_objectives()
        slo.record(1e-4, "read", 5e-3, ok=False)
        assert not slo.meets_objectives()


class TestResilienceLab:
    """The acceptance properties, on the quick (600-request) plan."""

    @classmethod
    def setup_class(cls):
        cls.first = run_resilience(seed=7, ops=600)
        cls.second = run_resilience(seed=7, ops=600)

    def test_same_seed_byte_identical_reports(self):
        assert self.first.fingerprint() == self.second.fingerprint()
        assert self.first.format() == self.second.format()

    def test_same_seed_byte_identical_csv_and_slo_summaries(self):
        csv_a = "\n".join(",".join(row) for row in self.first.csv_rows())
        csv_b = "\n".join(",".join(row) for row in self.second.csv_rows())
        assert csv_a == csv_b
        assert self.first.resilient.slo_lines == self.second.resilient.slo_lines
        assert self.first.baseline.slo_lines == self.second.baseline.slo_lines

    def test_policies_improve_availability(self):
        report = self.first
        assert report.resilient.availability > report.baseline.availability
        assert report.resilient.availability >= 0.99

    def test_policies_improve_p99_read_latency(self):
        report = self.first
        assert report.resilient.p99_read_s < report.baseline.p99_read_s

    def test_policies_actually_engaged(self):
        counters = self.first.resilient.counters
        assert counters.get("retries", 0) > 0
        assert counters.get("command_timeouts", 0) > 0
        assert counters.get("breaker_transitions", 0) > 0
        assert self.first.baseline.counters.get("retries", 0) == 0

    def test_off_arm_sees_the_hang(self):
        """Without timeouts, the dead die wedges requests to the horizon."""
        assert self.first.baseline.failure_reasons.get("unfinished_at_horizon", 0) > 0
        assert "unfinished_at_horizon" not in self.first.resilient.failure_reasons

    def test_plan_summary_covers_the_fault_classes(self):
        assert self.first.plan_summary.get("die_failure") == 1
        assert self.first.plan_summary.get("dram_corruption") == 2

    def test_different_seed_diverges(self):
        other = run_resilience(seed=8, ops=600)
        assert other.fingerprint() != self.first.fingerprint()


class TestResilienceCli:
    def test_quick_run_exits_clean(self, capsys, tmp_path):
        csv_path = tmp_path / "slo.csv"
        assert repro_main([
            "resilience", "--quick", "--seed", "7", "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "deterministic: yes" in out
        assert "policies ON" in out
        rows = csv_path.read_text().strip().splitlines()
        assert len(rows) == 3  # header + both arms
        assert rows[1].split(",")[3] == "off"
        assert rows[2].split(",")[3] == "on"

    def test_unreachable_availability_floor_fails(self, capsys):
        assert repro_main([
            "resilience", "--quick", "--seed", "7", "--min-availability", "100",
        ]) == 1
        capsys.readouterr()

    def test_rejects_tiny_ops(self, capsys):
        assert repro_main(["resilience", "--ops", "5"]) == 2
        capsys.readouterr()


class TestLabEdgeCases:
    def test_hung_channel_latency_is_infinite(self):
        from repro.resilience.lab import LabConfig, _Channel
        from repro.crypto.prng import XorShift64
        from repro.host.nvme import NvmeQueuePair
        from repro.host.pcie import PcieLink
        from repro.sim import Engine

        engine = Engine()
        channel = _Channel(
            index=0,
            qp=NvmeQueuePair(engine, PcieLink()),
            rng=XorShift64(1),
            dead_from=0.0,
        )
        cfg = LabConfig()
        assert math.isinf(
            channel.service_latency(1e-3, cfg.base_latency_s, cfg.jitter_s, -1.0)
        )

    def test_storm_scales_latency_inside_window(self):
        from repro.resilience.lab import LabConfig, _Channel
        from repro.crypto.prng import XorShift64
        from repro.host.nvme import NvmeQueuePair
        from repro.host.pcie import PcieLink
        from repro.sim import Engine

        engine = Engine()
        channel = _Channel(
            index=0, qp=NvmeQueuePair(engine, PcieLink()), rng=XorShift64(1),
            slow_until=1e-3, slow_factor=8.0,
        )
        cfg = LabConfig(jitter_s=0.0)
        slow = channel.service_latency(0.5e-3, cfg.base_latency_s, 0.0, -1.0)
        fast = channel.service_latency(2e-3, cfg.base_latency_s, 0.0, -1.0)
        assert slow == pytest.approx(8 * fast)
