"""Tests for repro.serve: wire protocol, secure sessions, the asyncio
offload service, the open-loop load generator, and the serve lab."""

import asyncio

import pytest

from repro.core.attestation import (
    AttestationDevice,
    AttestationError,
    AttestationVerifier,
)
from repro.core.config import MIB, IceClaveConfig
from repro.core.key_management import derive_kek
from repro.core.runtime import IceClaveRuntime
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.host.library import IceClaveLibrary
from repro.host.nvme import NvmeStatus
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.degrade import DegradationLadder, DegradeConfig
from repro.serve import (
    ArrivalConfig,
    AttestClient,
    OffloadService,
    Reply,
    Request,
    SealedEnvelope,
    ServerSessionManager,
    SessionError,
    TickClock,
    WireStatus,
    generate_arrivals,
    make_tenants,
    retry_after_for,
    run_serve_lab,
    status_for_mode,
    status_for_nvme,
)
from repro.serve.lab import GENUINE_BINARY, TROJANED_BINARY, serve_plan_config
from repro.serve.service import DataPathFault
from repro.serve.session import (
    CHANNEL_C2S,
    SecureChannel,
    try_handshake,
)
from repro.serve.wire import RETRYABLE

SECRET = b"test-vendor-secret-0001"


# -- wire protocol -------------------------------------------------------------


class TestWire:
    def test_request_round_trip(self):
        request = Request(op="write", lpas=(3, 17, 255), payload=b"hello")
        assert Request.decode(request.encode()) == request

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(op="erase", lpas=(1,))
        with pytest.raises(ValueError):
            Request(op="read", lpas=())

    def test_reply_round_trip_preserves_float_hint(self):
        reply = Reply(
            status=WireStatus.THROTTLED,
            retry_after_s=2.0000000000000002e-04,
            payload=b"x",
            mode="degraded_readonly",
        )
        decoded = Reply.decode(reply.encode())
        assert decoded == reply
        assert decoded.retry_after_s == reply.retry_after_s

    def test_truncated_and_trailing_blobs_rejected(self):
        blob = Request(op="read", lpas=(1,)).encode()
        with pytest.raises(ValueError):
            Request.decode(blob[:-2])
        with pytest.raises(ValueError):
            Request.decode(blob + b"\x00")

    def test_retry_hints_only_on_retryable_statuses(self):
        for status in WireStatus:
            hint = retry_after_for(status)
            if status in RETRYABLE:
                assert hint > 0.0
            else:
                assert hint == 0.0

    def test_nvme_and_mode_mappings(self):
        assert status_for_nvme(NvmeStatus.COMMAND_ABORTED) is WireStatus.TIMEOUT
        assert (
            status_for_nvme(NvmeStatus.UNRECOVERED_READ_ERROR)
            is WireStatus.READ_ERROR
        )
        assert status_for_nvme(NvmeStatus.WRITE_FAULT) is WireStatus.WRITE_ERROR
        assert status_for_mode("degraded_readonly") is WireStatus.DEGRADED_READONLY
        assert status_for_mode("failsafe") is WireStatus.FAILSAFE


# -- secure channel ------------------------------------------------------------


class TestSecureChannel:
    def _channel(self):
        return SecureChannel(session_id=9, session_key=b"k" * 16)

    def test_seal_open_round_trip(self):
        channel = self._channel()
        envelope = channel.seal(CHANNEL_C2S, 0, b"plaintext payload")
        assert envelope.ciphertext != b"plaintext payload"
        assert channel.open(envelope, CHANNEL_C2S, 0) == b"plaintext payload"

    def test_tampered_ciphertext_fails_auth(self):
        channel = self._channel()
        envelope = channel.seal(CHANNEL_C2S, 0, b"payload")
        flipped = bytes([envelope.ciphertext[0] ^ 1]) + envelope.ciphertext[1:]
        tampered = SealedEnvelope(
            session_id=envelope.session_id, channel=envelope.channel,
            seq=envelope.seq, ciphertext=flipped, tag=envelope.tag,
        )
        with pytest.raises(SessionError) as err:
            channel.open(tampered, CHANNEL_C2S, 0)
        assert err.value.status is WireStatus.AUTH_FAILED

    def test_replayed_sequence_fails_auth(self):
        channel = self._channel()
        envelope = channel.seal(CHANNEL_C2S, 0, b"payload")
        with pytest.raises(SessionError) as err:
            channel.open(envelope, CHANNEL_C2S, 1)
        assert err.value.status is WireStatus.AUTH_FAILED

    def test_reflected_direction_fails_auth(self):
        channel = self._channel()
        envelope = channel.seal(CHANNEL_C2S, 0, b"payload")
        with pytest.raises(SessionError) as err:
            channel.open(envelope, b"s2c", 0)
        assert err.value.status is WireStatus.AUTH_FAILED

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SecureChannel(session_id=1, session_key=b"short")


# -- attestation handshake -----------------------------------------------------


def make_endpoints(binary=GENUINE_BINARY):
    device = AttestationDevice(SECRET)
    responder = ServerSessionManager(device, SECRET, binary)
    verifier = AttestationVerifier(SECRET, device.device_id)
    client = AttestClient(verifier, SECRET, GENUINE_BINARY)
    return client, responder


class TestHandshake:
    def test_genuine_handshake_establishes_and_serves(self):
        client, responder = make_endpoints()
        session = client.handshake(responder, client_id=1, entropy=b"e1")
        assert responder.established == 1
        request = Request(op="read", lpas=(4,))
        opened = responder.open_request(session.seal_request(request))
        assert opened == request

    def test_trojaned_responder_is_refused(self):
        client, responder = make_endpoints(binary=TROJANED_BINARY)
        with pytest.raises(AttestationError):
            client.handshake(responder, client_id=1, entropy=b"e1")
        assert try_handshake(client, responder, 2, b"e2") is None

    def test_skipped_verification_still_yields_mismatched_keys(self):
        # a sloppy client that never calls verify() derives its key from
        # the measurement it EXPECTED — against a trojaned server the key
        # simply doesn't match, and the first envelope fails auth
        client, responder = make_endpoints(binary=TROJANED_BINARY)
        challenge = client.challenge(client_id=1, entropy=b"e1")
        grant = responder.attest(challenge)
        expected_key = derive_kek(
            SECRET, client._expected_measurement, challenge.nonce
        )
        channel = SecureChannel(grant.session_id, expected_key)
        envelope = channel.seal(
            CHANNEL_C2S, 0, Request(op="read", lpas=(1,)).encode()
        )
        with pytest.raises(SessionError) as err:
            responder.open_request(envelope)
        assert err.value.status is WireStatus.AUTH_FAILED

    def test_recorded_envelope_does_not_replay(self):
        client, responder = make_endpoints()
        session = client.handshake(responder, client_id=1, entropy=b"e1")
        envelope = session.seal_request(Request(op="write", lpas=(7,)))
        assert responder.open_request(envelope).op == "write"
        # replaying the recorded envelope must fail, and must not
        # desynchronize the session for the next legitimate request
        with pytest.raises(SessionError) as err:
            responder.open_request(envelope)
        assert err.value.status is WireStatus.AUTH_FAILED
        nxt = session.seal_request(Request(op="read", lpas=(8,)))
        assert responder.open_request(nxt).op == "read"

    def test_unknown_session_is_typed(self):
        client, responder = make_endpoints()
        session = client.handshake(responder, client_id=1, entropy=b"e1")
        envelope = session.seal_request(Request(op="read", lpas=(1,)))
        bogus = SealedEnvelope(
            session_id=envelope.session_id + 99, channel=envelope.channel,
            seq=envelope.seq, ciphertext=envelope.ciphertext, tag=envelope.tag,
        )
        with pytest.raises(SessionError) as err:
            responder.open_request(bogus)
        assert err.value.status is WireStatus.UNKNOWN_SESSION

    def test_undecodable_plaintext_is_bad_request(self):
        client, responder = make_endpoints()
        session = client.handshake(responder, client_id=1, entropy=b"e1")
        server_side = responder.session(session.session_id)
        garbage = server_side.channel.seal(CHANNEL_C2S, 0, b"not a request")
        with pytest.raises(SessionError) as err:
            responder.open_request(garbage)
        assert err.value.status is WireStatus.BAD_REQUEST

    def test_reused_entropy_refused(self):
        client, responder = make_endpoints()
        client.handshake(responder, client_id=1, entropy=b"same")
        with pytest.raises(AttestationError):
            client.handshake(responder, client_id=2, entropy=b"same")


# -- the offload service -------------------------------------------------------


def make_library(ladder=None):
    geo = small_geometry()
    ftl = Ftl(geo, chip=FlashChip(geo))
    for lpa in range(32):
        ftl.write(lpa)
    runtime = IceClaveRuntime(
        ftl,
        config=IceClaveConfig(
            dram_bytes=512 * MIB, protected_region_bytes=8 * MIB,
            secure_region_bytes=8 * MIB, tee_preallocation_bytes=4 * MIB,
        ),
    )
    return IceClaveLibrary(runtime, degradation=ladder)


def make_service(**kwargs):
    client, responder = make_endpoints()
    ladder = kwargs.pop("ladder", None)
    service = OffloadService(
        sessions=responder,
        library=make_library(ladder=ladder),
        ladder=ladder,
        **kwargs,
    )
    session = client.handshake(responder, client_id=1, entropy=b"svc")
    return service, session


def roundtrip(service, session, request):
    """Submit one sealed request through the asyncio surface."""

    async def go():
        await service.start()
        served = await service.submit(session.seal_request(request))
        await service.stop()
        return served

    served = asyncio.run(go())
    if isinstance(served.response, SealedEnvelope):
        return session.open_reply(served.response)
    return served.response


class TestOffloadService:
    def test_read_write_ok(self):
        service, session = make_service()
        assert roundtrip(service, session, Request(op="read", lpas=(3,))).ok
        assert roundtrip(service, session, Request(op="write", lpas=(3,))).ok

    def test_submit_before_start_raises(self):
        service, session = make_service()
        envelope = session.seal_request(Request(op="read", lpas=(1,)))
        with pytest.raises(RuntimeError):
            asyncio.run(service.submit(envelope))

    def test_unauthenticated_envelope_refused_in_plaintext(self):
        service, session = make_service()
        envelope = session.seal_request(Request(op="read", lpas=(1,)))
        bogus = SealedEnvelope(
            session_id=envelope.session_id + 5, channel=envelope.channel,
            seq=envelope.seq, ciphertext=envelope.ciphertext, tag=envelope.tag,
        )

        async def go():
            await service.start()
            served = await service.submit(bogus)
            await service.stop()
            return served

        served = asyncio.run(go())
        # no session key to seal under: the refusal is a plaintext Reply
        assert isinstance(served.response, Reply)
        assert served.response.status is WireStatus.UNKNOWN_SESSION

    def test_admission_shed_is_throttled_with_hint(self):
        service, session = make_service(
            admission=AdmissionController(
                AdmissionConfig(rate_per_s=1.0, burst=1.0, max_queued=1)
            ),
        )
        assert roundtrip(service, session, Request(op="read", lpas=(1,))).ok
        reply = roundtrip(service, session, Request(op="read", lpas=(2,)))
        assert reply.status is WireStatus.THROTTLED
        assert reply.retry_after_s > 0.0
        assert service.counters["shed_admission"] == 1

    def test_degraded_readonly_serving(self):
        # satellite: DEGRADED_READONLY keeps serving reads while writes
        # and offloads come back as typed, retryable rejections
        def run_once():
            ladder = DegradationLadder(
                DegradeConfig(integrity_violations_readonly=1)
            )
            service, session = make_service(ladder=ladder)
            ladder.note_integrity_violation(0.0)
            outcomes = []
            for request in (
                Request(op="write", lpas=(3,)),
                Request(op="read", lpas=(3,)),
                Request(op="offload", lpas=(0,), payload=b"\x90"),
            ):
                reply = roundtrip(service, session, request)
                outcomes.append(
                    (reply.status, repr(reply.retry_after_s), reply.mode)
                )
            return outcomes

        outcomes = run_once()
        write, read, offload = outcomes
        assert write[0] is WireStatus.DEGRADED_READONLY
        assert float(write[1]) > 0.0
        assert write[2] == "degraded_readonly"
        assert read[0] is WireStatus.OK
        assert offload[0] is WireStatus.DEGRADED_READONLY
        # byte-identical across two fresh stacks: degraded-mode serving is
        # deterministic, not a timing accident
        assert outcomes == run_once()

    def test_failsafe_refuses_reads(self):
        ladder = DegradationLadder(
            DegradeConfig(
                integrity_violations_readonly=1, integrity_violations_failsafe=2
            )
        )
        service, session = make_service(ladder=ladder)
        ladder.note_integrity_violation(0.0)
        ladder.note_integrity_violation(1e-6)
        reply = roundtrip(service, session, Request(op="read", lpas=(1,)))
        assert reply.status is WireStatus.FAILSAFE
        assert reply.retry_after_s > 0.0

    def test_data_path_fault_maps_to_wire_status(self):
        def failing_path(op, lpa, channel, now):
            raise DataPathFault(NvmeStatus.UNRECOVERED_READ_ERROR, 1e-3)

        service, session = make_service(data_path=failing_path)
        reply = roundtrip(service, session, Request(op="read", lpas=(1,)))
        assert reply.status is WireStatus.READ_ERROR
        assert reply.retry_after_s == 0.0  # media errors carry no hint
        assert service.counters["data_path.UNRECOVERED_READ_ERROR"] == 1

    def test_open_breaker_reroutes_to_replica(self):
        calls = []

        def primary_dies(op, lpa, channel, now):
            calls.append(channel)
            if channel == 0:
                raise DataPathFault(NvmeStatus.COMMAND_ABORTED, 1e-4)
            return 80e-6

        service, session = make_service(
            channels=4,
            breakers=BreakerBoard(BreakerConfig(failure_threshold=2)),
            data_path=primary_dies,
        )
        # lpa 0 -> primary ch0, replica ch2; two timeouts trip ch0's breaker
        statuses = [
            roundtrip(service, session, Request(op="read", lpas=(0,))).status
            for _ in range(4)
        ]
        assert statuses[:2] == [WireStatus.TIMEOUT, WireStatus.TIMEOUT]
        assert statuses[2:] == [WireStatus.OK, WireStatus.OK]
        assert calls == [0, 0, 2, 2]

    def test_fifo_total_order(self):
        service, session = make_service()

        async def go():
            await service.start()
            futures = [
                asyncio.ensure_future(
                    service.submit(
                        session.seal_request(Request(op="read", lpas=(i,)))
                    )
                )
                for i in range(5)
            ]
            served = await asyncio.gather(*futures)
            await service.stop()
            return served

        served = asyncio.run(go())
        # replies come back sealed in submission order: s2c seq 0..4
        assert [s.response.seq for s in served] == list(range(5))


# -- the load generator --------------------------------------------------------


class TestLoadgen:
    def test_same_seed_same_schedule(self):
        tenants = make_tenants(50, seed=11)
        a = generate_arrivals(tenants, ArrivalConfig(), 300, seed=11)
        b = generate_arrivals(tenants, ArrivalConfig(), 300, seed=11)
        assert a == b
        c = generate_arrivals(tenants, ArrivalConfig(), 300, seed=12)
        assert a != c

    def test_arrivals_are_open_loop_monotonic(self):
        tenants = make_tenants(20, seed=5)
        arrivals = generate_arrivals(tenants, ArrivalConfig(), 200, seed=5)
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert all(a.op in ("read", "write") for a in arrivals)

    def test_tampered_count_is_exact(self):
        tenants = make_tenants(200, seed=9, tampered_fraction=0.03)
        assert sum(1 for t in tenants if t.tampered) == 6
        # non-zero fraction always plants at least one
        tiny = make_tenants(10, seed=9, tampered_fraction=0.001)
        assert sum(1 for t in tiny if t.tampered) == 1
        clean = make_tenants(10, seed=9, tampered_fraction=0.0)
        assert not any(t.tampered for t in clean)

    def test_bursty_process_is_deterministic_and_faster_in_bursts(self):
        tenants = make_tenants(20, seed=5)
        config = ArrivalConfig(process="bursty", burst_factor=4.0)
        a = generate_arrivals(tenants, config, 400, seed=5)
        assert a == generate_arrivals(tenants, config, 400, seed=5)
        # the bursty schedule packs the same requests into less time than
        # a flat Poisson at the base rate would on average
        flat = generate_arrivals(tenants, ArrivalConfig(), 400, seed=5)
        assert a[-1].at_s != flat[-1].at_s

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalConfig(process="lognormal")
        with pytest.raises(ValueError):
            ArrivalConfig(rate_per_s=0.0)
        with pytest.raises(ValueError):
            make_tenants(0, seed=1)
        with pytest.raises(ValueError):
            make_tenants(5, seed=1, tampered_fraction=1.0)
        tenants = make_tenants(5, seed=1)
        with pytest.raises(ValueError):
            generate_arrivals(tenants, ArrivalConfig(), 0, seed=1)


# -- the serve lab -------------------------------------------------------------


class TestServeLab:
    def test_small_campaign_deterministic_and_policies_win(self):
        first = run_serve_lab(seed=3, tenants=40, requests=160)
        second = run_serve_lab(seed=3, tenants=40, requests=160)
        assert first.fingerprint() == second.fingerprint()
        assert first.attestation_gate_held()
        assert first.policy_win
        assert first.attested.availability > first.baseline.availability

    def test_no_chaos_is_clean(self):
        report = run_serve_lab(seed=3, tenants=30, requests=120, chaos=False)
        assert report.plan_summary == {}
        assert report.attested.availability == 1.0
        assert report.attestation_gate_held()

    def test_plan_scales_with_campaign_length(self):
        full = serve_plan_config(4000)
        quarter = serve_plan_config(1000)
        assert full.read_bursts == 8
        assert quarter.read_bursts == 2
        # every kind keeps a floor of one event
        assert serve_plan_config(100).power_losses == 1

    def test_json_schema_and_csv_shape(self):
        report = run_serve_lab(seed=3, tenants=30, requests=120)
        blob = report.to_json()
        assert blob["schema"] == "serve-lab-report/v1"
        for key in (
            "seed", "tenants", "requests", "channels", "process", "chaos",
            "tampered", "attestation_gate_held", "policy_win", "plan", "arms",
        ):
            assert key in blob
        assert [arm["policies"] for arm in blob["arms"]] == ["off", "on"]
        rows = report.csv_rows()
        assert rows[0][0] == "seed"
        assert len(rows) == 3
        assert all(len(row) == len(rows[0]) for row in rows)

    def test_cli_smoke(self, tmp_path):
        from repro.cli import main

        csv_path = tmp_path / "serve.csv"
        json_path = tmp_path / "serve.json"
        code = main([
            "serve-lab", "--seed", "3", "--tenants", "40", "--requests",
            "160", "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        assert csv_path.read_text().startswith("seed,")
        assert '"schema": "serve-lab-report/v1"' in json_path.read_text()

    def test_cli_rejects_tiny_campaigns(self):
        from repro.cli import main

        assert main(["serve-lab", "--requests", "5"]) == 2
