"""End-to-end integration tests: the full Figure 9 workflow.

Host encrypts its data and stores it on the SSD; a program is offloaded
via OffloadCode; the TEE translates addresses through the protected-region
mapping cache, pulls pages through the stream-cipher engine, decrypts the
user data with the key shipped alongside the program, computes, and
returns the result via GetResult — with every protection layer functional.
"""

import pytest

from repro.core import (
    IceClaveConfig,
    IceClaveRuntime,
    StreamCipherEngine,
    TeeAbort,
    TeeState,
)
from repro.core.config import MIB
from repro.crypto.aes import AES128
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.host import IceClaveLibrary

USER_KEY = b"users-secret-key"
PAGE = 4096


def xor_pad(key: bytes, index: int, data: bytes) -> bytes:
    """User-side encryption: AES-CTR style pad per logical page."""
    pad = AES128(key).otp(seed=index, nbytes=len(data))
    return bytes(a ^ b for a, b in zip(data, pad))


class Fixture:
    def __init__(self):
        geo = small_geometry(channels=2, chips_per_channel=2, dies_per_chip=1,
                             planes_per_die=2, blocks_per_plane=16, pages_per_block=16)
        self.ftl = Ftl(geo, chip=FlashChip(geo, store_data=True))
        config = IceClaveConfig(
            dram_bytes=512 * MIB,
            protected_region_bytes=8 * MIB,
            secure_region_bytes=8 * MIB,
            tee_preallocation_bytes=4 * MIB,
        )
        self.runtime = IceClaveRuntime(self.ftl, config=config)
        self.library = IceClaveLibrary(self.runtime)
        self.cipher = StreamCipherEngine(key=b"device-key")

    def host_store(self, lpa: int, plaintext: bytes) -> None:
        """Host encrypts with its own key before storing (threat model §3)."""
        self.ftl.write(lpa, xor_pad(USER_KEY, lpa, plaintext))


@pytest.fixture()
def ssd():
    return Fixture()


class TestFigure9Workflow:
    def test_full_offload_pipeline(self, ssd):
        # ① host stores user-encrypted records
        records = {lpa: f"record-{lpa:04d},value={lpa * 3}".encode() for lpa in range(16)}
        for lpa, record in records.items():
            ssd.host_store(lpa, record)

        # ② OffloadCode ships the program, the LPA list, and the user key
        handle = ssd.library.offload_code(
            b"\x90" * 256, lpas=list(records), decryption_key=USER_KEY
        )
        tee = handle.tee
        assert tee.state is TeeState.READY

        # ③④⑤⑥ the in-storage program translates, loads through the stream
        # cipher, and decrypts with the user key
        def program(tee):
            total = 0
            for lpa in tee.lpas:
                ppa = ssd.runtime.read_mapping_entry(tee, lpa)
                stored = ssd.ftl.chip.read(ppa)
                # flash -> DRAM transfer is ciphered on the internal bus
                iv, bus_bytes = ssd.cipher.encrypt_page(ppa, stored)
                assert bus_bytes != stored  # snooper sees ciphertext
                arrived = ssd.cipher.decrypt_page(iv, bus_bytes)
                plaintext = xor_pad(tee.decryption_key, lpa, arrived)
                assert plaintext == records[lpa]
                total += int(plaintext.split(b"value=")[1])
            return str(total).encode()

        ssd.library.execute(handle, program)

        # ⑦⑧ GetResult returns the result and tears the TEE down
        result = ssd.library.get_result(handle.tid)
        assert int(result) == sum(lpa * 3 for lpa in records)
        assert tee.state is TeeState.TERMINATED
        assert not ssd.runtime.tees

    def test_translation_uses_protected_region_cache(self, ssd):
        for lpa in range(600):
            ssd.ftl.write(lpa, b"x")
        handle = ssd.library.offload_code(b"\x90", lpas=list(range(600)))
        for lpa in range(600):
            ssd.runtime.read_mapping_entry(handle.tee, lpa)
        # 600 LPAs span two translation pages: exactly two slow paths
        assert handle.tee.translation_misses == 2
        assert handle.tee.context_switches == 2
        assert ssd.runtime.translation_miss_rate() < 0.01

    def test_concurrent_tees_are_isolated_end_to_end(self, ssd):
        for lpa in range(8):
            ssd.host_store(lpa, b"tenant-A" + bytes(8))
        for lpa in range(8, 16):
            ssd.host_store(lpa, b"tenant-B" + bytes(8))
        a = ssd.library.offload_code(b"\xaa" * 64, lpas=list(range(8)))
        b = ssd.library.offload_code(b"\xbb" * 64, lpas=list(range(8, 16)))
        assert a.tee.eid != b.tee.eid
        assert a.tee.measurement != b.tee.measurement

        # each tenant can reach its own data
        assert ssd.runtime.read_mapping_entry(a.tee, 0) is not None
        assert ssd.runtime.read_mapping_entry(b.tee, 8) is not None
        # ... but not the other's
        with pytest.raises(TeeAbort):
            ssd.runtime.read_mapping_entry(b.tee, 0)
        # tenant A is unaffected by B's abort
        ssd.library.execute(a, lambda tee: b"done")
        assert ssd.library.get_result(a.tid) == b"done"

    def test_gc_does_not_break_running_tee(self, ssd):
        """Relocations move the TEE's pages; translation still works because
        only the secure-world FTL updates the mapping table."""
        for lpa in range(4):
            ssd.host_store(lpa, f"live-{lpa}".encode())
        handle = ssd.library.offload_code(b"\x90", lpas=[0, 1, 2, 3])
        before = [ssd.runtime.read_mapping_entry(handle.tee, lpa) for lpa in range(4)]
        # churn unrelated logical pages until GC relocates the live data
        geo = ssd.ftl.geometry
        for i in range(geo.total_pages * 2):
            ssd.ftl.write(4 + (i % 6), b"churn")
        assert ssd.ftl.gc.total_erases > 0
        after = [ssd.runtime.read_mapping_entry(handle.tee, lpa) for lpa in range(4)]
        # data still readable and correct through the new PPAs
        for lpa, ppa in enumerate(after):
            plaintext = xor_pad(USER_KEY, lpa, ssd.ftl.chip.read(ppa))
            assert plaintext == f"live-{lpa}".encode()
        # ownership stamps survived relocation
        for lpa in range(4):
            assert ssd.ftl.mapping.entry_unchecked(lpa).owner == handle.tee.eid
        del before

    def test_fifteen_tenants_round_trip(self, ssd):
        handles = []
        for i in range(15):
            lpa = 100 + i
            ssd.host_store(lpa, f"tenant-{i}".encode())
            handles.append(ssd.library.offload_code(b"\x90" * 32, lpas=[lpa]))
        for i, handle in enumerate(handles):
            ssd.library.execute(handle, lambda tee, i=i: f"result-{i}".encode())
        for i, handle in enumerate(handles):
            assert ssd.library.get_result(handle.tid) == f"result-{i}".encode()
        # every ID was recycled
        assert len(ssd.runtime._free_ids) == 15


class TestChargedTimeAccounting:
    def test_runtime_charges_accumulate(self, ssd):
        for lpa in range(4):
            ssd.ftl.write(lpa, b"x")
        cfg = ssd.runtime.config
        handle = ssd.library.offload_code(b"\x90", lpas=[0, 1, 2, 3])
        ssd.library.execute(handle, lambda tee: b"x")
        ssd.library.get_result(handle.tid)
        expected_min = cfg.tee_create_time + cfg.tee_delete_time
        assert ssd.runtime.charged_time >= expected_min
