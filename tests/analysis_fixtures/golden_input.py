"""Fixture for the golden JSON report: two findings, fixed positions."""

import random


def wait_until(engine, deadline: float) -> bool:
    return engine.now == deadline or random.random() > 0.5
