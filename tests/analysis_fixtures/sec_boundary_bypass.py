# analysis-module: repro.core.fixture_boundary
"""Fixture: sec-boundary-bypass must fire exactly once."""


def peek(runtime, ppa: int) -> bytes:
    return runtime.ftl.chip.read(ppa)
