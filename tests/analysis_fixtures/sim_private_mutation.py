"""Fixture: sim-private-mutation must fire exactly once."""


def force_idle(resource) -> None:
    resource._busy = 0
