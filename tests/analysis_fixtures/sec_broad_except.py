"""Fixture: sec-broad-except must fire exactly once."""


def swallow(action) -> bool:
    try:
        action()
        return True
    except Exception:
        return False
