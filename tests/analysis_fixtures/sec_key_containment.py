# analysis-module: repro.host.fixture_keys
"""Fixture: sec-key-containment must fire exactly once."""


def provision(material: bytes) -> bytes:
    aes_key = material[:16]
    return aes_key
