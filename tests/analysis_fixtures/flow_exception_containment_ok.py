# analysis-module: repro.core.fixture_dispatch_ok
"""Near-miss: the broad handler provably reaches the §4.5 abort helper.

`escalate` does not raise or call the abort helper *syntactically* — only
the call-graph fixpoint (escalate -> throw_out_tee -> raise TeeAbort)
proves containment.
"""


class TeeAbort(Exception):
    pass


def throw_out_tee(err: Exception) -> None:
    raise TeeAbort(str(err))


def escalate(err: Exception) -> None:
    throw_out_tee(err)


def dispatch(job) -> bool:
    try:
        job.run()
        return True
    # repro: allow[sec-broad-except] -- fixture: §4.5 program-fault catch, routed to throw_out_tee
    except Exception as err:
        escalate(err)
        return False
