"""Fixture: det-id-order must fire exactly once."""


def order(events):
    return sorted(events, key=id)
