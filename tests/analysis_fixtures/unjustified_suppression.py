"""Fixture: a waiver without a reason is itself a finding."""

import random  # repro: allow[det-import-random]

__all__ = ["random"]
