"""Fixture: perf-hot-loop-alloc must fire exactly once."""
# analysis-module: repro.core.hotpath_fixture


def keystream(blocks: int) -> bytes:
    buffer = b""
    for i in range(blocks):
        buffer += i.to_bytes(8, "little")
    return buffer
