# analysis-module: repro.serve.fixture_race_ok
"""Near-miss: capture-then-null before the await — no interleaving window.

All shared-state writes happen before the first await; the awaited work
runs on captured locals, so a task interleaving at the await observes the
final state, never a half-stopped one.
"""


class Pump:
    def __init__(self) -> None:
        self.task = None

    async def stop(self) -> None:
        task = self.task
        if task is None:
            return
        self.task = None
        await task
