# analysis-module: repro.ftl.fixture_layering
"""Fixture: sec-layering must fire exactly once (ftl importing host)."""

from repro.host.nvme import status_for_exception

__all__ = ["status_for_exception"]
