# analysis-module: repro.serve.fixture_race
"""Fixture: race-await-atomicity must fire exactly once.

`self.flushing` is checked before the await and cleared after it: another
task interleaving at the await sees `flushing == True` state that this
coroutine is about to invalidate (double-flush / lost-update window).
"""


class Flusher:
    def __init__(self) -> None:
        self.total = 0
        self.flushing = False

    async def flush(self, sink) -> None:
        if self.flushing:
            return
        self.flushing = True
        await sink.send(self.total)
        self.flushing = False
