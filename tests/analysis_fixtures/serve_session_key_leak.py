# analysis-module: repro.serve.fixture_frontend
"""Fixture: serve-session-key-leak must fire exactly once.

`channel_key` is serve-layer key vocabulary only (not in the repo-wide
KEY_NAMES set), so printing it outside repro.serve.session trips the
serve rule and nothing else.
"""


def trace_handshake(tenant_id: int, channel_key: bytes) -> None:
    print(tenant_id, channel_key.hex())
