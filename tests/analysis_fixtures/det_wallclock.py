"""Fixture: det-wallclock must fire exactly once."""

import time


def stamp() -> float:
    return time.time()
