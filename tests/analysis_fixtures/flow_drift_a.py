# analysis-module: repro.flash.fixture_drift
"""Drift pair, flash side: granted `flash -> crypto` but never imports it.

Scanned together with flow_drift_b.py (which makes `crypto` present), the
unused grant is architecture drift and must be reported exactly once.
"""


def page_bytes() -> int:
    return 4096
