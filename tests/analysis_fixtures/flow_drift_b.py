# analysis-module: repro.crypto.fixture_drift_peer
"""Drift pair, crypto side: present so the flash -> crypto grant is judged."""


def rounds() -> int:
    return 8
