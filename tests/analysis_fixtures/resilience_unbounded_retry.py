"""Fixture: trips resilience-unbounded-retry exactly once.

The loop retries forever on timeout — no max_attempts, no deadline — which
livelocks on a persistently hung channel.
"""


def fetch_with_retry(channel):
    while True:
        try:
            return channel.read()
        except TimeoutError:
            continue
