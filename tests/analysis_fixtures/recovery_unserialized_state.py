"""Fixture: trips recovery-unserialized-state exactly once.

``_event_log`` is a fresh mutable list created in ``__init__`` but never
mentioned in snapshot_state/restore_state — it silently resets on restore.
``cursor`` is serialized (string key) and ``chip`` is an injected
collaborator (Name initializer), so neither fires.
"""


class CheckpointedQueue:
    def __init__(self, chip):
        self.chip = chip
        self.cursor = 0
        self._event_log = []

    def snapshot_state(self):
        return {"cursor": self.cursor}

    def restore_state(self, state):
        self.cursor = state["cursor"]
