# analysis-module: repro.core.fixture_flow_tcb
"""Cross-module pair, TCB side: returns key material derived from a param.

The summary fixpoint records `returns_secret` + param-0 taint-through, so
callers in *other* modules inherit the taint (see flow_cross_leak.py).
"""


def stretch(key_material: bytes) -> bytes:
    return key_material + b"\x00" * 4
