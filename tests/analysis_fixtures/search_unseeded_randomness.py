# analysis-module: repro.search.badmut
"""Fixture: trips search-unseeded-randomness exactly once.

``mutate_seed`` does reference an ``rng`` (so the stochastic-path check
stays quiet), but it builds that PRNG fresh with ``XorShift64()`` — the
process-global default stream — instead of accepting the campaign's
threaded generator. The same genome then mutates differently depending
on what ran before, which breaks corpus replay.
"""

from repro.crypto.prng import XorShift64


def mutate_seed(scenario):
    rng = XorShift64()
    return scenario.with_seed(rng.next_below(1 << 16))
