# analysis-module: repro.core.fixture_flow_caller
"""Cross-module pair, caller side: the taint crosses the call boundary.

`token` has no key-shaped name and the secret was produced in ANOTHER
module — only the interprocedural summary makes this sink reachable.
"""

from repro.core.fixture_flow_tcb import stretch


def report(handle: bytes) -> None:
    token = stretch(handle)
    print(token.hex())
