# analysis-module: repro.flash.fixture_drift_used
"""Near-miss: the granted `flash -> crypto` edge is actually exercised.

Scanned with flow_drift_b.py, the observed import keeps the grant alive —
no drift finding.
"""

from repro.crypto.prng import XorShift64


def seeded_rng() -> "XorShift64":
    return XorShift64(7)
