"""Fixture: a justified suppression leaves the file clean."""

import random  # repro: allow[det-import-random] -- fixture proving justified waivers work

__all__ = ["random"]
