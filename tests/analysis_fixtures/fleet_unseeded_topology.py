# analysis-module: repro.fleet.badtopo
"""Fixture: trips fleet-unseeded-topology exactly once.

``route_read`` takes a seeded ``rng`` (so the topology-path check stays
quiet), but places the key with builtin ``hash()`` — whose value folds in
PYTHONHASHSEED and reshuffles every replica set between processes.
"""


def route_read(key, rng, devices):
    slot = hash(key) % len(devices)
    return devices[slot]
