# analysis-module: repro.core.fixture_flow_leak
"""Fixture: flow-secret-escape must fire exactly once.

The rename defeats `sec-telemetry-leak`'s name heuristic — only the taint
fixpoint can still see that `material` IS the session key.
"""


def debug_trace(session_key: bytes) -> None:
    material = session_key
    print(material.hex())
