"""Fixture: sec-telemetry-leak must fire exactly once."""


def debug_dump(aes_key: bytes) -> None:
    print(aes_key.hex())
