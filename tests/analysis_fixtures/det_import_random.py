"""Fixture: det-import-random must fire exactly once."""

import random


def roll() -> int:
    return random.getrandbits(8)
