# analysis-module: repro.core.fixture_dispatch
"""Fixture: flow-exception-containment must fire (and sec-broad-except too).

The broad handler converts a detected in-enclave fault into `False` —
IntegrityError/TeeAbort never reach the §4.5 abort path.
"""


def dispatch(job) -> bool:
    try:
        job.run()
        return True
    except Exception:
        return False
