"""Fixture: sim-float-eq must fire exactly once."""


def is_fresh(engine) -> bool:
    return engine.now == 0.0
