# analysis-module: repro.core.fixture_flow_clean
"""Near-miss: ciphertext is XOR-declassified, logging it is fine.

`pad` is fully tainted, but the keystream never leaves: what reaches the
sink is `plaintext ^ pad`, the sealed form the TCB exists to produce.
"""


def trace_ciphertext(session_key: bytes, plaintext: bytes) -> None:
    stretched = session_key * 4
    body = bytes(a ^ b for a, b in zip(plaintext, stretched))
    print(body.hex())
