"""Fixture: det-unordered-iter must fire exactly once."""


def drain(engine):
    for name in {"flash", "dram", "cpu"}:
        engine.schedule(0.0, lambda: None, name=name)
