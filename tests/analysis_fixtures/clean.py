"""Fixture: idiomatic simulator code that trips no rule."""

from dataclasses import dataclass


@dataclass
class Sample:
    value: float = 0.0


def total(samples) -> float:
    return sum(s.value for s in sorted(samples, key=lambda s: s.value))
