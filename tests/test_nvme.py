"""Tests for the NVMe host-interface model."""

import math

import pytest

from repro.host.nvme import NvmeQueuePair, NvmeStatus, NvmeTiming
from repro.host.pcie import PcieLink
from repro.sim import Engine


def make_qp(queue_depth=64, device_latency=80e-6):
    engine = Engine()
    return engine, NvmeQueuePair(
        engine, PcieLink(), queue_depth=queue_depth, device_latency=device_latency
    )


class TestSingleCommand:
    def test_latency_composition(self):
        engine, qp = make_qp()
        cmd = qp.submit("read", 4096)
        qp.run()
        t = qp.timing
        floor = (t.doorbell_write + t.command_fetch + qp.device_latency
                 + t.interrupt_latency + t.completion_handling)
        assert cmd.latency is not None
        assert cmd.latency >= floor
        # a 4 KB read should finish well under a millisecond
        assert cmd.latency < 1e-3

    def test_bigger_transfer_longer_latency(self):
        engine, qp = make_qp()
        small = qp.submit("read", 4096)
        qp.run()
        engine2, qp2 = make_qp()
        large = qp2.submit("read", 1 << 20)
        qp2.run()
        assert large.latency > small.latency

    def test_invalid_opcode(self):
        _, qp = make_qp()
        with pytest.raises(ValueError):
            qp.submit("trim", 4096)

    def test_negative_size(self):
        _, qp = make_qp()
        with pytest.raises(ValueError):
            qp.submit("read", -1)

    def test_completion_callback(self):
        _, qp = make_qp()
        done = []
        qp.submit("write", 4096, on_done=done.append)
        qp.run()
        assert len(done) == 1
        assert done[0].opcode == "write"


class TestQueueing:
    def test_queue_depth_parallelism(self):
        """Deep queues overlap device latency; QD1 serializes it."""
        _, qd1 = make_qp(queue_depth=1)
        for _ in range(16):
            qd1.submit("read", 4096)
        t_qd1 = qd1.run()
        _, qd16 = make_qp(queue_depth=16)
        for _ in range(16):
            qd16.submit("read", 4096)
        t_qd16 = qd16.run()
        assert t_qd16 < t_qd1 / 4

    def test_all_commands_complete(self):
        _, qp = make_qp(queue_depth=4)
        for _ in range(50):
            qp.submit("read", 4096)
        qp.run()
        assert len(qp.completed) == 50
        assert all(c.latency is not None for c in qp.completed)

    def test_excess_commands_wait(self):
        """Commands beyond the queue depth see queueing delay."""
        _, qp = make_qp(queue_depth=1)
        first = qp.submit("read", 4096)
        second = qp.submit("read", 4096)
        qp.run()
        assert second.latency > first.latency

    def test_sequential_reads_approach_link_bandwidth(self):
        """Large sequential reads at depth should near the PCIe ceiling."""
        _, qp = make_qp(queue_depth=32, device_latency=50e-6)
        for _ in range(64):
            qp.submit("read", 1 << 20)  # 1 MB commands
        qp.run()
        throughput = qp.throughput_bytes_per_s()
        assert throughput > 0.7 * qp.link.effective_bandwidth
        assert throughput <= qp.link.effective_bandwidth * 1.01

    def test_small_random_reads_are_latency_bound(self):
        """4 KB commands cannot saturate the link — IOPS-bound instead."""
        _, qp = make_qp(queue_depth=4, device_latency=80e-6)
        for _ in range(64):
            qp.submit("read", 4096)
        qp.run()
        assert qp.throughput_bytes_per_s() < 0.5 * qp.link.effective_bandwidth

    def test_latency_percentiles_available(self):
        _, qp = make_qp(queue_depth=2)
        for _ in range(20):
            qp.submit("read", 4096)
        qp.run()
        assert qp.latency.percentile(99) >= qp.latency.percentile(50)


class TestTimeouts:
    def test_timeout_aborts_hung_command(self):
        """A hung die (infinite media time) completes via the abort timer."""
        engine, qp = make_qp()
        cmd = qp.submit("read", 4096, device_latency=math.inf, timeout=1e-3)
        engine.run(until=5e-3)
        assert cmd.status is NvmeStatus.COMMAND_ABORTED
        assert cmd.timed_out and cmd.failed
        assert cmd.latency == pytest.approx(1e-3)
        assert qp.timeouts == 1

    def test_timeout_releases_the_queue_slot(self):
        """The abort must free the slot or a hung die wedges the queue."""
        engine, qp = make_qp(queue_depth=1)
        hung = qp.submit("read", 4096, device_latency=math.inf, timeout=1e-3)
        queued = qp.submit("read", 4096)
        engine.run(until=5e-3)
        assert hung.timed_out
        assert queued.status is NvmeStatus.SUCCESS
        assert queued.completed_at > 1e-3  # issued only after the abort

    def test_timeout_of_a_still_queued_command(self):
        """A command that never got a slot aborts without freeing one."""
        engine, qp = make_qp(queue_depth=1)
        qp.submit("read", 4096, device_latency=math.inf)  # holds the slot
        waiting = qp.submit("read", 4096, timeout=1e-3)
        engine.run(until=5e-3)
        assert waiting.status is NvmeStatus.COMMAND_ABORTED
        assert qp.timeouts == 1

    def test_fast_completion_disarms_the_timer(self):
        engine, qp = make_qp()
        cmd = qp.submit("read", 4096, timeout=50e-3)
        engine.run(until=100e-3)
        assert cmd.status is NvmeStatus.SUCCESS
        assert qp.timeouts == 0
        assert cmd.timeout_event is None  # cancelled at completion

    def test_per_command_device_latency_override(self):
        engine, qp = make_qp(device_latency=80e-6)
        slow = qp.submit("read", 4096, device_latency=800e-6)
        qp.run()
        engine2, qp2 = make_qp(device_latency=80e-6)
        fast = qp2.submit("read", 4096)
        qp2.run()
        assert slow.latency > fast.latency
        assert slow.latency - fast.latency == pytest.approx(720e-6)


class _RefuseAll:
    def __init__(self):
        self.calls = []

    def admit(self, now, queued):
        self.calls.append((now, queued))
        return False


class TestAdmission:
    def test_shed_completes_inline_with_retryable_status(self):
        engine, qp = make_qp()
        qp.admission = _RefuseAll()
        cmd = qp.submit("read", 4096)
        # no engine.run(): the shed is synchronous at the doorbell
        assert cmd.status is NvmeStatus.COMMAND_INTERRUPTED
        assert cmd.status.is_retryable
        assert cmd.completed_at == engine.now
        assert qp.admission_rejections == 1

    def test_shed_consumes_no_queue_slot(self):
        engine, qp = make_qp(queue_depth=1)
        qp.admission = _RefuseAll()
        qp.submit("read", 4096)
        qp.admission = None  # controller relents
        accepted = qp.submit("read", 4096)
        qp.run()
        assert accepted.status is NvmeStatus.SUCCESS
        assert len(qp.completed) == 2

    def test_controller_sees_current_queue_occupancy(self):
        engine, qp = make_qp(queue_depth=1)
        refuser = _RefuseAll()
        qp.submit("read", 4096)  # admitted (no controller yet), holds the slot
        qp.submit("read", 4096)  # waits for the slot
        qp.admission = refuser
        qp.submit("read", 4096)
        assert refuser.calls == [(0.0, 2)]  # 1 in flight + 1 waiting


class TestStatusSemantics:
    def test_retryable_statuses(self):
        assert NvmeStatus.COMMAND_ABORTED.is_retryable
        assert NvmeStatus.COMMAND_INTERRUPTED.is_retryable
        assert not NvmeStatus.UNRECOVERED_READ_ERROR.is_retryable
        assert not NvmeStatus.SUCCESS.is_retryable

    def test_error_statuses(self):
        assert not NvmeStatus.SUCCESS.is_error
        assert NvmeStatus.COMMAND_ABORTED.is_error
