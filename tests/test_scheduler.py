"""Tests for the cooperative TEE scheduler and integrity monitor."""

import pytest

from repro.core import IceClaveConfig, IceClaveRuntime, TeeState
from repro.core.config import MIB
from repro.core.scheduler import TeeScheduler
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl


def make_runtime():
    geo = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                         planes_per_die=2, blocks_per_plane=8, pages_per_block=8)
    ftl = Ftl(geo, chip=FlashChip(geo))
    for lpa in range(32):
        ftl.write(lpa)
    config = IceClaveConfig(
        dram_bytes=256 * MIB, protected_region_bytes=4 * MIB,
        secure_region_bytes=4 * MIB, tee_preallocation_bytes=2 * MIB,
    )
    return IceClaveRuntime(ftl, config=config)


def counting_program(upto):
    def program(tee):
        total = 0
        for i in range(upto):
            total += i
            yield  # an I/O boundary
        return str(total).encode()
    return program


class TestScheduling:
    def test_single_program_completes(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime)
        tee = runtime.create_tee(b"\x90" * 16, lpas=[0])
        scheduler.submit(tee, counting_program(10))
        outcome = scheduler.run()
        assert outcome.completed[tee.eid] == b"45"
        assert tee.state is TeeState.COMPLETED

    def test_round_robin_interleaves(self):
        """Programs make progress together, not one after the other."""
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime, steps_per_turn=2)
        order = []

        def tracked(tag, steps):
            def program(tee):
                for i in range(steps):
                    order.append(tag)
                    yield
                return tag.encode()
            return program

        a = runtime.create_tee(b"\xaa" * 16, lpas=[0])
        b = runtime.create_tee(b"\xbb" * 16, lpas=[1])
        scheduler.submit(a, tracked("a", 6))
        scheduler.submit(b, tracked("b", 6))
        outcome = scheduler.run()
        assert outcome.completed[a.eid] == b"a"
        assert outcome.completed[b.eid] == b"b"
        # both tags appear in the first half of the execution order
        first_half = order[: len(order) // 2]
        assert "a" in first_half and "b" in first_half

    def test_crashing_program_aborts_only_itself(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime)

        def crasher(tee):
            yield
            raise RuntimeError("segfault")
            yield  # pragma: no cover

        good = runtime.create_tee(b"\x01" * 16, lpas=[0])
        bad = runtime.create_tee(b"\x02" * 16, lpas=[1])
        scheduler.submit(good, counting_program(5))
        scheduler.submit(bad, crasher)
        outcome = scheduler.run()
        assert good.eid in outcome.completed
        assert bad.eid in outcome.aborted
        assert "segfault" in outcome.aborted[bad.eid]
        assert bad.state is TeeState.ABORTED

    def test_metadata_corruption_detected(self):
        """ThrowOutTEE case 2: corrupted TEE metadata aborts the TEE."""
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime, steps_per_turn=1)
        victim = runtime.create_tee(b"\x03" * 16, lpas=[0])

        def tamper_then_spin(tee):
            yield
            tee.lpas.append(31)  # attacker widens its own LPA set
            for _ in range(10):
                yield
            return b"never"

        scheduler.submit(victim, tamper_then_spin)
        outcome = scheduler.run()
        assert outcome.aborted[victim.eid] == "TEE metadata corrupted"

    def test_runaway_program_aborted(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime, steps_per_turn=10, max_steps_per_tee=25)

        def infinite(tee):
            while True:
                yield

        tee = runtime.create_tee(b"\x04" * 16, lpas=[0])
        scheduler.submit(tee, infinite)
        outcome = scheduler.run()
        assert outcome.aborted[tee.eid] == "step budget exhausted"

    def test_program_without_explicit_result(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime)

        def silent(tee):
            yield

        tee = runtime.create_tee(b"\x05" * 16, lpas=[0])
        scheduler.submit(tee, silent)
        outcome = scheduler.run()
        assert outcome.completed[tee.eid] == b""

    def test_submit_requires_live_tee(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime)
        tee = runtime.create_tee(b"\x06" * 16, lpas=[0])
        runtime.terminate_tee(tee)
        with pytest.raises(ValueError):
            scheduler.submit(tee, counting_program(1))

    def test_invalid_budgets_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            TeeScheduler(runtime, steps_per_turn=0)

    def test_fifteen_concurrent_programs(self):
        runtime = make_runtime()
        scheduler = TeeScheduler(runtime, steps_per_turn=3)
        tees = []
        for i in range(15):
            tee = runtime.create_tee(bytes([i + 1]) * 16, lpas=[i])
            scheduler.submit(tee, counting_program(i + 1))
            tees.append(tee)
        outcome = scheduler.run()
        assert len(outcome.completed) == 15
        for i, tee in enumerate(tees):
            assert outcome.completed[tee.eid] == str(sum(range(i + 1))).encode()
