"""Tests for the crypto primitives: AES-128, Trivium, MACs, PRNG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AES128, Mac, Trivium, XorShift64, mac_digest
from repro.crypto.trivium import TriviumReference, decrypt, encrypt


class TestAes:
    def test_fips197_vector(self):
        """FIPS-197 Appendix C.1 known-answer test."""
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_nist_ecb_vector(self):
        """NIST SP 800-38A F.1.1 ECB-AES128 vector."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_encrypt(self):
        aes = AES128(b"0123456789abcdef")
        block = b"IceClave rocks!!"
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            AES128(b"0123456789abcdef").encrypt_block(b"tiny")

    def test_otp_deterministic_and_distinct_per_seed(self):
        aes = AES128(b"0123456789abcdef")
        pad1 = aes.otp(seed=1, nbytes=64)
        pad1_again = aes.otp(seed=1, nbytes=64)
        pad2 = aes.otp(seed=2, nbytes=64)
        assert pad1 == pad1_again
        assert pad1 != pad2
        assert len(pad1) == 64


class TestTrivium:
    def test_matches_reference_implementation(self):
        """The packed implementation equals the literal spec transcription."""
        key = bytes(range(10))
        iv = bytes(range(10, 20))
        fast = Trivium(key, iv).keystream(64)
        slow = TriviumReference(key, iv).keystream(64)
        assert fast == slow

    @given(st.binary(min_size=10, max_size=10), st.binary(min_size=10, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_matches_reference_for_random_keys(self, key, iv):
        assert Trivium(key, iv).keystream(16) == TriviumReference(key, iv).keystream(16)

    def test_known_regression_vector(self):
        """Frozen output guards against regressions (self-generated golden)."""
        stream = Trivium(bytes(10), bytes(10)).keystream(8)
        assert len(stream) == 8
        assert stream == Trivium(bytes(10), bytes(10)).keystream(8)
        # keystream must not be trivially zero
        assert stream != bytes(8)

    def test_encrypt_decrypt_roundtrip(self):
        key, iv = b"secretkey!", b"uniqueiv!!"
        data = b"flash page contents" * 20
        assert decrypt(key, iv, encrypt(key, iv, data)) == data

    def test_ciphertext_differs_from_plaintext(self):
        key, iv = b"secretkey!", b"uniqueiv!!"
        data = bytes(64)
        assert encrypt(key, iv, data) != data

    def test_different_iv_different_keystream(self):
        key = b"secretkey!"
        s1 = Trivium(key, b"iv0000000A").keystream(32)
        s2 = Trivium(key, b"iv0000000B").keystream(32)
        assert s1 != s2

    def test_different_key_different_keystream(self):
        iv = b"uniqueiv!!"
        s1 = Trivium(b"key000000A", iv).keystream(32)
        s2 = Trivium(b"key000000B", iv).keystream(32)
        assert s1 != s2

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            Trivium(b"short", bytes(10))

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=20, deadline=None)
    def test_xor_symmetry_property(self, data):
        key, iv = b"0123456789", b"abcdefghij"
        assert decrypt(key, iv, encrypt(key, iv, data)) == data

    def test_keystream_is_balanced(self):
        """Sanity: keystream bit bias should be small over 4 KB."""
        stream = Trivium(b"0123456789", b"abcdefghij").keystream(4096)
        ones = sum(bin(b).count("1") for b in stream)
        total = 4096 * 8
        assert abs(ones / total - 0.5) < 0.02


class TestMac:
    def test_deterministic(self):
        assert mac_digest(b"k", b"data") == mac_digest(b"k", b"data")

    def test_key_sensitivity(self):
        assert mac_digest(b"k1", b"data") != mac_digest(b"k2", b"data")

    def test_length_prefix_prevents_concatenation_ambiguity(self):
        assert mac_digest(b"k", b"ab", b"c") != mac_digest(b"k", b"a", b"bc")

    def test_verify(self):
        mac = Mac(b"key")
        tag = mac.digest(b"block")
        assert mac.verify(tag, b"block")
        assert not mac.verify(tag, b"tampered")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Mac(b"")

    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_tag_width_constant(self, key, data):
        assert len(mac_digest(key, data)) == 8


class TestPrng:
    def test_deterministic_per_seed(self):
        a = XorShift64(seed=42)
        b = XorShift64(seed=42)
        assert [a.next_u64() for _ in range(5)] == [b.next_u64() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert XorShift64(1).next_u64() != XorShift64(2).next_u64()

    def test_zero_seed_survives(self):
        rng = XorShift64(0)
        assert rng.next_u64() != 0

    def test_next_below_bound(self):
        rng = XorShift64(7)
        for _ in range(100):
            assert 0 <= rng.next_below(13) < 13

    def test_next_float_range(self):
        rng = XorShift64(9)
        values = [rng.next_float() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 90  # not degenerate

    def test_next_bytes_length(self):
        assert len(XorShift64(3).next_bytes(13)) == 13

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            XorShift64(3).next_below(0)


class TestTriviumFast:
    """The word-parallel engine (64 bits/step) must match the bitwise one."""

    def test_matches_bitwise_for_page(self):
        from repro.crypto.trivium_fast import TriviumFast
        key, iv = bytes(range(10)), bytes(range(10, 20))
        assert TriviumFast(key, iv).keystream(512) == Trivium(key, iv).keystream(512)

    @given(st.binary(min_size=10, max_size=10), st.binary(min_size=10, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_matches_bitwise_property(self, key, iv):
        from repro.crypto.trivium_fast import TriviumFast
        assert TriviumFast(key, iv).keystream(48) == Trivium(key, iv).keystream(48)

    def test_unaligned_requests_match(self):
        """Byte counts that straddle 64-bit block boundaries still agree."""
        from repro.crypto.trivium_fast import TriviumFast
        key, iv = b"0123456789", b"abcdefghij"
        fast = TriviumFast(key, iv)
        slow = Trivium(key, iv)
        chunks_fast = [fast.keystream(n) for n in (1, 7, 13, 64, 3)]
        chunks_slow = [slow.keystream(n) for n in (1, 7, 13, 64, 3)]
        assert chunks_fast == chunks_slow

    def test_process_roundtrip(self):
        from repro.crypto.trivium_fast import TriviumFast
        key, iv = b"0123456789", b"abcdefghij"
        data = b"a 4KB flash page worth of user data" * 10
        ct = TriviumFast(key, iv).process(data)
        assert TriviumFast(key, iv).process(ct) == data

    def test_rejects_bad_sizes(self):
        from repro.crypto.trivium_fast import TriviumFast
        with pytest.raises(ValueError):
            TriviumFast(b"short", bytes(10))
        with pytest.raises(ValueError):
            TriviumFast(bytes(10), bytes(10)).keystream(-1)
