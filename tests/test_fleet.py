"""repro.fleet: sharded scale-out, hedged reads, rebuild, crash oracle."""

import pytest

from repro.fleet import (
    DeviceConfig,
    FleetDevice,
    FleetRefusal,
    FleetRunner,
    FleetTopology,
    RebuildManager,
    ShardRouter,
    TopologyChannelRouter,
    restore_fleet_runner,
    run_fleet,
    run_fleet_arm,
    run_fleet_oracle,
    seeded_mix,
    snapshot_fleet_runner,
)
from repro.fleet.checkpoint import FLEET_SNAPSHOT_KIND
from repro.recovery.snapshot import load_snapshot, save_snapshot
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import HedgePolicy
from repro.serve.wire import (
    RETRYABLE,
    WireStatus,
    retry_after_for,
    status_for_fleet,
)
from repro.sim.engine import Engine


# -- topology ------------------------------------------------------------------


class TestTopology:
    def test_placement_is_a_pure_function_of_seed(self):
        a = FleetTopology(7, range(6), replication=2)
        b = FleetTopology(7, range(6), replication=2)
        assert [a.replicas_for(k) for k in range(100)] == [
            b.replicas_for(k) for k in range(100)
        ]

    def test_different_seeds_place_differently(self):
        a = FleetTopology(7, range(6), replication=2)
        b = FleetTopology(8, range(6), replication=2)
        assert [a.replicas_for(k) for k in range(100)] != [
            b.replicas_for(k) for k in range(100)
        ]

    def test_replicas_are_distinct_and_alive(self):
        topo = FleetTopology(7, range(6), replication=3)
        for key in range(50):
            replicas = topo.replicas_for(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
        topo.mark_dead(2)
        for key in range(50):
            assert 2 not in topo.replicas_for(key)

    def test_device_death_moves_only_its_keys(self):
        topo = FleetTopology(7, range(6), replication=2)
        before = {k: topo.replicas_for(k) for k in range(200)}
        topo.mark_dead(3)
        moved = untouched = 0
        for key, old in before.items():
            new = topo.replicas_for(key)
            if 3 in old:
                moved += 1
            else:
                assert new == old  # consistent hashing: survivors keep their sets
                untouched += 1
        assert moved > 0 and untouched > moved

    def test_seeded_mix_never_uses_builtin_hash(self):
        # identical across processes by construction: a fixed vector
        assert seeded_mix(1, 2, 3) == seeded_mix(1, 2, 3)
        assert seeded_mix(1, 2, 3) != seeded_mix(1, 3, 2)

    def test_membership_snapshot_round_trips(self):
        topo = FleetTopology(7, range(4), replication=2)
        topo.mark_dead(1)
        state = topo.snapshot_state()
        fresh = FleetTopology(7, range(4), replication=2)
        fresh.restore_state(state)
        assert fresh.alive_devices() == [0, 2, 3]
        assert [fresh.replicas_for(k) for k in range(40)] == [
            topo.replicas_for(k) for k in range(40)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetTopology(7, [])
        with pytest.raises(ValueError):
            FleetTopology(7, [1, 1])
        with pytest.raises(ValueError):
            FleetTopology(7, range(3), replication=4)


# -- devices -------------------------------------------------------------------


class TestDevice:
    def test_quarantine_drops_exactly_the_die_keys(self):
        dev = FleetDevice(0, seed=7, config=DeviceConfig(dies=4))
        for key in range(16):
            dev.write(0.0, key, b"x")
        dropped = dev.quarantine_die(0.0, 1)
        assert dropped == [1, 5, 9, 13]
        assert dev.keys_held() == sorted(set(range(16)) - set(dropped))

    def test_kill_refuses_commands(self):
        dev = FleetDevice(0, seed=7)
        dev.write(0.0, 1, b"x")
        assert dev.kill(0.0) is True
        assert dev.kill(0.0) is False  # idempotent, reports prior state
        assert dev.read(0.0, 1).reason == "dead"
        assert not dev.write(0.0, 2, b"y").ok
        assert dev.install_replica(3, b"z") is False

    def test_storm_slows_and_error_credits_fail(self):
        dev = FleetDevice(0, seed=7)
        dev.write(0.0, 1, b"x")
        base = dev.read(0.0, 1).latency_s
        dev.start_storm(1.0, duration_s=1.0, credits=1)
        failed = dev.read(1.5, 1)
        assert failed.reason == "media_error"
        slow = dev.read(1.5, 1)
        assert slow.ok and slow.latency_s > 4 * base
        after = dev.read(3.0, 1)  # storm expired
        assert after.ok and after.latency_s < 2 * base

    def test_success_never_depends_on_rng(self):
        # two devices with different jitter histories agree on outcomes
        a, b = FleetDevice(0, seed=7), FleetDevice(0, seed=7)
        for _ in range(5):
            b.read(0.0, 99)  # burn extra jitter draws on b only
        a.write(0.0, 1, b"x")
        b.write(0.0, 1, b"x")
        ra, rb = a.read(0.0, 1), b.read(0.0, 1)
        assert (ra.ok, ra.value) == (rb.ok, rb.value)

    def test_snapshot_round_trip(self):
        dev = FleetDevice(0, seed=7)
        dev.write(0.0, 1, b"x")
        dev.start_storm(0.0, 1.0, credits=2)
        dev.quarantine_die(0.0, 3)
        state = dev.snapshot_state()
        fresh = FleetDevice(0, seed=7)
        fresh.restore_state(state)
        assert fresh.snapshot_state() == state
        # restored jitter stream continues identically
        assert fresh.read(2.0, 1).latency_s == dev.read(2.0, 1).latency_s


# -- the shard router ----------------------------------------------------------


def make_fleet(seed=7, devices=3, replication=2, hedge=None):
    engine = Engine()
    topo = FleetTopology(seed, range(devices), replication=replication)
    fleet = {d: FleetDevice(d, seed) for d in range(devices)}
    router = ShardRouter(
        engine, topo, fleet, breakers=BreakerBoard(), hedge=hedge
    )
    return engine, topo, fleet, router


class TestRouter:
    def test_write_fans_out_to_all_replicas(self):
        engine, topo, fleet, router = make_fleet()
        outcome = router.write(0.0, 5, b"payload")
        assert outcome.ok
        assert list(outcome.replicas) == sorted(topo.replicas_for(5))
        for device_id in outcome.replicas:
            assert fleet[device_id].peek(5) == b"payload"

    def test_read_serves_winner_value(self):
        engine, topo, fleet, router = make_fleet()
        holders = list(router.write(0.0, 5, b"payload").replicas)
        outcome = router.read(0.0, 5, holders)
        assert outcome.ok and outcome.value == b"payload"
        assert outcome.winner in holders
        assert not outcome.hedged  # no hedge policy installed

    def test_hedge_winner_used_and_loser_cancelled_without_heap_leak(self):
        hedge = HedgePolicy(floor_s=400e-6, min_samples=10_000)  # fixed floor
        engine, topo, fleet, router = make_fleet(hedge=hedge)
        holders = list(router.write(0.0, 5, b"payload").replicas)
        primary = sorted(holders)[0]
        fleet[primary].stall(0.0, duration_s=1.0)  # primary crawls (~40x)
        outcome = router.read(0.0, 5, holders)
        assert outcome.ok and outcome.value == b"payload"
        assert outcome.hedged and outcome.winner != primary
        assert outcome.attempts == 2
        assert router.counters["hedge_wins"] == 1
        assert router.counters["hedge_losses_cancelled"] == 1
        # the cancelled loser must not linger in the sim-engine heap
        assert engine.pending == 0
        assert engine.queued_entries == 0

    def test_read_digest_identical_with_and_without_hedge(self):
        # success is state-based, never latency-based: hedging changes which
        # commands race, but the served bytes (and thus the data digest)
        # must be identical with the hedge on or off
        hedge = HedgePolicy(floor_s=400e-6, min_samples=10_000)
        arms = []
        for policy in (hedge, None):
            engine, topo, fleet, router = make_fleet(hedge=policy)
            placed = {}
            for key in range(12):
                placed[key] = list(router.write(0.0, key, b"v%d" % key).replicas)
            fleet[0].stall(0.0, duration_s=1.0)  # force hedges on arm one
            oks = 0
            for key in range(12):
                outcome = router.read(0.0, key, placed[key])
                oks += outcome.ok
            arms.append((router.read_digest, oks))
        assert arms[0][0] == arms[1][0]
        assert arms[0][1] == arms[1][1]
        assert arms[0][0] != ShardRouter(
            Engine(), FleetTopology(7, range(3)), {}
        ).read_digest  # the digest actually absorbed something

    def test_failover_ladders_to_surviving_replica(self):
        engine, topo, fleet, router = make_fleet()
        holders = list(router.write(0.0, 5, b"payload").replicas)
        fleet[sorted(holders)[0]].error_credits = 1
        outcome = router.read(0.0, 5, holders)
        assert outcome.ok and outcome.attempts == 2
        assert engine.queued_entries == 0

    def test_read_error_refusal_is_terminal(self):
        engine, topo, fleet, router = make_fleet()
        with pytest.raises(FleetRefusal) as err:
            router.read(0.0, 5, [])  # no holders at all: data is gone
        assert err.value.status is WireStatus.READ_ERROR
        assert not err.value.retryable
        assert err.value.retry_after_s == 0.0

    def test_replica_exhausted_refusal_is_retryable(self):
        engine, topo, fleet, router = make_fleet()
        holders = list(router.write(0.0, 5, b"payload").replicas)
        for device_id in holders:
            fleet[device_id].error_credits = 5
        with pytest.raises(FleetRefusal) as err:
            router.read(0.0, 5, holders)
        assert err.value.status is WireStatus.REPLICA_EXHAUSTED
        assert err.value.retryable
        assert err.value.retry_after_s == pytest.approx(900e-6)
        assert engine.queued_entries == 0

    def test_write_quorum_miss_is_under_replicated(self):
        engine, topo, fleet, router = make_fleet(devices=2, replication=2)
        fleet[1].kill(0.0)  # still in topology: the write still targets it
        with pytest.raises(FleetRefusal) as err:
            router.write(0.0, 5, b"payload", quorum=2)
        assert err.value.status is WireStatus.UNDER_REPLICATED
        assert err.value.retryable
        assert err.value.retry_after_s == pytest.approx(1200e-6)

    def test_write_with_no_targets_is_replica_exhausted(self):
        engine, topo, fleet, router = make_fleet(devices=2, replication=1)
        for device_id in (0, 1):
            fleet[device_id].kill(0.0)
            topo.mark_dead(device_id)
        with pytest.raises(FleetRefusal) as err:
            router.write(0.0, 5, b"payload")
        assert err.value.status is WireStatus.REPLICA_EXHAUSTED


class TestWireTaxonomy:
    def test_fleet_statuses_are_typed_and_retryable(self):
        assert status_for_fleet("replica_exhausted") is WireStatus.REPLICA_EXHAUSTED
        assert status_for_fleet("under_replicated") is WireStatus.UNDER_REPLICATED
        assert status_for_fleet("read_error") is WireStatus.READ_ERROR
        assert status_for_fleet("???") is WireStatus.INTERNAL
        assert WireStatus.REPLICA_EXHAUSTED in RETRYABLE
        assert WireStatus.UNDER_REPLICATED in RETRYABLE
        assert WireStatus.READ_ERROR not in RETRYABLE

    def test_retry_after_hints_are_deterministic(self):
        assert retry_after_for(WireStatus.REPLICA_EXHAUSTED) == pytest.approx(900e-6)
        assert retry_after_for(WireStatus.UNDER_REPLICATED) == pytest.approx(1200e-6)
        assert retry_after_for(WireStatus.READ_ERROR) == 0.0


# -- rebuild -------------------------------------------------------------------


class TestRebuild:
    def setup_fleet(self):
        engine, topo, fleet, router = make_fleet(devices=4, replication=2)
        rebuild = RebuildManager(topo, fleet, replication=2)
        for key in range(20):
            outcome = router.write(0.0, key, b"k%d" % key)
            rebuild.record_write(0.0, key, list(outcome.replicas))
        return engine, topo, fleet, router, rebuild

    def test_device_kill_triggers_rebuild_to_full_replication(self):
        engine, topo, fleet, router, rebuild = self.setup_fleet()
        fleet[1].kill(1.0)
        topo.mark_dead(1)
        affected = rebuild.device_lost(1.0, 1)
        assert affected > 0
        assert rebuild.under_replicated == affected
        assert rebuild.pending == affected
        while rebuild.pending:
            rebuild.pump_rebuild(2.0, budget=2)
        assert rebuild.under_replicated == 0
        assert rebuild.keys_lost == 0
        assert rebuild.counters["rebuilds_completed"] == affected
        # every key is back at full replication on alive devices, bytes intact
        for key in range(20):
            holders = rebuild.holders(key)
            assert len(holders) == 2 and 1 not in holders
            for device_id in holders:
                assert fleet[device_id].peek(key) == b"k%d" % key

    def test_quarantine_triggers_partial_rebuild(self):
        engine, topo, fleet, router, rebuild = self.setup_fleet()
        dropped = fleet[2].quarantine_die(1.0, 0)
        affected = rebuild.replicas_dropped(1.0, 2, dropped)
        assert affected == len(dropped) > 0
        rebuild.pump_rebuild(2.0, budget=100)
        assert rebuild.under_replicated == 0
        for key in dropped:
            assert len(rebuild.holders(key)) == 2

    def test_losing_every_holder_counts_keys_lost(self):
        engine, topo, fleet, router, rebuild = self.setup_fleet()
        for device_id in range(4):
            fleet[device_id].kill(1.0)
            topo.mark_dead(device_id)
            rebuild.device_lost(1.0, device_id)
        assert rebuild.keys_lost == 20
        assert rebuild.under_replicated == 0  # lost, not under-replicated

    def test_under_replicated_window_integral_accumulates(self):
        engine, topo, fleet, router, rebuild = self.setup_fleet()
        fleet[1].kill(1.0)
        topo.mark_dead(1)
        affected = rebuild.device_lost(1.0, 1)
        rebuild.account(3.0)  # two exposed seconds before any repair
        assert rebuild.under_replicated_key_seconds == pytest.approx(
            affected * 2.0
        )
        assert rebuild.max_under_replicated == affected
        while rebuild.pending:
            rebuild.pump_rebuild(3.0, budget=4)
        rebuild.account(10.0)  # healed: the integral stops growing
        assert rebuild.under_replicated_key_seconds == pytest.approx(
            affected * 2.0
        )

    def test_rebuild_snapshot_round_trips_mid_queue(self):
        engine, topo, fleet, router, rebuild = self.setup_fleet()
        fleet[1].kill(1.0)
        topo.mark_dead(1)
        rebuild.device_lost(1.0, 1)
        rebuild.pump_rebuild(2.0, budget=1)  # leave work queued
        assert rebuild.pending > 0
        state = rebuild.snapshot_state()
        fresh = RebuildManager(topo, fleet, replication=2)
        fresh.restore_state(state)
        assert fresh.snapshot_state() == state
        while fresh.pending:
            fresh.pump_rebuild(3.0, budget=4)
        assert fresh.under_replicated == 0


# -- serve integration ---------------------------------------------------------


class TestServeIntegration:
    def test_channel_router_walks_ring_replicas(self):
        from tests.test_serve import make_service

        topo = FleetTopology(7, range(4), replication=2)
        service, _ = make_service(channels=4, router=TopologyChannelRouter(topo))
        for lpa in range(16):
            assert service._pick_channel("read", lpa) == topo.primary_for(lpa)

    def test_service_roundtrip_with_fleet_router(self):
        import asyncio

        from repro.serve import Request
        from tests.test_serve import make_service, roundtrip

        topo = FleetTopology(7, range(4), replication=2)
        service, session = make_service(
            channels=4, router=TopologyChannelRouter(topo)
        )
        assert roundtrip(service, session, Request(op="read", lpas=(3,))).ok

    def test_default_channel_scheme_unchanged_without_router(self):
        from tests.test_serve import make_service

        service, _ = make_service(channels=4)
        for lpa in range(16):
            assert service._pick_channel("read", lpa) == lpa % 4


# -- the lab -------------------------------------------------------------------


class TestFleetLab:
    def test_replication_strictly_beats_off_under_chaos(self):
        report = run_fleet(42, 600, devices=6, replication=2, working_set=64)
        assert report.policy_win
        assert report.on.availability > report.off.availability
        assert report.on.p99_read_s < report.off.p99_read_s
        assert report.off.keys_lost > 0  # the kill actually cost data
        assert report.on.keys_lost == 0  # replication absorbed it
        assert report.on.rebuilds_completed > 0
        assert report.on.under_replicated_key_seconds > 0.0

    def test_double_run_is_byte_identical(self):
        a = run_fleet(42, 400, devices=6, working_set=48)
        b = run_fleet(42, 400, devices=6, working_set=48)
        assert a.fingerprint() == b.fingerprint()
        assert a.to_json() == b.to_json()

    def test_jobs_parallel_matches_serial(self):
        from repro.perf.parallel import fleet_point, map_points

        specs = [
            fleet_point(42, 300, 6, 1, False),
            fleet_point(42, 300, 6, 2, True),
        ]
        serial = map_points(specs, jobs=1)
        forked = map_points(specs, jobs=2)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in forked
        ]

    def test_arm_report_is_picklable(self):
        import pickle

        arm = run_fleet_arm(42, 200, devices=4)
        clone = pickle.loads(pickle.dumps(arm))
        assert clone.fingerprint() == arm.fingerprint()

    def test_runner_is_quiescent_between_steps(self):
        runner = FleetRunner(42, 50, devices=4, working_set=16)
        while runner.step():
            assert runner.engine.pending == 0
            assert runner.engine.queued_entries == 0

    def test_json_report_schema(self):
        report = run_fleet(42, 200, devices=4, working_set=32)
        payload = report.to_json()
        assert payload["schema"] == "fleet-lab-report/v1"
        for arm_key in ("replication_off", "replication_on"):
            arm = payload[arm_key]
            for field in (
                "availability", "p99_read_s", "keys_lost",
                "rebuilds_completed", "under_replicated_key_seconds",
                "fingerprint",
            ):
                assert field in arm
        assert isinstance(payload["policy_win"], bool)


# -- checkpoints + crash oracle ------------------------------------------------


class TestFleetRecovery:
    def test_checkpoint_round_trip_matches_uninterrupted(self, tmp_path):
        golden = FleetRunner(42, 300, devices=5, rebuild_batch=1).run()
        runner = FleetRunner(42, 300, devices=5, rebuild_batch=1)
        runner.run_until(150)
        path = str(tmp_path / "fleet.snap")
        save_snapshot(snapshot_fleet_runner(runner), path)
        del runner
        resumed = restore_fleet_runner(
            load_snapshot(path, expect_kind=FLEET_SNAPSHOT_KIND)
        )
        resumed.run_until(300)
        assert resumed.finalize().fingerprint() == golden.fingerprint()

    def test_oracle_passes_and_cuts_mid_rebuild(self):
        report = run_fleet_oracle(
            base_seed=42, seeds=1, points=5, requests=400, devices=6
        )
        assert report.all_passed
        assert report.failed == 0
        assert report.mid_rebuild_points >= 1  # the interesting cut happened
        assert report.corruption_rejected


# -- the fleet-unseeded-topology lint rule -------------------------------------


class TestUnseededTopologyRule:
    def scan(self, tmp_path, body):
        from repro.analysis import analyze_paths

        victim = tmp_path / "victim.py"
        victim.write_text("# analysis-module: repro.fleet.victim\n" + body)
        return analyze_paths([victim], root=tmp_path)

    def test_builtin_hash_flagged(self, tmp_path):
        result = self.scan(
            tmp_path,
            "def place(key, rng, devices):\n"
            "    return devices[hash(key) % len(devices)]\n",
        )
        assert [f.rule for f in result.findings] == ["fleet-unseeded-topology"]

    def test_unseeded_xorshift_flagged(self, tmp_path):
        result = self.scan(
            tmp_path,
            "from repro.crypto.prng import XorShift64\n\n"
            "def pick(devices, seed):\n"
            "    rng = XorShift64()\n"
            "    return devices[rng.next_below(len(devices))]\n",
        )
        assert [f.rule for f in result.findings] == ["fleet-unseeded-topology"]

    def test_topology_path_without_clock_or_rng_flagged(self, tmp_path):
        result = self.scan(
            tmp_path,
            "def rebalance_ring(devices):\n"
            "    return devices[0]\n",
        )
        assert [f.rule for f in result.findings] == ["fleet-unseeded-topology"]

    def test_seeded_topology_path_is_clean(self, tmp_path):
        result = self.scan(
            tmp_path,
            "def rebalance_ring(devices, rng):\n"
            "    return devices[rng.next_below(len(devices))]\n\n"
            "def pump_rebuild(now, budget):\n"
            "    return budget\n",
        )
        assert result.findings == []

    def test_rule_is_scoped_to_the_fleet_package(self, tmp_path):
        from repro.analysis import analyze_paths

        victim = tmp_path / "victim.py"
        victim.write_text(
            "# analysis-module: repro.ftl.victim\n"
            "def rebalance_ring(devices):\n"
            "    return devices[hash(devices[0]) % len(devices)]\n"
        )
        result = analyze_paths([victim], root=tmp_path)
        assert "fleet-unseeded-topology" not in [f.rule for f in result.findings]


# -- CLI -----------------------------------------------------------------------


class TestFleetCli:
    def test_fleet_lab_quick(self, capsys):
        from repro.cli import main

        assert main(["fleet-lab", "--quick", "--requests", "600"]) == 0
        out = capsys.readouterr().out
        assert "policy win: yes" in out
        assert "deterministic: yes" in out

    def test_fleet_lab_exports(self, tmp_path, capsys):
        import json

        from repro.cli import main

        csv = tmp_path / "fleet.csv"
        js = tmp_path / "fleet.json"
        assert (
            main([
                "fleet-lab", "--requests", "300", "--devices", "4",
                "--csv", str(csv), "--json", str(js),
            ])
            == 0
        )
        assert csv.read_text().count("\n") == 3  # header + two arms
        payload = json.loads(js.read_text())
        assert payload["schema"] == "fleet-lab-report/v1"
        assert payload["policy_win"] is True

    def test_fleet_lab_rejects_bad_geometry(self, capsys):
        from repro.cli import main

        assert main(["fleet-lab", "--devices", "1"]) == 2
        assert main(["fleet-lab", "--replication", "9"]) == 2

    def test_fleet_oracle_quick(self, capsys):
        from repro.cli import main

        assert (
            main([
                "fleet-oracle", "--seeds", "1", "--points", "3",
                "--requests", "200",
            ])
            == 0
        )
        assert "byte-identical  : 3/3" in capsys.readouterr().out
