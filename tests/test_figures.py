"""Tests for the shared figure-series builders."""

import pytest

from repro.platform import PlatformConfig
from repro.platform.figures import (
    SCHEMES,
    fig5_mapping_location,
    fig8_mee_schemes,
    fig11_schemes,
    fig11_summary,
    fig12_13_channel_sweep,
    fig14_latency_sweep,
    fig16_dram_sweep,
    fig17_pairs,
    fig18_quad,
    table1_write_ratios,
    table6_extra_traffic,
)
from repro.workloads import workload_by_name

SUBSET = ("filter", "tpch-q1", "tpcc")


@pytest.fixture(scope="module")
def profiles():
    return {n: workload_by_name(n).run() for n in SUBSET}


@pytest.fixture(scope="module")
def config():
    return PlatformConfig()


class TestSeriesBuilders:
    def test_table1(self, profiles):
        ratios = table1_write_ratios(profiles)
        assert set(ratios) == set(SUBSET)
        assert ratios["tpcc"] > ratios["tpch-q1"]

    def test_fig5(self, profiles, config):
        series = fig5_mapping_location(profiles, config)
        for protected, secure in series.values():
            assert secure > protected

    def test_fig8(self, profiles, config):
        series = fig8_mee_schemes(profiles, config)
        for times in series.values():
            assert times["none"] <= times["hybrid"] <= times["sc64"]

    def test_fig11_and_summary(self, profiles, config):
        results = fig11_schemes(profiles, config)
        for per_scheme in results.values():
            assert set(per_scheme) == set(SCHEMES)
        summary = fig11_summary(results)
        assert summary["speedup_vs_host"] > 1.0
        assert summary["overhead_vs_isc"] >= 0.0

    def test_fig12_13(self, profiles, config):
        sweep = fig12_13_channel_sweep(profiles, config, channels=(4, 16))
        for name in SUBSET:
            assert sweep[16][name][0] > sweep[4][name][0]  # speedup grows

    def test_fig14(self, profiles, config):
        sweep = fig14_latency_sweep(profiles, config, latencies_us=(10, 110))
        for name in SUBSET:
            assert sweep[110][name] <= sweep[10][name] * 1.05

    def test_fig16(self, profiles, config):
        sweep = fig16_dram_sweep(profiles, config)
        for name in SUBSET:
            assert sweep[2][name][0] >= sweep[4][name][0]  # ISC slower at 2GB

    def test_fig17(self, profiles, config):
        pairs = fig17_pairs(profiles, config, anchor="tpcc",
                            partners=["filter"])
        results = pairs["filter"]
        assert len(results) == 2
        assert all(r.stats["slowdown"] >= 1.0 for r in results)

    def test_fig18(self, profiles, config):
        results = fig18_quad(profiles, config,
                             quad=("tpcc", "filter", "tpch-q1", "tpcc"))
        assert len(results) == 4

    def test_table6(self, profiles, config):
        traffic = table6_extra_traffic(profiles, config, sample=20_000)
        enc, ver = traffic["tpcc"]
        assert enc > 0 and ver > 0
        assert sum(traffic["tpcc"]) > sum(traffic["tpch-q1"])

    def test_unknown_workloads_appended(self, config):
        extra = {"filter": workload_by_name("filter").run()}
        ratios = table1_write_ratios(extra)
        assert list(ratios) == ["filter"]
