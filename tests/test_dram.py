"""Tests for the DDR3 bank/controller model."""

import pytest

from repro.dram import Bank, DramController, DramTiming


class TestTiming:
    def test_table3_defaults(self):
        t = DramTiming()
        assert (t.t_rcd, t.t_ras, t.t_rp, t.t_cl, t.t_wr) == (11, 28, 11, 11, 12)
        assert t.total_banks == 16  # 1 channel x 2 ranks x 8 banks

    def test_latency_ordering(self):
        t = DramTiming()
        assert t.row_hit_cycles < t.row_miss_cycles < t.row_conflict_cycles

    def test_peak_bandwidth_ddr3_1600(self):
        t = DramTiming()
        # 800 MHz / 4 cycles per 64B burst = 12.8 GB/s
        assert t.peak_bandwidth == pytest.approx(12.8e9, rel=0.01)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(t_rcd=0)


class TestBank:
    def test_first_access_is_miss(self):
        bank = Bank(DramTiming())
        bank.access(row=1, now=0.0, is_write=False)
        assert bank.misses == 1

    def test_same_row_hits(self):
        bank = Bank(DramTiming())
        bank.access(1, 0.0, False)
        bank.access(1, 100.0, False)
        assert bank.hits == 1

    def test_row_conflict_pays_precharge(self):
        t = DramTiming()
        bank = Bank(t)
        bank.access(1, 0.0, False)
        start = bank.ready_cycle
        finish = bank.access(2, start, False)
        assert bank.conflicts == 1
        # conflict must cost at least tRP + tRCD + tCL + burst
        assert finish - start >= t.row_conflict_cycles

    def test_tras_respected_on_fast_conflict(self):
        t = DramTiming()
        bank = Bank(t)
        bank.access(1, 0.0, False)
        finish = bank.access(2, 0.0, False)  # immediate conflict
        # cannot precharge before tRAS expires
        assert finish >= t.t_ras + t.row_conflict_cycles

    def test_write_recovery_extends(self):
        t = DramTiming()
        bank = Bank(t)
        read_finish = bank.access(1, 0.0, False)
        bank2 = Bank(t)
        write_finish = bank2.access(1, 0.0, True)
        assert write_finish >= read_finish


class TestController:
    def test_sequential_stream_mostly_hits(self):
        ctrl = DramController()
        for i in range(4096):
            ctrl.access(i * 64)
        assert ctrl.row_hit_rate() > 0.9

    def test_random_stream_lower_hit_rate(self):
        from repro.crypto.prng import XorShift64
        rng = XorShift64(3)
        seq = DramController()
        for i in range(2048):
            seq.access(i * 64)
        rnd = DramController()
        for _ in range(2048):
            rnd.access(rng.next_below(1 << 30) * 64)
        assert rnd.row_hit_rate() < seq.row_hit_rate()
        assert rnd.amat() > seq.amat()

    def test_amat_positive_and_sane(self):
        ctrl = DramController()
        for i in range(1000):
            ctrl.access(i * 64, arrival_gap=100e-9)
        amat = ctrl.amat()
        t = ctrl.timing
        assert t.cycles_to_seconds(t.row_hit_cycles) <= amat
        assert amat <= t.cycles_to_seconds(t.row_conflict_cycles + t.t_ras)

    def test_bank_interleaving_spreads_accesses(self):
        ctrl = DramController()
        for i in range(160):
            ctrl.access(i * 64, arrival_gap=1e-9)
        used_banks = sum(1 for b in ctrl.banks if b.hits + b.misses + b.conflicts)
        assert used_banks == ctrl.timing.total_banks

    def test_run_trace(self):
        ctrl = DramController()
        mean = ctrl.run_trace([(i * 64, i % 5 == 0) for i in range(100)])
        assert mean > 0
        assert ctrl.accesses == 100

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            DramController().access(0, arrival_gap=-1.0)


class TestRefresh:
    def test_refresh_fires_at_trefi(self):
        ctrl = DramController()
        # advance well past several refresh intervals
        for _ in range(10):
            ctrl.access(0, arrival_gap=10e-6)
        assert ctrl.refreshes >= 10 * 10e-6 / 7.8e-6 - 1

    def test_refresh_closes_rows(self):
        ctrl = DramController()
        ctrl.access(0)
        ctrl.access(0, arrival_gap=10e-6)  # crosses a refresh boundary
        # second access to the same row is not a row hit (refresh precharged)
        assert ctrl.banks[ctrl._map(0)[0]].hits == 0

    def test_refresh_disabled(self):
        ctrl = DramController(refresh=False)
        for _ in range(10):
            ctrl.access(0, arrival_gap=10e-6)
        assert ctrl.refreshes == 0
        # with refresh off, the second access onward hits the open row
        assert ctrl.banks[ctrl._map(0)[0]].hits == 9

    def test_refresh_overhead_fraction_small(self):
        t = DramTiming()
        assert 0.01 < t.refresh_overhead < 0.06  # a few percent, like real DDR3

    def test_refresh_increases_amat(self):
        def run(refresh):
            ctrl = DramController(refresh=refresh)
            for i in range(5000):
                ctrl.access(i * 64, arrival_gap=100e-9)
            return ctrl.amat()

        assert run(True) > run(False)
