"""Tests for the synthetic I/O trace generators + SSD system replay."""

import pytest

from repro.flash.geometry import small_geometry
from repro.flash.traces import (
    GENERATORS,
    TraceConfig,
    random_read,
    sequential_read,
    sequential_write,
    transaction_mix,
    zipf_write,
)
from repro.ftl.ssd_system import SsdSystem


def cfg(pages=64, length=100, seed=3):
    return TraceConfig(logical_pages=pages, length=length, seed=seed)


class TestGenerators:
    def test_sequential_read_order(self):
        reqs = list(sequential_read(cfg(length=5)))
        assert reqs == [("read", i) for i in range(5)]

    def test_sequential_wraps(self):
        reqs = list(sequential_read(cfg(pages=4, length=6)))
        assert [lpa for _, lpa in reqs] == [0, 1, 2, 3, 0, 1]

    def test_random_read_in_range_and_deterministic(self):
        a = list(random_read(cfg()))
        b = list(random_read(cfg()))
        assert a == b
        assert all(0 <= lpa < 64 for _, lpa in a)

    def test_zipf_write_concentrates_on_hot_region(self):
        reqs = list(zipf_write(cfg(pages=100, length=2000), hot_fraction=0.1,
                               hot_probability=0.9))
        hot = sum(1 for _, lpa in reqs if lpa < 10)
        assert hot / len(reqs) == pytest.approx(0.9, abs=0.05)

    def test_transaction_mix_first_touch_is_write(self):
        """A read-modify-write mix never reads an unwritten page."""
        written = set()
        for op, lpa in transaction_mix(cfg(length=500), write_ratio=0.2):
            if op == "read":
                assert lpa in written
            else:
                written.add(lpa)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TraceConfig(logical_pages=0, length=1)
        with pytest.raises(ValueError):
            list(zipf_write(cfg(), hot_fraction=0.0))
        with pytest.raises(ValueError):
            list(transaction_mix(cfg(), write_ratio=1.5))

    def test_registry_complete(self):
        assert set(GENERATORS) == {
            "sequential-read", "sequential-write", "random-read",
            "zipf-write", "transaction-mix",
        }


class TestReplayOnSsd:
    def make_ssd(self):
        geometry = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                                  planes_per_die=2, blocks_per_plane=8,
                                  pages_per_block=8)
        return SsdSystem(geometry=geometry)

    def replay(self, ssd, trace):
        for op, lpa in trace:
            if op == "write":
                ssd.write(lpa)
            else:
                ssd.read(lpa)
        return ssd.run_to_completion()

    def test_populate_then_scan(self):
        ssd = self.make_ssd()
        pages = ssd.ftl.logical_pages // 2
        self.replay(ssd, sequential_write(cfg(pages=pages, length=pages)))
        self.replay(ssd, sequential_read(cfg(pages=pages, length=pages)))
        assert ssd.stats.reads_issued == pages
        assert ssd.stats.read_latency.count == pages

    def test_zipf_churn_triggers_gc(self):
        ssd = self.make_ssd()
        pages = ssd.ftl.logical_pages // 2
        trace = zipf_write(cfg(pages=pages, length=ssd.geometry.total_pages * 3))
        self.replay(ssd, trace)
        assert ssd.ftl.gc.total_erases > 0
        assert ssd.write_amplification() >= 1.0

    def test_skewed_writes_cost_more_than_sequential(self):
        """Zipf churn triggers GC work that sequential population avoids."""
        seq = self.make_ssd()
        pages = seq.ftl.logical_pages // 2
        length = seq.geometry.total_pages * 3
        self.replay(seq, sequential_write(cfg(pages=pages, length=length)))
        skew = self.make_ssd()
        self.replay(skew, zipf_write(cfg(pages=pages, length=length)))
        assert skew.ftl.gc.total_relocations >= seq.ftl.gc.total_relocations
