"""Smoke tests: every example script runs end-to-end and says what it should.

Examples are documentation that executes; these tests keep them honest as
the library evolves. They run the example mains in-process (faster than
subprocesses, and coverage-visible).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # examples import sibling-free; register before exec for dataclass pickling
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "IceClave vs Host" in out
        assert "paper: 2.31x avg" in out

    def test_attack_demo_blocks_everything(self, capsys):
        load_example("attack_demo").main()
        out = capsys.readouterr().out
        assert "All attacks of the threat model were blocked." in out
        assert out.count("BLOCKED") >= 3
        assert out.count("DETECTED") >= 2

    def test_tpch_offload(self, capsys):
        load_example("tpch_offload").main()
        out = capsys.readouterr().out
        assert "tpch-q3 breakdown" in out
        assert "average" in out

    def test_multi_tenant(self, capsys):
        load_example("multi_tenant").main()
        out = capsys.readouterr().out
        assert "Figure 17" in out and "Figure 18" in out
        assert "paper: 21.4%" in out

    def test_custom_workload(self, capsys):
        load_example("custom_workload").main()
        out = capsys.readouterr().out
        assert "top-3 items" in out
        assert "attestation: TEE measurement verified" in out
        assert "trojaned TEE rejected" in out

    def test_ssd_substrate(self, capsys):
        load_example("ssd_substrate").main()
        out = capsys.readouterr().out
        assert "write amplification" in out
        assert "pages verify" in out

    def test_all_examples_covered(self):
        """Every example file has a smoke test in this module."""
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        test_names = [
            name[len("test_"):]
            for name in dir(TestExamples)
            if name.startswith("test_") and name != "test_all_examples_covered"
        ]
        missing = {
            script
            for script in scripts
            if not any(t.startswith(script) for t in test_names)
        }
        assert not missing, f"examples without smoke tests: {missing}"
