"""Tests for the stream-cipher engine (flash→DRAM transfer security)."""

import pytest

from repro.core import IceClaveConfig, StreamCipherEngine


def make_engine(seed=1):
    return StreamCipherEngine(key=b"secure-key", prng_seed=seed)


class TestCipherEngine:
    def test_roundtrip(self):
        engine = make_engine()
        page = bytes(range(256)) * 16  # 4 KB
        iv, ct = engine.encrypt_page(ppa=1234, data=page)
        assert engine.decrypt_page(iv, ct) == page

    def test_bus_sees_only_ciphertext(self):
        """Bus-snooping attack: transferred bytes differ from the plaintext."""
        engine = make_engine()
        page = b"sensitive user record " * 100
        _, ct = engine.encrypt_page(ppa=7, data=page)
        assert ct != page
        assert b"sensitive" not in ct

    def test_same_page_reread_uses_fresh_iv(self):
        """Temporal uniqueness: re-reading a PPA yields different ciphertext."""
        engine = make_engine()
        page = b"A" * 4096
        iv1, ct1 = engine.encrypt_page(ppa=42, data=page)
        iv2, ct2 = engine.encrypt_page(ppa=42, data=page)
        assert iv1 != iv2
        assert ct1 != ct2

    def test_different_ppas_use_different_ivs(self):
        """Spatial uniqueness: the PPA is embedded in the IV."""
        engine = make_engine()
        iv1 = engine.make_iv(1)
        iv2 = engine.make_iv(2)
        assert iv1[:8] != iv2[:8]

    def test_no_iv_reuse_over_many_pages(self):
        engine = make_engine()
        for ppa in range(200):
            engine.encrypt_page(ppa % 10, b"x" * 64)
        assert engine.iv_reuse_count() == 0

    def test_wrong_iv_fails_to_decrypt(self):
        engine = make_engine()
        page = b"B" * 512
        iv, ct = engine.encrypt_page(ppa=5, data=page)
        other_iv = engine.make_iv(5)
        assert engine.decrypt_page(other_iv, ct) != page

    def test_key_size_enforced(self):
        with pytest.raises(ValueError):
            StreamCipherEngine(key=b"short")

    def test_iv_size_enforced(self):
        with pytest.raises(ValueError):
            make_engine().decrypt_page(b"short", b"data")

    def test_page_latency_matches_keystream_rate(self):
        """Figure 10: 64 keystream bits per cycle."""
        config = IceClaveConfig()
        engine = StreamCipherEngine(key=b"secure-key", config=config)
        bits = config.page_bytes * 8
        expected = (bits / 64) / config.cipher_clock_hz
        assert engine.page_latency() == pytest.approx(expected)

    def test_stats_track_volume(self):
        engine = make_engine()
        iv, ct = engine.encrypt_page(1, b"x" * 100)
        engine.decrypt_page(iv, ct)
        assert engine.stats.pages_encrypted == 1
        assert engine.stats.pages_decrypted == 1
        assert engine.stats.bytes_processed == 200
