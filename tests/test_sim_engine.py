"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, Resource


class TestEngine:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        engine.schedule(5.5, lambda: None)
        engine.run()
        assert engine.now == pytest.approx(5.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_cancel_prevents_firing(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(event)
        engine.run()
        assert fired == []

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == pytest.approx(5.0)
        engine.run()
        assert fired == [1, 2]

    def test_events_scheduled_during_run_fire(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == ["outer", "inner"]
        assert engine.now == pytest.approx(2.0)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        times = []
        engine.schedule(2.0, lambda: engine.schedule_at(7.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [pytest.approx(7.0)]

    def test_reset_clears_state(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0

    def test_max_events_bound(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_clock_is_monotonic_for_any_delays(self, delays):
        engine = Engine()
        observed = []
        for delay in delays:
            engine.schedule(delay, lambda: observed.append(engine.now))
        engine.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestResource:
    def test_single_server_serializes(self):
        engine = Engine()
        res = Resource(engine, "r", servers=1)
        done = []
        res.acquire(2.0, on_done=lambda: done.append(engine.now))
        res.acquire(2.0, on_done=lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_multi_server_parallelizes(self):
        engine = Engine()
        res = Resource(engine, "r", servers=2)
        done = []
        for _ in range(2):
            res.acquire(2.0, on_done=lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_fifo_ordering(self):
        engine = Engine()
        res = Resource(engine, "r", servers=1)
        order = []
        for tag in "abcd":
            res.acquire(1.0, on_done=lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c", "d"]

    def test_utilization_full_when_saturated(self):
        engine = Engine()
        res = Resource(engine, "r", servers=1)
        for _ in range(4):
            res.acquire(1.0)
        engine.run()
        assert res.utilization() == pytest.approx(1.0)

    def test_mean_wait_accounts_queueing(self):
        engine = Engine()
        res = Resource(engine, "r", servers=1)
        res.acquire(1.0)
        res.acquire(1.0)  # waits 1s
        engine.run()
        assert res.mean_wait() == pytest.approx(0.5)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            Resource(Engine(), "r", servers=0)

    def test_rejects_negative_service_time(self):
        with pytest.raises(ValueError):
            Resource(Engine(), "r").acquire(-1.0)

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30),
    )
    def test_completion_time_bounds(self, servers, service_times):
        """Makespan lies between total/servers and total work (FIFO bound)."""
        engine = Engine()
        res = Resource(engine, "r", servers=servers)
        for t in service_times:
            res.acquire(t)
        end = engine.run()
        total = sum(service_times)
        assert end <= total + 1e-9
        assert end >= total / servers - 1e-9
        assert res.jobs_completed == len(service_times)
