"""Stateful property test: AddressSpace allocation/isolation invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import AccessType, AddressSpace, MemoryRegion, MMUFault, World

DRAM = 1 << 20
SECURE = 1 << 16
PROTECTED = 1 << 16


class AddressSpaceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.space = AddressSpace(DRAM, SECURE, PROTECTED)
        self.live = {}  # range -> owner

    @rule(nbytes=st.integers(min_value=64, max_value=1 << 14),
          owner=st.integers(min_value=1, max_value=15))
    def allocate(self, nbytes, owner):
        if self.space.free_bytes() < nbytes:
            return
        rng = self.space.allocate(nbytes, owner=owner)
        self.live[rng] = owner

    @rule()
    def free_last(self):
        # tail frees reclaim space; AddressSpace is a bump allocator
        if not self.live:
            return
        rng = max(self.live, key=lambda r: r.end)
        self.space.free(rng)
        del self.live[rng]

    @invariant()
    def allocations_are_in_normal_region(self):
        for rng in self.live:
            assert self.space.region_of(rng.start) is MemoryRegion.NORMAL
            assert self.space.region_of(rng.end - 1) is MemoryRegion.NORMAL

    @invariant()
    def allocations_never_overlap(self):
        spans = sorted((r.start, r.end) for r in self.live)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @invariant()
    def owners_are_isolated(self):
        for rng, owner in self.live.items():
            # the owner can read its own memory
            self.space.check(rng.start, World.NORMAL, AccessType.READ, tee_id=owner)
            # any other TEE id faults
            other = 1 if owner != 1 else 2
            try:
                self.space.check(rng.start, World.NORMAL, AccessType.READ, tee_id=other)
                assert False, "cross-TEE access did not fault"
            except MMUFault:
                pass

    @invariant()
    def secure_region_is_sealed(self):
        try:
            self.space.check(0, World.NORMAL, AccessType.READ, tee_id=1)
            assert False, "secure region readable from normal world"
        except MMUFault:
            pass


AddressSpaceMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestAddressSpaceStateful = AddressSpaceMachine.TestCase
