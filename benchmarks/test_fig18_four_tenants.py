"""Figure 18: four collocated IceClave instances.

Paper claim: performance drops by 21.4% on average, caused by compute
interference and up to 8.7% more misses in the shared cached mapping
table.
"""

import statistics

from conftest import print_header, run_once

from repro.platform import MultiTenantIceClave

QUADS = [
    ("tpcc", "tpch-q1", "filter", "wordcount"),
    ("tpcb", "tpch-q3", "aggregate", "tpch-q12"),
    ("tpcc", "tpcb", "tpch-q14", "arithmetic"),
]


def test_fig18_four_tenants(benchmark, profiles, config):
    def experiment():
        mt = MultiTenantIceClave(config)
        return {
            quad: mt.run([profiles[name] for name in quad]) for quad in QUADS
        }

    results = run_once(benchmark, experiment)

    print_header(
        "Figure 18: four collocated instances",
        "average 21.4% slowdown; up to 8.7% more mapping-cache misses",
    )
    all_slowdowns = []
    for quad, res in results.items():
        slow = [r.stats["slowdown"] - 1 for r in res]
        all_slowdowns.extend(slow)
        parts = " ".join(f"{n}:{s*100:+.0f}%" for n, s in zip(quad, slow))
        print(f"  {parts}")
    avg = statistics.mean(all_slowdowns)
    print(f"\n  average slowdown: +{avg*100:.1f}% (paper +21.4%)")

    assert 0.10 <= avg <= 0.35
    assert all(s >= 0 for s in all_slowdowns)
    # collocating four costs more than collocating two
    mt = MultiTenantIceClave(config)
    two = mt.run([profiles["tpcc"], profiles["tpch-q1"]])
    two_avg = statistics.mean(r.stats["slowdown"] - 1 for r in two)
    assert avg > two_avg
