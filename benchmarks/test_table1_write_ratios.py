"""Table 1: memory write ratios of the in-storage workloads.

Each workload executes for real; ratios are measured from its memory
access counts, then extrapolated to the paper's 32 GB dataset.
"""

from conftest import WORKLOAD_ORDER, print_header, run_once

PAPER = {
    "arithmetic": 2.02e-4,
    "aggregate": 2.08e-4,
    "filter": 1.71e-4,
    "tpch-q1": 6.40e-6,
    "tpch-q3": 3.96e-3,
    "tpch-q12": 2.99e-5,
    "tpch-q14": 3.94e-6,
    "tpch-q19": 9.92e-7,
    "tpcb": 5.19e-2,
    "tpcc": 9.05e-2,
    "wordcount": 4.61e-1,
}

DATASET = 32 << 30


def test_table1_write_ratios(benchmark, profiles):
    def experiment():
        return {
            name: profiles[name].scaled(DATASET).write_ratio
            for name in WORKLOAD_ORDER
        }

    measured = run_once(benchmark, experiment)

    print_header(
        "Table 1: in-storage workload write ratios",
        "write-intensive trio (tpcb/tpcc/wordcount) >> analytics queries",
    )
    print(f"{'workload':>12s} {'paper':>10s} {'measured':>10s}")
    for name in WORKLOAD_ORDER:
        print(f"{name:>12s} {PAPER[name]:10.2e} {measured[name]:10.2e}")

    # shape: the write-intensive group dominates, wordcount on top
    analytics_max = max(
        v for k, v in measured.items() if k not in ("tpcb", "tpcc", "wordcount")
    )
    assert measured["wordcount"] > measured["tpcc"] > measured["tpcb"] > analytics_max
    assert measured["wordcount"] > 0.3
    assert analytics_max < 0.05
