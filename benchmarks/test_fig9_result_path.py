"""Figure 9 step ⑧: result return over the NVMe interrupt path.

§4.6: "IceClave will initiate a DMA transfer request to the host using
NVMe interrupts, signaling the readiness of results." This benchmark
measures that path with the NVMe queue model and shows why in-storage
computing's result-only transfers are so cheap next to streaming the whole
dataset: GetResult moves kilobytes, the Host baseline moves gigabytes.
"""

from conftest import print_header, run_once

from repro.host.nvme import NvmeQueuePair
from repro.host.pcie import PcieLink
from repro.sim import Engine


def transfer_time(nbytes, queue_depth=8, device_latency=20e-6):
    engine = Engine()
    qp = NvmeQueuePair(engine, PcieLink(), queue_depth=queue_depth,
                       device_latency=device_latency)
    chunk = 1 << 20
    remaining = nbytes
    while remaining > 0:
        qp.submit("read", min(chunk, remaining))
        remaining -= chunk
    return qp.run(), qp


def test_fig9_result_path(benchmark, profiles):
    def experiment():
        out = {}
        for name in ("tpch-q1", "filter", "wordcount"):
            scaled = profiles[name].scaled(32 << 30)
            result_t, _ = transfer_time(max(4096, scaled.result_bytes))
            out[name] = (scaled.result_bytes, result_t)
        dataset_t, _ = transfer_time(1 << 30)  # per-GB cost of the host path
        out["per-GB-of-dataset"] = (1 << 30, dataset_t)
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Figure 9 step 8: NVMe result return vs dataset streaming",
        "GetResult moves only results; the host baseline streams everything",
    )
    print(f"{'transfer':>20s} {'bytes':>14s} {'time':>12s}")
    for name, (nbytes, seconds) in results.items():
        print(f"{name:>20s} {nbytes:>14,d} {seconds*1e3:11.3f}ms")

    # results return in well under a millisecond of NVMe time per command
    for name in ("tpch-q1", "filter", "wordcount"):
        nbytes, seconds = results[name]
        assert seconds < 0.05
    # streaming a single GB costs orders of magnitude more
    per_gb = results["per-GB-of-dataset"][1]
    assert per_gb > 100 * results["tpch-q1"][1]
