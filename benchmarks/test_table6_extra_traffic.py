"""Table 6: extra memory traffic from encryption and integrity verification.

Paper claim: averages of ~20.26% (encryption) and ~14.51% (verification),
with the write-intensive workloads far above the analytics queries
(wordcount 67.45%/43.81% vs TPC-H Q1 2.99%/2.22%).
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.core import IceClaveConfig
from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine

PAPER = {
    "arithmetic": (0.0305, 0.0227),
    "aggregate": (0.0306, 0.0226),
    "filter": (0.0304, 0.0226),
    "tpch-q1": (0.0299, 0.0222),
    "tpch-q3": (0.0562, 0.0450),
    "tpch-q12": (0.0511, 0.0378),
    "tpch-q14": (0.1028, 0.0539),
    "tpch-q19": (0.3620, 0.2475),
    "tpcb": (0.4692, 0.3668),
    "tpcc": (0.3909, 0.3172),
    "wordcount": (0.6745, 0.4381),
}


def replay(profile, sample=60000):
    mee = MemoryEncryptionEngine(config=IceClaveConfig(), scheme=EncryptionScheme.HYBRID)
    for page, line, is_write, readonly in profile.trace.events[:sample]:
        if is_write:
            mee.write(page, line, readonly=readonly)
        else:
            mee.read(page, line, readonly=readonly)
    return (
        mee.stats.encryption_extra_traffic(),
        mee.stats.verification_extra_traffic(),
    )


def test_table6_extra_traffic(benchmark, profiles):
    def experiment():
        return {name: replay(profiles[name]) for name in WORKLOAD_ORDER}

    measured = run_once(benchmark, experiment)

    print_header(
        "Table 6: extra memory traffic (encryption / verification)",
        "write-heavy workloads pay far more metadata traffic than scans",
    )
    print(f"{'workload':>12s} {'paper enc':>10s} {'meas enc':>10s} "
          f"{'paper ver':>10s} {'meas ver':>10s}")
    for name in WORKLOAD_ORDER:
        enc, ver = measured[name]
        penc, pver = PAPER[name]
        print(f"{name:>12s} {penc*100:9.2f}% {enc*100:9.2f}% {pver*100:9.2f}% {ver*100:9.2f}%")
    enc_avg = statistics.mean(m[0] for m in measured.values())
    ver_avg = statistics.mean(m[1] for m in measured.values())
    print(f"\n  averages: encryption {enc_avg*100:.1f}% (paper 20.3%), "
          f"verification {ver_avg*100:.1f}% (paper 14.5%)")

    # shape: write-heavy >> read-heavy, and scans stay in low single digits
    write_heavy = statistics.mean(sum(measured[n]) for n in ("tpcb", "tpcc", "wordcount"))
    read_heavy = statistics.mean(
        sum(measured[n]) for n in WORKLOAD_ORDER if n not in ("tpcb", "tpcc", "wordcount")
    )
    assert write_heavy > 4 * read_heavy
    assert sum(measured["tpch-q1"]) < 0.10
    assert sum(measured["wordcount"]) > 0.25
