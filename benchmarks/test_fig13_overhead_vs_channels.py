"""Figure 13: IceClave overhead vs ISC as channels scale.

Paper claim: up to 28% (8.6% on average) slower than insecure ISC, with
the overhead growing as more internal bandwidth makes the security work a
larger fraction of runtime — most visible on complicated queries (TPC-C).
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform

CHANNELS = (4, 8, 16, 32)


def test_fig13_overhead_vs_channels(benchmark, profiles, config):
    def experiment():
        out = {}
        for ch in CHANNELS:
            cfg = config.with_channels(ch)
            ice = make_platform("iceclave", cfg)
            isc = make_platform("isc", cfg)
            out[ch] = {
                name: ice.run(profiles[name]).overhead_over(isc.run(profiles[name]))
                for name in WORKLOAD_ORDER
            }
        return out

    overheads = run_once(benchmark, experiment)

    print_header(
        "Figure 13: overhead vs ISC across channel counts",
        "up to ~28%, 8.6% on average; grows with channels",
    )
    print(f"{'workload':>12s} " + " ".join(f"{ch:>6d}ch" for ch in CHANNELS))
    for name in WORKLOAD_ORDER:
        print(f"{name:>12s} " + " ".join(f"{overheads[ch][name]*100:+6.1f}%" for ch in CHANNELS))
    sweep_avg = statistics.mean(
        statistics.mean(overheads[ch].values()) for ch in CHANNELS
    )
    sweep_max = max(max(overheads[ch].values()) for ch in CHANNELS)
    print(f"\n  sweep average: +{sweep_avg*100:.1f}% (paper 8.6%), "
          f"max +{sweep_max*100:.1f}% (paper ~28%)")

    assert 0.04 <= sweep_avg <= 0.16
    # overhead never negative and grows with channel count on average
    avgs = [statistics.mean(overheads[ch].values()) for ch in CHANNELS]
    assert all(a >= 0 for a in avgs)
    assert avgs[-1] > avgs[0]
    # TPC-C's overhead grows with channels (the paper calls this out)
    assert overheads[32]["tpcc"] > overheads[8]["tpcc"]
