"""Table 3: computational SSD simulator configuration.

Verifies that the default configuration reproduces the paper's simulator
setup exactly, and benchmarks the event-driven device against its
analytical bandwidth bounds.
"""

import pytest
from conftest import print_header, run_once

from repro.flash import FlashGeometry, FlashTiming
from repro.platform.schemes import flash_read_throughput


def test_table3_configuration(benchmark, config):
    geometry = config.geometry()
    timing = config.flash_timing

    def experiment():
        return flash_read_throughput(config)

    throughput = run_once(benchmark, experiment)

    print_header(
        "Table 3: computational SSD simulator configuration",
        "1TB SSD: 8ch x 4chips x 4dies x 2planes x 2048blk x 512pg x 4KB",
    )
    rows = [
        ("SSD processor", f"{config.isc_core.name} @ {config.isc_core.frequency_hz/1e9:.1f} GHz"),
        ("SSD DRAM", f"{config.iceclave.dram_bytes >> 30} GB DDR3"),
        ("AES-128 delay", f"{config.iceclave.aes_delay*1e9:.0f} ns"),
        ("capacity", f"{geometry.capacity_bytes >> 40} TB"),
        ("channels", f"{geometry.channels}"),
        ("chips/channel", f"{geometry.chips_per_channel}"),
        ("dies/chip", f"{geometry.dies_per_chip}"),
        ("planes/die", f"{geometry.planes_per_die}"),
        ("blocks/plane", f"{geometry.blocks_per_plane}"),
        ("pages/block", f"{geometry.pages_per_block}"),
        ("page size", f"{geometry.page_bytes} B"),
        ("t_RD / t_WR", f"{timing.read_latency*1e6:.0f} / {timing.program_latency*1e6:.0f} us"),
        ("channel bandwidth", f"{timing.channel_bandwidth/(1<<20):.0f} MB/s"),
        ("measured internal read bw", f"{throughput/1e9:.2f} GB/s"),
    ]
    for label, value in rows:
        print(f"  {label:>26s}: {value}")

    # Table 3 exactness
    assert geometry == FlashGeometry()
    assert geometry.capacity_bytes == 1 << 40
    assert timing == FlashTiming()
    assert timing.read_latency == pytest.approx(50e-6)
    assert timing.program_latency == pytest.approx(300e-6)
    assert config.iceclave.aes_delay == pytest.approx(60e-9)
    assert config.iceclave.dram_bytes == 4 << 30
    # the event-driven device sustains most of the aggregate channel bandwidth
    aggregate = geometry.channels * timing.channel_bandwidth
    assert 0.7 * aggregate <= throughput <= aggregate
