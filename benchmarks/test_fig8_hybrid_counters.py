"""Figure 8: non-encryption vs split counters (SC-64) vs hybrid counters.

Paper claim: the hybrid-counter scheme improves performance by ~43% on
average over SC-64 for in-storage programs, approaching non-encryption.

This is the paper's memory-path design study: per §5, every memory access
triggers MAC/tree verification synchronously, so the comparison runs with
full latency enforcement (``mee_latency_exposure = 1``).
"""

import dataclasses
import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.core.mee import EncryptionScheme
from repro.platform import make_platform


def test_fig8_hybrid_counters(benchmark, profiles, config):
    enforced = dataclasses.replace(config, mee_latency_exposure=1.0)

    def experiment():
        out = {}
        for scheme in (EncryptionScheme.NONE, EncryptionScheme.SPLIT_COUNTER,
                       EncryptionScheme.HYBRID):
            platform = make_platform("iceclave", enforced.with_mee_scheme(scheme))
            out[scheme] = {
                name: platform.run(profiles[name]).total_time
                for name in WORKLOAD_ORDER
            }
        return out

    times = run_once(benchmark, experiment)

    print_header(
        "Figure 8: memory encryption schemes (normalized to non-encryption)",
        "hybrid counters ~43% faster than SC-64 on average",
    )
    print(f"{'workload':>12s} {'sc64':>7s} {'hybrid':>7s} {'gain':>7s}")
    gains = []
    for name in WORKLOAD_ORDER:
        none = times[EncryptionScheme.NONE][name]
        sc = times[EncryptionScheme.SPLIT_COUNTER][name] / none
        hy = times[EncryptionScheme.HYBRID][name] / none
        gain = sc / hy - 1.0
        gains.append(gain)
        print(f"{name:>12s} {sc:6.2f}x {hy:6.2f}x {gain*100:+6.0f}%")
    avg = statistics.mean(gains)
    print(f"\n  average hybrid improvement over SC-64: +{avg*100:.0f}% (paper ~+43%)")

    assert 0.20 <= avg <= 0.60
    for name in WORKLOAD_ORDER:
        none = times[EncryptionScheme.NONE][name]
        assert times[EncryptionScheme.HYBRID][name] <= times[EncryptionScheme.SPLIT_COUNTER][name]
        assert none <= times[EncryptionScheme.HYBRID][name]
    # read-intensive workloads gain the most (they ride the major-counter path)
    read_gain = statistics.mean(gains[:8])
    write_gain = statistics.mean(gains[8:])
    assert read_gain > write_gain
