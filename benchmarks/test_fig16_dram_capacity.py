"""Figure 16: sensitivity to SSD DRAM capacity (4 GB -> 2 GB).

Paper claim: ISC loses 12-44% with half the DRAM (working data no longer
fits and is re-fetched from flash); IceClave follows the same trend while
keeping its overhead over ISC minimal.
"""

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform

GIB = 1 << 30


def test_fig16_dram_capacity(benchmark, profiles, config):
    def experiment():
        out = {}
        for dram in (4 * GIB, 2 * GIB):
            cfg = config.with_dram(dram)
            isc = make_platform("isc", cfg)
            ice = make_platform("iceclave", cfg)
            out[dram] = {
                name: (isc.run(profiles[name]).total_time,
                       ice.run(profiles[name]).total_time)
                for name in WORKLOAD_ORDER
            }
        return out

    times = run_once(benchmark, experiment)

    print_header(
        "Figure 16: SSD DRAM capacity sweep",
        "ISC drops 12-44% at 2 GB; IceClave tracks ISC",
    )
    print(f"{'workload':>12s} {'isc drop':>9s} {'ice drop':>9s} {'ice-vs-isc@2GB':>15s}")
    drops = []
    for name in WORKLOAD_ORDER:
        isc4, ice4 = times[4 * GIB][name]
        isc2, ice2 = times[2 * GIB][name]
        isc_drop = isc2 / isc4 - 1
        ice_drop = ice2 / ice4 - 1
        drops.append(isc_drop)
        print(f"{name:>12s} {isc_drop*100:+8.1f}% {ice_drop*100:+8.1f}% "
              f"{(ice2/isc2-1)*100:+14.1f}%")
    print(f"\n  ISC drop range: {min(drops)*100:.0f}% .. {max(drops)*100:.0f}% (paper 12-44%)")

    assert 0.05 <= min(drops)
    assert max(drops) <= 0.60
    assert max(drops) >= 0.30  # the transactional workloads hurt badly
    # IceClave stays close to ISC at both capacities
    for name in WORKLOAD_ORDER:
        isc2, ice2 = times[2 * GIB][name]
        assert ice2 / isc2 - 1 < 0.30
