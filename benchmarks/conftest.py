"""Shared fixtures for the per-table/per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§6) and prints paper-vs-measured rows. Absolute times differ from the
authors' testbed (this is a behavioral simulator); the asserted properties
are the *shapes*: who wins, rough factors, and where crossovers fall.
"""

from __future__ import annotations

import pytest

from repro.platform import PlatformConfig
from repro.workloads import ALL_WORKLOADS, workload_by_name

WORKLOAD_ORDER = [
    "arithmetic",
    "aggregate",
    "filter",
    "tpch-q1",
    "tpch-q3",
    "tpch-q12",
    "tpch-q14",
    "tpch-q19",
    "tpcb",
    "tpcc",
    "wordcount",
]


@pytest.fixture(scope="session")
def profiles():
    """All eleven Table 4 workloads, executed once per session."""
    return {name: workload_by_name(name).run() for name in WORKLOAD_ORDER}


@pytest.fixture(scope="session")
def config():
    """The Table 3 configuration."""
    return PlatformConfig()


def print_header(title: str, paper_claim: str) -> None:
    print(f"\n{'='*72}\n{title}\n  paper: {paper_claim}\n{'='*72}")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
