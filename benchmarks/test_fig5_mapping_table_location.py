"""Figure 5: protected-region mapping table vs mapping table in secure world.

Paper claim: keeping the cached mapping table in the protected region
(read-only to the normal world) avoids per-translation world switches and
improves performance by 21.6% on average.
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform
from repro.platform.config import MAPPING_IN_SECURE


def test_fig5_mapping_table_location(benchmark, profiles, config):
    def experiment():
        protected = make_platform("iceclave", config)
        secure = make_platform(
            "iceclave", config.with_mapping_location(MAPPING_IN_SECURE)
        )
        return {
            name: (protected.run(profiles[name]), secure.run(profiles[name]))
            for name in WORKLOAD_ORDER
        }

    results = run_once(benchmark, experiment)

    print_header(
        "Figure 5: mapping table location (normalized to IceClave)",
        "secure-world mapping table is ~21.6% slower on average",
    )
    print(f"{'workload':>12s} {'protected':>10s} {'secure':>10s} {'relative':>9s}")
    improvements = []
    for name in WORKLOAD_ORDER:
        prot, sec = results[name]
        rel = sec.total_time / prot.total_time
        improvements.append(rel - 1.0)
        print(f"{name:>12s} {prot.total_time:9.1f}s {sec.total_time:9.1f}s {rel:8.2f}x")
    avg = statistics.mean(improvements)
    print(f"\n  average slowdown with secure-world table: +{avg*100:.1f}% (paper ~+21.6%)")

    assert 0.10 <= avg <= 0.45
    for name in WORKLOAD_ORDER:
        prot, sec = results[name]
        assert sec.total_time > prot.total_time  # protected region always wins
