"""§6.3 claim: only 0.17% of TEE address translations miss the cached
mapping table in the protected memory region."""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform


def test_mapping_cache_missrate(benchmark, profiles, config):
    def experiment():
        platform = make_platform("iceclave", config)
        return {
            name: platform.run(profiles[name]).stats["translation_miss_rate"]
            for name in WORKLOAD_ORDER
        }

    rates = run_once(benchmark, experiment)

    print_header(
        "Cached mapping table miss rate (protected region)",
        "0.17% of flash address translations miss",
    )
    for name in WORKLOAD_ORDER:
        print(f"  {name:>12s}: {rates[name]*100:.3f}%")
    avg = statistics.mean(rates.values())
    print(f"\n  average: {avg*100:.3f}% (paper 0.17%)")

    assert 0.0005 <= avg <= 0.005  # same order of magnitude as 0.17%


def test_context_switches_are_rare(benchmark, profiles, config):
    """The translation slow path (world switch) is infrequent (§6.3)."""
    def experiment():
        platform = make_platform("iceclave", config)
        result = platform.run(profiles["tpch-q1"])
        pages = profiles["tpch-q1"].scaled(config.dataset_bytes).input_bytes // 4096
        return result.stats["translation_misses"], pages

    misses, pages = run_once(benchmark, experiment)
    print(f"\n  translations: {pages:,}, secure-world round trips: {int(misses):,} "
          f"({misses/pages*100:.3f}%)")
    assert misses / pages < 0.01
