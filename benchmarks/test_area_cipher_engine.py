"""§5 area claim: the stream-cipher engine costs ~1.6% of controller area.

The paper runs CACTI 6.5 against an Intel DC P4500-class controller; this
benchmark reproduces the estimate from the CACTI-style density model.
"""

from conftest import print_header, run_once

from repro.area import CipherEngineArea
from repro.area.cacti import NODE_22NM, NODE_32NM, NODE_45NM


def test_area_cipher_engine(benchmark):
    def experiment():
        return {
            node.name: CipherEngineArea(node=node)
            for node in (NODE_45NM, NODE_32NM, NODE_22NM)
        }

    engines = run_once(benchmark, experiment)

    print_header(
        "Stream-cipher engine area (CACTI-style estimate)",
        "~1.6% of a DC P4500-class SSD controller",
    )
    print(f"{'node':>6s} {'engine mm2':>11s} {'controller %':>13s} {'pJ/page':>9s}")
    for name, engine in engines.items():
        print(f"{name:>6s} {engine.engine_mm2():10.3f} "
              f"{engine.overhead_fraction()*100:12.2f}% "
              f"{engine.energy_per_page_pj():8.0f}")

    reference = engines["32nm"]
    assert 0.008 <= reference.overhead_fraction() <= 0.025
    # denser nodes shrink the engine
    assert engines["22nm"].engine_mm2() < engines["32nm"].engine_mm2() < engines["45nm"].engine_mm2()
