"""Table 5: overhead sources of IceClave.

TEE create/delete and context-switch costs are the FPGA-measured constants
the simulator charges (they are configuration, reproduced exactly); the
memory encryption/verification latencies are *measured* from the MEE
micro-simulation and compared against the paper's averages.
"""

import pytest
from conftest import print_header, run_once

from repro.core import IceClaveConfig
from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine

PAPER = {
    "tee_create": 95e-6,
    "tee_delete": 58e-6,
    "context_switch": 3.8e-6,
    "memory_encryption": 102.6e-9,
    "memory_verification": 151.2e-9,
}


def test_table5_overhead_sources(benchmark, profiles):
    config = IceClaveConfig()

    def experiment():
        mee = MemoryEncryptionEngine(config=config, scheme=EncryptionScheme.HYBRID)
        # a representative mixed stream: streaming reads + working-set writes
        for name in ("tpch-q1", "tpcc", "wordcount"):
            for page, line, is_write, readonly in profiles[name].trace.events[:20000]:
                if is_write:
                    mee.write(page, line, readonly=readonly)
                else:
                    mee.read(page, line, readonly=readonly)
        return mee

    mee = run_once(benchmark, experiment)

    measured = {
        "tee_create": config.tee_create_time,
        "tee_delete": config.tee_delete_time,
        "context_switch": config.context_switch_time,
        "memory_encryption": mee.stats.mean_encryption_latency(),
        "memory_verification": mee.stats.mean_verification_latency(),
    }

    print_header(
        "Table 5: overhead sources",
        "create 95us, delete 58us, switch 3.8us, enc 102.6ns, verify 151.2ns",
    )
    print(f"{'source':>22s} {'paper':>12s} {'measured':>12s}")
    for key, value in PAPER.items():
        unit = "us" if value > 1e-6 else "ns"
        scale = 1e6 if unit == "us" else 1e9
        print(f"{key:>22s} {value*scale:10.1f}{unit} {measured[key]*scale:10.1f}{unit}")

    # lifecycle constants reproduce exactly; MEE latencies land in-band
    assert measured["tee_create"] == pytest.approx(PAPER["tee_create"])
    assert measured["tee_delete"] == pytest.approx(PAPER["tee_delete"])
    assert measured["context_switch"] == pytest.approx(PAPER["context_switch"])
    assert 40e-9 <= measured["memory_encryption"] <= 250e-9
    assert 20e-9 <= measured["memory_verification"] <= 300e-9
