"""Substrate benchmark: the SSD system under the standard trace shapes.

Not a paper table, but validates the SimpleSSD-substitute end to end:
latency and write-amplification behaviour under sequential, random, and
skewed workloads, with GC pauses visible in the tail.
"""

from conftest import print_header, run_once

from repro.flash.geometry import small_geometry
from repro.flash.traces import (
    TraceConfig,
    random_read,
    sequential_read,
    sequential_write,
    transaction_mix,
    zipf_write,
)
from repro.ftl.ssd_system import SsdSystem


def make_ssd():
    geometry = small_geometry(channels=4, chips_per_channel=2, dies_per_chip=1,
                              planes_per_die=2, blocks_per_plane=16,
                              pages_per_block=16)
    return SsdSystem(geometry=geometry)


def replay(ssd, trace):
    for op, lpa in trace:
        (ssd.write if op == "write" else ssd.read)(lpa)
    ssd.run_to_completion()


def test_ssd_substrate_trace_shapes(benchmark):
    def experiment():
        out = {}
        for name in ("sequential", "random-read", "zipf-write", "oltp"):
            ssd = make_ssd()
            pages = ssd.ftl.logical_pages // 2
            cfg = TraceConfig(logical_pages=pages, length=pages)
            replay(ssd, sequential_write(cfg))  # populate
            churn = TraceConfig(logical_pages=pages, length=pages * 2)
            if name == "sequential":
                replay(ssd, sequential_read(churn))
            elif name == "random-read":
                replay(ssd, random_read(churn))
            elif name == "zipf-write":
                replay(ssd, zipf_write(churn))
            else:
                replay(ssd, transaction_mix(churn, write_ratio=0.3))
            out[name] = (
                ssd.mean_read_latency(),
                ssd.mean_write_latency(),
                ssd.p99_style_max_write(),
                ssd.write_amplification(),
                ssd.ftl.gc.total_erases,
            )
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "SSD substrate: trace-shape characterization",
        "GC pauses in the write tail; WA grows with skewed overwrites",
    )
    print(f"{'trace':>15s} {'rd mean':>9s} {'wr mean':>9s} {'wr max':>9s} "
          f"{'WA':>6s} {'erases':>7s}")
    for name, (rd, wr, wmax, wa, erases) in results.items():
        print(f"{name:>15s} {rd*1e6:8.1f}u {wr*1e6:8.1f}u {wmax*1e6:8.1f}u "
              f"{wa:6.2f} {erases:7d}")

    # shape checks
    assert results["zipf-write"][3] >= results["sequential"][3]  # WA ordering
    assert results["zipf-write"][4] > 0  # churn forces GC
    for name, (rd, wr, wmax, wa, erases) in results.items():
        if wr:
            assert wmax >= wr  # tail at least the mean
