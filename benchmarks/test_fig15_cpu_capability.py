"""Figure 15: sensitivity to in-storage computing capability.

Paper claim: performance drops 13.7-33.4% as the ARM core's clock falls
from 1.6 GHz, and the out-of-order A72 beats the in-order A53 at equal
frequency.
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.cpu.models import CORTEX_A53, CORTEX_A72
from repro.platform import make_platform

SWEEP = [
    (CORTEX_A72, 1.6e9),
    (CORTEX_A72, 1.2e9),
    (CORTEX_A72, 0.8e9),
    (CORTEX_A53, 1.6e9),
    (CORTEX_A53, 1.2e9),
    (CORTEX_A53, 0.8e9),
]


def test_fig15_cpu_capability(benchmark, profiles, config):
    def experiment():
        out = {}
        for core, freq in SWEEP:
            cfg = config.with_isc_core(core.with_frequency(freq))
            platform = make_platform("iceclave", cfg)
            out[(core.name, freq)] = statistics.mean(
                platform.run(profiles[name]).total_time for name in WORKLOAD_ORDER
            )
        return out

    times = run_once(benchmark, experiment)

    baseline = times[("cortex-a72", 1.6e9)]
    print_header(
        "Figure 15: in-storage computing capability sweep",
        "performance drops 13.7-33.4% with weaker cores; OoO A72 > in-order A53",
    )
    print(f"{'core':>14s} {'avg time':>10s} {'rel perf':>9s}")
    for (name, freq), t in times.items():
        print(f"{name + '@' + str(freq/1e9) + 'GHz':>14s} {t:9.1f}s {baseline/t:8.3f}")

    # shape assertions
    assert times[("cortex-a72", 1.2e9)] > times[("cortex-a72", 1.6e9)]
    assert times[("cortex-a72", 0.8e9)] > times[("cortex-a72", 1.2e9)]
    assert times[("cortex-a53", 1.6e9)] > times[("cortex-a72", 1.6e9)]
    worst = baseline / times[("cortex-a53", 0.8e9)]
    assert 0.55 <= worst <= 0.90  # paper band: up to -33.4%
    mild = baseline / times[("cortex-a72", 1.2e9)]
    assert mild >= 0.85
