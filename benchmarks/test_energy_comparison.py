"""Energy comparison across the four schemes (§1's efficiency motivation).

Not a table in the paper, but backs its claims that (a) in-storage
computing saves the energy of hauling data over PCIe and burning host
cores, and (b) IceClave's cipher/MEE energy overhead is minimal.
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform
from repro.platform.energy import EnergyModel

SCHEMES = ("host", "host+sgx", "isc", "iceclave")


def test_energy_comparison(benchmark, profiles, config):
    def experiment():
        model = EnergyModel(config)
        platforms = {s: make_platform(s, config) for s in SCHEMES}
        out = {}
        for name in WORKLOAD_ORDER:
            out[name] = {
                s: model.total(profiles[name], platforms[s].run(profiles[name]))
                for s in SCHEMES
            }
            out[name]["cipher_fraction"] = model.cipher_overhead_fraction(
                profiles[name], platforms["iceclave"].run(profiles[name])
            )
        return out

    energy = run_once(benchmark, experiment)

    print_header(
        "Energy per run (joules)",
        "ISC/IceClave avoid PCIe + host-core energy; cipher overhead minimal",
    )
    print(f"{'workload':>12s} " + " ".join(f"{s:>10s}" for s in SCHEMES)
          + f" {'cipher %':>9s}")
    for name in WORKLOAD_ORDER:
        row = " ".join(f"{energy[name][s]:9.1f}J" for s in SCHEMES)
        print(f"{name:>12s} {row} {energy[name]['cipher_fraction']*100:8.2f}%")

    savings = [energy[n]["host"] / energy[n]["iceclave"] for n in WORKLOAD_ORDER]
    print(f"\n  IceClave saves {statistics.mean(savings):.1f}x energy vs Host on average")

    for name in WORKLOAD_ORDER:
        assert energy[name]["iceclave"] < energy[name]["host"]
        assert energy[name]["host+sgx"] >= energy[name]["host"]
        assert energy[name]["iceclave"] >= energy[name]["isc"]
        assert energy[name]["cipher_fraction"] < 0.05
