"""Figure 11: Host vs Host+SGX vs ISC vs IceClave, with breakdowns.

Headline claims: IceClave outperforms Host by 2.31x and Host+SGX by 2.38x
on average, while adding only 7.6% over insecure ISC; Host+SGX pays ~103%
extra computing time.
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform

SCHEMES = ("host", "host+sgx", "isc", "iceclave")


def test_fig11_scheme_comparison(benchmark, profiles, config):
    def experiment():
        platforms = {s: make_platform(s, config) for s in SCHEMES}
        return {
            name: {s: platforms[s].run(profiles[name]) for s in SCHEMES}
            for name in WORKLOAD_ORDER
        }

    results = run_once(benchmark, experiment)

    print_header(
        "Figure 11: normalized performance of the four schemes",
        "IceClave 2.31x over Host, 2.38x over Host+SGX, +7.6% over ISC",
    )
    print(f"{'workload':>12s} {'host':>8s} {'h+sgx':>8s} {'isc':>8s} {'iceclave':>9s} "
          f"{'ice/host':>9s} {'vs isc':>8s}")
    speedups, sgx_speedups, overheads, sgx_inflations = [], [], [], []
    for name in WORKLOAD_ORDER:
        r = results[name]
        speedup = r["iceclave"].speedup_over(r["host"])
        overhead = r["iceclave"].overhead_over(r["isc"])
        speedups.append(speedup)
        sgx_speedups.append(r["iceclave"].speedup_over(r["host+sgx"]))
        overheads.append(overhead)
        sgx_inflations.append(r["host+sgx"].stats["sgx_compute_inflation"])
        print(f"{name:>12s} {r['host'].total_time:7.1f}s {r['host+sgx'].total_time:7.1f}s "
              f"{r['isc'].total_time:7.1f}s {r['iceclave'].total_time:8.1f}s "
              f"{speedup:8.2f}x {overhead*100:+7.1f}%")
    avg_speedup = statistics.mean(speedups)
    avg_sgx = statistics.mean(sgx_speedups)
    avg_overhead = statistics.mean(overheads)
    print(f"\n  average ice/host  = {avg_speedup:.2f}x (paper 2.31x)")
    print(f"  average ice/h+sgx = {avg_sgx:.2f}x (paper 2.38x)")
    print(f"  average vs isc    = +{avg_overhead*100:.1f}% (paper +7.6%)")
    print(f"  SGX compute inflation = {statistics.mean(sgx_inflations):.2f}x (paper ~2.03x)")

    assert 1.9 <= avg_speedup <= 2.8
    assert avg_sgx >= avg_speedup  # SGX is never better than plain host
    assert 0.03 <= avg_overhead <= 0.12
    for name in WORKLOAD_ORDER:
        r = results[name]
        assert r["iceclave"].total_time >= r["isc"].total_time  # security is not free
        assert r["host+sgx"].total_time >= r["host"].total_time
