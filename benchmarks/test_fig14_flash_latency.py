"""Figure 14: IceClave vs Host across flash read latencies (10-110 us).

Paper claim: IceClave keeps a 1.8-3.2x advantage from ultra-low-latency
NVMe (10 us) to commodity TLC (110 us); compute-hungry workloads (TPC-B/C,
Q19) benefit least at ultra-low latency because host CPUs are stronger.
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform

LATENCIES_US = (10, 30, 50, 70, 90, 110)


def test_fig14_flash_latency(benchmark, profiles, config):
    def experiment():
        out = {}
        for lat in LATENCIES_US:
            cfg = config.with_flash_read_latency(lat * 1e-6)
            ice = make_platform("iceclave", cfg)
            host = make_platform("host", cfg)
            out[lat] = {
                name: ice.run(profiles[name]).speedup_over(host.run(profiles[name]))
                for name in WORKLOAD_ORDER
            }
        return out

    speedups = run_once(benchmark, experiment)

    print_header(
        "Figure 14: speedup over Host vs flash read latency",
        "1.8-3.2x across 10-110us devices",
    )
    print(f"{'workload':>12s} " + " ".join(f"{lat:>5d}us" for lat in LATENCIES_US))
    for name in WORKLOAD_ORDER:
        print(f"{name:>12s} " + " ".join(f"{speedups[lat][name]:6.2f}" for lat in LATENCIES_US))
    for lat in (10, 110):
        vals = list(speedups[lat].values())
        print(f"  {lat:3d}us: avg={statistics.mean(vals):.2f}x "
              f"range {min(vals):.2f}-{max(vals):.2f}x")

    # shape: slower flash narrows the advantage, but IceClave still wins
    avg_fast = statistics.mean(speedups[10].values())
    avg_slow = statistics.mean(speedups[110].values())
    assert avg_fast > avg_slow
    assert avg_slow > 1.0
    assert 1.5 <= avg_fast <= 3.5
