"""Figure 12: IceClave speedup over Host as flash channels scale 4 -> 32.

Paper claim: internal bandwidth grows linearly with channels while the
host stays PCIe-capped, so IceClave's speedup scales to 1.7-5.0x; compute-
heavy workloads (TPC-B/C, wordcount) saturate earlier (1.2-1.8x) than the
analytics queries (1.9-6.2x).
"""

import statistics

from conftest import WORKLOAD_ORDER, print_header, run_once

from repro.platform import make_platform

CHANNELS = (4, 8, 16, 32)


def test_fig12_channel_scaling(benchmark, profiles, config):
    def experiment():
        out = {}
        for ch in CHANNELS:
            cfg = config.with_channels(ch)
            ice = make_platform("iceclave", cfg)
            host = make_platform("host", cfg)
            out[ch] = {
                name: ice.run(profiles[name]).speedup_over(host.run(profiles[name]))
                for name in WORKLOAD_ORDER
            }
        return out

    speedups = run_once(benchmark, experiment)

    print_header(
        "Figure 12: speedup over Host vs channel count",
        "scales with internal bandwidth; 1.7-5.0x overall",
    )
    print(f"{'workload':>12s} " + " ".join(f"{ch:>6d}ch" for ch in CHANNELS))
    for name in WORKLOAD_ORDER:
        print(f"{name:>12s} " + " ".join(f"{speedups[ch][name]:7.2f}" for ch in CHANNELS))
    for ch in CHANNELS:
        vals = list(speedups[ch].values())
        print(f"  {ch:2d} channels: avg={statistics.mean(vals):.2f}x "
              f"range {min(vals):.2f}-{max(vals):.2f}x")

    # shape: average speedup strictly grows with channels
    avgs = [statistics.mean(speedups[ch].values()) for ch in CHANNELS]
    assert avgs == sorted(avgs)
    assert avgs[-1] / avgs[0] > 2.0
    # analytics queries scale harder than the write-heavy trio
    analytics_scale = speedups[32]["filter"] / speedups[4]["filter"]
    assert analytics_scale > 1.5
    for name in ("tpcb", "tpcc", "wordcount"):
        assert speedups[32][name] / speedups[4][name] < analytics_scale
