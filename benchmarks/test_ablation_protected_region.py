"""Ablation: protected-region (cached mapping table) capacity.

The protected region hosts the DFTL-style mapping cache; this sweep shows
the translation miss rate and world-switch count as the region shrinks —
why IceClave reserves tens of MB for it.
"""

import dataclasses

from conftest import print_header, run_once

from repro.core.config import MIB, IceClaveConfig
from repro.platform import make_platform

SIZES_MIB = (1, 4, 16, 64)


def test_ablation_protected_region(benchmark, profiles, config):
    def experiment():
        out = {}
        for size in SIZES_MIB:
            iceclave_cfg = dataclasses.replace(
                config.iceclave, protected_region_bytes=size * MIB
            )
            cfg = dataclasses.replace(config, iceclave=iceclave_cfg)
            platform = make_platform("iceclave", cfg)
            result = platform.run(profiles["tpch-q1"])
            out[size] = (
                result.stats["translation_miss_rate"],
                result.stats["translation_misses"],
                result.total_time,
            )
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Ablation: protected region capacity (mapping cache)",
        "sequential scans miss once per translation page regardless of size;"
        " capacity matters under multi-tenancy",
    )
    print(f"{'size':>7s} {'miss rate':>10s} {'world switches':>15s} {'total':>8s}")
    for size in SIZES_MIB:
        rate, misses, total = results[size]
        print(f"{size:5d}MB {rate*100:9.3f}% {int(misses):15,d} {total:7.2f}s")

    # cold misses dominate a one-pass scan: miss rate stays ~1/512
    rates = [results[size][0] for size in SIZES_MIB]
    assert max(rates) - min(rates) < 0.01
    # and total time is insensitive for single-tenant streaming
    totals = [results[size][2] for size in SIZES_MIB]
    assert max(totals) / min(totals) < 1.10
