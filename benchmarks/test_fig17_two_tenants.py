"""Figure 17: two collocated IceClave instances.

Paper claim: collocating the TPC-C instance with each other workload
degrades performance by 6.1-15.7%, driven by compute interference and
extra mapping-cache misses in the shared protected region.
"""

import statistics

from conftest import print_header, run_once

from repro.platform import MultiTenantIceClave

PARTNERS = ("arithmetic", "aggregate", "filter", "tpch-q1", "tpch-q3",
            "tpch-q12", "tpch-q14", "tpch-q19", "tpcb", "wordcount")


def test_fig17_two_tenants(benchmark, profiles, config):
    def experiment():
        mt = MultiTenantIceClave(config)
        out = {}
        for partner in PARTNERS:
            out[partner] = mt.run([profiles["tpcc"], profiles[partner]])
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Figure 17: TPC-C collocated with each workload (two tenants)",
        "6.1-15.7% degradation",
    )
    print(f"{'pair':>22s} {'tpcc':>8s} {'partner':>8s}")
    all_slowdowns = []
    for partner, (tpcc_res, partner_res) in results.items():
        s1 = tpcc_res.stats["slowdown"] - 1
        s2 = partner_res.stats["slowdown"] - 1
        all_slowdowns.extend([s1, s2])
        print(f"{'tpcc + ' + partner:>22s} {s1*100:+7.1f}% {s2*100:+7.1f}%")
    print(f"\n  range: {min(all_slowdowns)*100:.1f}% .. {max(all_slowdowns)*100:.1f}% "
          f"(paper 6.1-15.7%)")

    assert all(s >= 0 for s in all_slowdowns)
    assert statistics.mean(all_slowdowns) <= 0.20
    assert max(all_slowdowns) <= 0.30
