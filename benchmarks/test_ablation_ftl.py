"""Ablation: FTL policies — GC watermark and wear-leveling threshold.

IceClave protects the FTL but does not change its policies; this ablation
characterizes the substrate itself: write amplification vs GC watermark,
and wear uniformity vs leveling threshold under a skewed write workload.
"""

from conftest import print_header, run_once

from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl


def churn(ftl, writes, hot_lpas=8):
    for i in range(writes):
        ftl.write(i % hot_lpas)


def test_ablation_gc_watermark(benchmark):
    geometry = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                              blocks_per_plane=16, pages_per_block=16)

    def experiment():
        out = {}
        for watermark in (1, 2, 4, 8):
            ftl = Ftl(geometry, chip=FlashChip(geometry), gc_watermark=watermark)
            churn(ftl, geometry.total_pages * 4)
            out[watermark] = (
                ftl.gc.write_amplification(ftl.stats.host_writes),
                ftl.gc.total_erases,
            )
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Ablation: GC free-block watermark",
        "earlier GC (higher watermark) trades write amplification for headroom",
    )
    print(f"{'watermark':>10s} {'write amp':>10s} {'erases':>8s}")
    for wm, (wa, erases) in results.items():
        print(f"{wm:>10d} {wa:>9.3f} {erases:>8d}")

    for wa, _ in results.values():
        assert 1.0 <= wa < 3.0  # hot/small working sets keep WA low


def test_ablation_wear_threshold(benchmark):
    geometry = small_geometry(channels=2, chips_per_channel=1, dies_per_chip=1,
                              blocks_per_plane=16, pages_per_block=16)

    def experiment():
        out = {}
        for threshold in (2, 8, 32, 128):
            ftl = Ftl(geometry, chip=FlashChip(geometry), wear_threshold=threshold)
            churn(ftl, geometry.total_pages * 6)
            lo, hi, mean = ftl.wear_leveler.wear_stats()
            out[threshold] = (hi - lo, ftl.wear_leveler.total_migrations, mean)
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Ablation: wear-leveling threshold",
        "tighter thresholds level harder (more migrations, flatter wear)",
    )
    print(f"{'threshold':>10s} {'wear gap':>9s} {'migrations':>11s} {'mean wear':>10s}")
    for th, (gap, migrations, mean) in results.items():
        print(f"{th:>10d} {gap:>9d} {migrations:>11d} {mean:>10.1f}")

    gaps = [results[th][0] for th in (2, 8, 32, 128)]
    migrations = [results[th][1] for th in (2, 8, 32, 128)]
    # tighter thresholds never migrate less and never end with a larger gap
    assert migrations[0] >= migrations[-1]
    assert gaps[0] <= gaps[-1] + 2
