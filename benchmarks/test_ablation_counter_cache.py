"""Ablation: counter cache size (§5 fixes it at 128 KB).

Sweeps the on-chip counter cache and shows how the MEE's extra traffic
and per-access overhead respond — the design-choice justification for the
128 KB the paper picks.
"""

import dataclasses

from conftest import print_header, run_once

from repro.core import IceClaveConfig
from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine

KIB = 1024
SIZES = (16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB)


def replay(profile, cache_bytes, sample=40000):
    config = dataclasses.replace(IceClaveConfig(), counter_cache_bytes=cache_bytes)
    mee = MemoryEncryptionEngine(config=config, scheme=EncryptionScheme.HYBRID)
    for page, line, is_write, readonly in profile.trace.events[:sample]:
        if is_write:
            mee.write(page, line, readonly=readonly)
        else:
            mee.read(page, line, readonly=readonly)
    return mee


def test_ablation_counter_cache_size(benchmark, profiles):
    def experiment():
        out = {}
        for size in SIZES:
            mees = {
                name: replay(profiles[name], size)
                for name in ("tpch-q1", "tpcc", "wordcount")
            }
            out[size] = {
                name: (
                    mee.cache.hit_rate,
                    mee.stats.encryption_extra_traffic()
                    + mee.stats.verification_extra_traffic(),
                )
                for name, mee in mees.items()
            }
        return out

    results = run_once(benchmark, experiment)

    print_header(
        "Ablation: counter cache size",
        "the paper fixes 128 KB; larger caches cut metadata traffic",
    )
    print(f"{'size':>8s} " + " ".join(f"{n + ' (hit/extra)':>24s}" for n in
                                      ("tpch-q1", "tpcc", "wordcount")))
    for size in SIZES:
        row = " ".join(
            f"{hr*100:9.1f}% / {extra*100:8.1f}%"
            for hr, extra in results[size].values()
        )
        print(f"{size//KIB:6d}KB {row}")

    # more cache never hurts, and the write-heavy workloads benefit most
    for name in ("tpcc", "wordcount"):
        extras = [results[size][name][1] for size in SIZES]
        assert extras[-1] <= extras[0]
    # the default (128 KB) already captures most of the benefit for scans
    q1_small = results[16 * KIB]["tpch-q1"][1]
    q1_default = results[128 * KIB]["tpch-q1"][1]
    q1_huge = results[512 * KIB]["tpch-q1"][1]
    assert q1_default - q1_huge <= max(q1_small - q1_default, 1e-4)
