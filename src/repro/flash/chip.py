"""Functional flash chip model: page states, program/erase rules, wear.

Enforces the physical constraints §2.1 describes: pages are written
out-of-place (a programmed page cannot be reprogrammed until its whole block
is erased), programming within a block must be sequential, and erases happen
at block granularity and age the block.

Each programmed page can carry out-of-band (OOB) metadata — the spare-area
bytes real NAND writes atomically with the page. The FTL stamps the owning
LPA, a monotonic write sequence number, and the TEE owner there, which is
what makes the mapping table rebuildable after power loss: the spare area
survives a power cut even though every DRAM-resident FTL structure does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.flash.geometry import FlashGeometry


class PageState(Enum):
    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


class FlashProgramError(Exception):
    """Raised when a program violates NAND constraints."""


class DieFailureError(Exception):
    """An operation touched a die that has failed wholesale."""

    def __init__(self, die: int, ppa: Optional[int] = None) -> None:
        super().__init__(f"die {die} has failed" + (f" (PPA {ppa})" if ppa is not None else ""))
        self.die = die
        self.ppa = ppa


@dataclass(frozen=True)
class PageOob:
    """Spare-area metadata programmed atomically with a page."""

    lpa: int
    seq: int  # monotonic write sequence number (newest copy wins)
    owner: int = 0  # TEE ID bits mirrored from the mapping entry


class FlashChip:
    """State for every block/page of the whole flash array.

    Despite the name this tracks the full array (all chips); the per-chip
    split only matters for timing, which :class:`repro.flash.ssd.FlashDevice`
    handles via die resources. Page payloads are stored only when
    ``store_data`` is True (functional mode); timing-only simulations skip
    the byte storage to stay fast.
    """

    def __init__(self, geometry: FlashGeometry, store_data: bool = False) -> None:
        self.geometry = geometry
        self.store_data = store_data
        # page states as a flat list indexed by PPA; block wear by global block
        self._page_state: Dict[int, PageState] = {}
        self._write_cursor: Dict[int, int] = {}  # global block -> next page index
        self.block_wear: Dict[int, int] = {}
        self._data: Dict[int, bytes] = {}
        self._oob: Dict[int, PageOob] = {}
        self._oob_seq = 0
        self.failed_dies: Set[int] = set()
        self.reads = 0
        self.programs = 0
        self.erases = 0

    # -- state queries -------------------------------------------------------

    def page_state(self, ppa: int) -> PageState:
        return self._page_state.get(ppa, PageState.FREE)

    def oob_of(self, ppa: int) -> Optional[PageOob]:
        """Spare-area metadata of a page (survives power loss, not erase)."""
        return self._oob.get(ppa)

    def write_cursor(self, block: int) -> int:
        """Next programmable page index of a block (0 = pristine/erased)."""
        return self._write_cursor.get(block, 0)

    # -- die failures ---------------------------------------------------------

    def die_of_ppa(self, ppa: int) -> int:
        return self.geometry.die_index(ppa)

    def die_of_block(self, block: int) -> int:
        plane = block // self.geometry.blocks_per_plane
        return plane // self.geometry.planes_per_die

    def fail_die(self, die: int) -> None:
        """Mark a whole die failed: every access to it raises from now on."""
        if not 0 <= die < self.geometry.total_dies:
            raise ValueError(f"die {die} out of range")
        self.failed_dies.add(die)

    def die_failed(self, ppa: int) -> bool:
        return bool(self.failed_dies) and self.die_of_ppa(ppa) in self.failed_dies

    def block_on_failed_die(self, block: int) -> bool:
        return bool(self.failed_dies) and self.die_of_block(block) in self.failed_dies

    def _check_die(self, ppa: int) -> None:
        if self.failed_dies:
            die = self.die_of_ppa(ppa)
            if die in self.failed_dies:
                raise DieFailureError(die, ppa)

    def wear_of(self, block: int) -> int:
        return self.block_wear.get(block, 0)

    def valid_pages_in_block(self, block: int) -> int:
        base = self._block_base(block)
        return sum(
            1
            for page in range(self.geometry.pages_per_block)
            if self.page_state(self._ppa_in_block(base, page)) is PageState.VALID
        )

    def _block_base(self, block: int) -> int:
        """First PPA of a global block (page index 0)."""
        plane = block // self.geometry.blocks_per_plane
        block_in_plane = block % self.geometry.blocks_per_plane
        die = plane // self.geometry.planes_per_die
        plane_in_die = plane % self.geometry.planes_per_die
        chan_chip = die // self.geometry.dies_per_chip
        die_in_chip = die % self.geometry.dies_per_chip
        channel = chan_chip // self.geometry.chips_per_channel
        chip = chan_chip % self.geometry.chips_per_channel
        from repro.flash.geometry import PhysicalAddress

        return self.geometry.compose(
            PhysicalAddress(channel, chip, die_in_chip, plane_in_die, block_in_plane, 0)
        )

    def _ppa_in_block(self, base_ppa: int, page: int) -> int:
        # consecutive pages in a block are strided by the plane interleave
        stride = (
            self.geometry.channels
            * self.geometry.chips_per_channel
            * self.geometry.dies_per_chip
            * self.geometry.planes_per_die
        )
        return base_ppa + page * stride

    def pages_of_block(self, block: int) -> List[int]:
        base = self._block_base(block)
        return [
            self._ppa_in_block(base, page)
            for page in range(self.geometry.pages_per_block)
        ]

    # -- operations ------------------------------------------------------------

    def read(self, ppa: int) -> Optional[bytes]:
        """Read a page; returns stored bytes in functional mode, else None."""
        self._check_die(ppa)
        if self.page_state(ppa) is not PageState.VALID:
            raise FlashProgramError(f"read of non-valid page {ppa}")
        self.reads += 1
        return self._data.get(ppa)

    def program(
        self,
        ppa: int,
        data: Optional[bytes] = None,
        lpa: Optional[int] = None,
        owner: int = 0,
    ) -> None:
        """Program a free page; enforces sequential-in-block programming.

        When ``lpa`` is given the page's OOB area is stamped with the LPA,
        the TEE ``owner`` and a chip-wide monotonic sequence number; recovery
        relies on these to rebuild the mapping after power loss.
        """
        self._check_die(ppa)
        state = self.page_state(ppa)
        if state is not PageState.FREE:
            raise FlashProgramError(
                f"page {ppa} is {state.value}; NAND pages cannot be reprogrammed"
            )
        block = self.geometry.block_of(ppa)
        page_index = self.geometry.decompose(ppa).page
        cursor = self._write_cursor.get(block, 0)
        if page_index != cursor:
            raise FlashProgramError(
                f"block {block}: page {page_index} programmed out of order "
                f"(expected {cursor})"
            )
        self._write_cursor[block] = cursor + 1
        self._page_state[ppa] = PageState.VALID
        self.programs += 1
        if lpa is not None:
            self._oob_seq += 1
            self._oob[ppa] = PageOob(lpa=lpa, seq=self._oob_seq, owner=owner)
        if self.store_data:
            if data is None:
                raise ValueError("functional mode requires page data")
            if len(data) > self.geometry.page_bytes:
                raise ValueError("data larger than a flash page")
            self._data[ppa] = data

    def invalidate(self, ppa: int) -> None:
        """Mark a page's contents obsolete (out-of-place overwrite)."""
        if self.page_state(ppa) is not PageState.VALID:
            raise FlashProgramError(f"invalidate of non-valid page {ppa}")
        self._page_state[ppa] = PageState.INVALID
        self._data.pop(ppa, None)

    def erase(self, block: int) -> None:
        """Erase a whole block: all pages become FREE, wear increments."""
        if not 0 <= block < self.geometry.total_blocks:
            raise ValueError(f"block {block} out of range")
        if self.block_on_failed_die(block):
            raise DieFailureError(self.die_of_block(block))
        for ppa in self.pages_of_block(block):
            self._page_state.pop(ppa, None)
            self._data.pop(ppa, None)
            self._oob.pop(ppa, None)
        self._write_cursor[block] = 0
        self.block_wear[block] = self.block_wear.get(block, 0) + 1
        self.erases += 1

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Primitive state tree for :mod:`repro.recovery` snapshots.

        Geometry and ``store_data`` are constructor configuration, not state;
        everything mutable is captured, with dicts as insertion-ordered item
        lists and the frozen :class:`PageOob` records as plain tuples.
        """
        return {
            "page_state": [(ppa, s.value) for ppa, s in self._page_state.items()],
            "write_cursor": [(b, c) for b, c in self._write_cursor.items()],
            "block_wear": [(b, w) for b, w in self.block_wear.items()],
            "data": [(ppa, d) for ppa, d in self._data.items()],
            "oob": [
                (ppa, (o.lpa, o.seq, o.owner)) for ppa, o in self._oob.items()
            ],
            "oob_seq": self._oob_seq,
            "failed_dies": sorted(self.failed_dies),
            "reads": self.reads,
            "programs": self.programs,
            "erases": self.erases,
        }

    def restore_state(self, state: dict) -> None:
        self._page_state = {ppa: PageState(s) for ppa, s in state["page_state"]}
        self._write_cursor = {b: c for b, c in state["write_cursor"]}
        self.block_wear = {b: w for b, w in state["block_wear"]}
        self._data = {ppa: d for ppa, d in state["data"]}
        self._oob = {
            ppa: PageOob(lpa=lpa, seq=seq, owner=owner)
            for ppa, (lpa, seq, owner) in state["oob"]
        }
        self._oob_seq = state["oob_seq"]
        self.failed_dies = set(state["failed_dies"])
        self.reads = state["reads"]
        self.programs = state["programs"]
        self.erases = state["erases"]
