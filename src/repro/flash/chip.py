"""Functional flash chip model: page states, program/erase rules, wear.

Enforces the physical constraints §2.1 describes: pages are written
out-of-place (a programmed page cannot be reprogrammed until its whole block
is erased), programming within a block must be sequential, and erases happen
at block granularity and age the block.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional

from repro.flash.geometry import FlashGeometry


class PageState(Enum):
    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


class FlashProgramError(Exception):
    """Raised when a program violates NAND constraints."""


class FlashChip:
    """State for every block/page of the whole flash array.

    Despite the name this tracks the full array (all chips); the per-chip
    split only matters for timing, which :class:`repro.flash.ssd.FlashDevice`
    handles via die resources. Page payloads are stored only when
    ``store_data`` is True (functional mode); timing-only simulations skip
    the byte storage to stay fast.
    """

    def __init__(self, geometry: FlashGeometry, store_data: bool = False) -> None:
        self.geometry = geometry
        self.store_data = store_data
        # page states as a flat list indexed by PPA; block wear by global block
        self._page_state: Dict[int, PageState] = {}
        self._write_cursor: Dict[int, int] = {}  # global block -> next page index
        self.block_wear: Dict[int, int] = {}
        self._data: Dict[int, bytes] = {}
        self.reads = 0
        self.programs = 0
        self.erases = 0

    # -- state queries -------------------------------------------------------

    def page_state(self, ppa: int) -> PageState:
        return self._page_state.get(ppa, PageState.FREE)

    def wear_of(self, block: int) -> int:
        return self.block_wear.get(block, 0)

    def valid_pages_in_block(self, block: int) -> int:
        base = self._block_base(block)
        return sum(
            1
            for page in range(self.geometry.pages_per_block)
            if self.page_state(self._ppa_in_block(base, page)) is PageState.VALID
        )

    def _block_base(self, block: int) -> int:
        """First PPA of a global block (page index 0)."""
        plane = block // self.geometry.blocks_per_plane
        block_in_plane = block % self.geometry.blocks_per_plane
        die = plane // self.geometry.planes_per_die
        plane_in_die = plane % self.geometry.planes_per_die
        chan_chip = die // self.geometry.dies_per_chip
        die_in_chip = die % self.geometry.dies_per_chip
        channel = chan_chip // self.geometry.chips_per_channel
        chip = chan_chip % self.geometry.chips_per_channel
        from repro.flash.geometry import PhysicalAddress

        return self.geometry.compose(
            PhysicalAddress(channel, chip, die_in_chip, plane_in_die, block_in_plane, 0)
        )

    def _ppa_in_block(self, base_ppa: int, page: int) -> int:
        # consecutive pages in a block are strided by the plane interleave
        stride = (
            self.geometry.channels
            * self.geometry.chips_per_channel
            * self.geometry.dies_per_chip
            * self.geometry.planes_per_die
        )
        return base_ppa + page * stride

    def pages_of_block(self, block: int) -> List[int]:
        base = self._block_base(block)
        return [
            self._ppa_in_block(base, page)
            for page in range(self.geometry.pages_per_block)
        ]

    # -- operations ------------------------------------------------------------

    def read(self, ppa: int) -> Optional[bytes]:
        """Read a page; returns stored bytes in functional mode, else None."""
        if self.page_state(ppa) is not PageState.VALID:
            raise FlashProgramError(f"read of non-valid page {ppa}")
        self.reads += 1
        return self._data.get(ppa)

    def program(self, ppa: int, data: Optional[bytes] = None) -> None:
        """Program a free page; enforces sequential-in-block programming."""
        state = self.page_state(ppa)
        if state is not PageState.FREE:
            raise FlashProgramError(
                f"page {ppa} is {state.value}; NAND pages cannot be reprogrammed"
            )
        block = self.geometry.block_of(ppa)
        page_index = self.geometry.decompose(ppa).page
        cursor = self._write_cursor.get(block, 0)
        if page_index != cursor:
            raise FlashProgramError(
                f"block {block}: page {page_index} programmed out of order "
                f"(expected {cursor})"
            )
        self._write_cursor[block] = cursor + 1
        self._page_state[ppa] = PageState.VALID
        self.programs += 1
        if self.store_data:
            if data is None:
                raise ValueError("functional mode requires page data")
            if len(data) > self.geometry.page_bytes:
                raise ValueError("data larger than a flash page")
            self._data[ppa] = data

    def invalidate(self, ppa: int) -> None:
        """Mark a page's contents obsolete (out-of-place overwrite)."""
        if self.page_state(ppa) is not PageState.VALID:
            raise FlashProgramError(f"invalidate of non-valid page {ppa}")
        self._page_state[ppa] = PageState.INVALID
        self._data.pop(ppa, None)

    def erase(self, block: int) -> None:
        """Erase a whole block: all pages become FREE, wear increments."""
        if not 0 <= block < self.geometry.total_blocks:
            raise ValueError(f"block {block} out of range")
        for ppa in self.pages_of_block(block):
            self._page_state.pop(ppa, None)
            self._data.pop(ppa, None)
        self._write_cursor[block] = 0
        self.block_wear[block] = self.block_wear.get(block, 0) + 1
        self.erases += 1
