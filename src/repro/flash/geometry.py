"""SSD geometry (Table 3 of the paper) and physical address arithmetic.

The paper's device: 8 channels, 4 chips/channel, 4 dies/chip, 2 planes/die,
2048 blocks/plane, 512 pages/block, 4 KB pages — a 1 TB SSD. Physical page
addresses (PPAs) are dense integers; the layout stripes consecutive PPAs
across channels first, then chips, dies, and planes, which is what gives
sequential reads their channel-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Sequence, Tuple

try:  # numpy is a declared dependency, but the scalar path never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None  # type: ignore[assignment]


class PhysicalAddress(NamedTuple):
    """A fully decomposed flash page location."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class FlashGeometry:
    """Static shape of the flash array."""

    channels: int = 8
    chips_per_channel: int = 4
    dies_per_chip: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 512
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        # aggregate products are asked for on every address decomposition;
        # precompute them once (object.__setattr__ because frozen)
        chips = self.channels * self.chips_per_channel
        dies = chips * self.dies_per_chip
        planes = dies * self.planes_per_die
        blocks = planes * self.blocks_per_plane
        pages = blocks * self.pages_per_block
        object.__setattr__(self, "_total_chips", chips)
        object.__setattr__(self, "_total_dies", dies)
        object.__setattr__(self, "_total_planes", planes)
        object.__setattr__(self, "_total_blocks", blocks)
        object.__setattr__(self, "_total_pages", pages)

    # -- aggregate sizes (instance attrs precomputed in __post_init__;
    # deliberately not annotated so the dataclass does not treat them as
    # fields) --------------------------------------------------------------

    @property
    def total_chips(self) -> int:
        return self._total_chips

    @property
    def total_dies(self) -> int:
        return self._total_dies

    @property
    def total_planes(self) -> int:
        return self._total_planes

    @property
    def total_blocks(self) -> int:
        return self._total_blocks

    @property
    def total_pages(self) -> int:
        return self._total_pages

    @property
    def capacity_bytes(self) -> int:
        return self._total_pages * self.page_bytes

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_bytes

    # -- address arithmetic -------------------------------------------------
    #
    # PPA layout (least significant first): channel, chip, die, plane, then
    # (block, page) within the plane. Consecutive PPAs land on consecutive
    # channels, maximizing stripe parallelism for sequential access.

    def decompose(self, ppa: int) -> PhysicalAddress:
        """Split a dense PPA into its physical coordinates."""
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"PPA {ppa} out of range [0, {self.total_pages})")
        rest, channel = divmod(ppa, self.channels)
        rest, chip = divmod(rest, self.chips_per_channel)
        rest, die = divmod(rest, self.dies_per_chip)
        rest, plane = divmod(rest, self.planes_per_die)
        block, page = divmod(rest, self.pages_per_block)
        return PhysicalAddress(channel, chip, die, plane, block, page)

    def compose(self, addr: PhysicalAddress) -> int:
        """Inverse of :meth:`decompose`."""
        self._check(addr)
        rest = addr.block * self.pages_per_block + addr.page
        rest = rest * self.planes_per_die + addr.plane
        rest = rest * self.dies_per_chip + addr.die
        rest = rest * self.chips_per_channel + addr.chip
        return rest * self.channels + addr.channel

    def _check(self, addr: PhysicalAddress) -> None:
        bounds = (
            ("channel", addr.channel, self.channels),
            ("chip", addr.chip, self.chips_per_channel),
            ("die", addr.die, self.dies_per_chip),
            ("plane", addr.plane, self.planes_per_die),
            ("block", addr.block, self.blocks_per_plane),
            ("page", addr.page, self.pages_per_block),
        )
        for name, value, bound in bounds:
            if not 0 <= value < bound:
                raise ValueError(f"{name} {value} out of range [0, {bound})")

    def channel_and_die(self, ppa: int) -> "tuple[int, int]":
        """(channel, global die index) for ``ppa`` with minimal arithmetic.

        The device issue path needs exactly these two coordinates per page
        operation; this skips the full :class:`PhysicalAddress` build.
        """
        if not 0 <= ppa < self._total_pages:
            raise ValueError(f"PPA {ppa} out of range [0, {self._total_pages})")
        rest, channel = divmod(ppa, self.channels)
        rest, chip = divmod(rest, self.chips_per_channel)
        die = rest % self.dies_per_chip
        return channel, (channel * self.chips_per_channel + chip) * self.dies_per_chip + die

    def channel_and_die_arrays(
        self, ppas: Sequence[int]
    ) -> "Tuple[List[int], List[int]]":
        """Vectorized :meth:`channel_and_die` over a whole PPA batch.

        Returns ``(channels, dies)`` as plain lists (the storm kernels index
        them per event, where list access beats numpy scalar boxing). The
        arithmetic is pure integer divmod, so the numpy path is exactly —
        not approximately — the scalar path; without numpy it falls back to
        a scalar loop.
        """
        if _np is not None and len(ppas) >= 64:
            arr = _np.asarray(ppas, dtype=_np.int64)
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self._total_pages):
                raise ValueError(f"PPA batch out of range [0, {self._total_pages})")
            rest, channel = _np.divmod(arr, self.channels)
            rest, chip = _np.divmod(rest, self.chips_per_channel)
            die = rest % self.dies_per_chip
            global_die = (channel * self.chips_per_channel + chip) * self.dies_per_chip + die
            return channel.tolist(), global_die.tolist()
        channels: List[int] = []
        dies: List[int] = []
        for ppa in ppas:
            channel, die = self.channel_and_die(ppa)
            channels.append(channel)
            dies.append(die)
        return channels, dies

    def die_index(self, ppa: int) -> int:
        """Global die index for ``ppa`` (used to pick the die resource)."""
        return self.channel_and_die(ppa)[1]

    def plane_index(self, ppa: int) -> int:
        """Global plane index for ``ppa``."""
        addr = self.decompose(ppa)
        return self.die_index(ppa) * self.planes_per_die + addr.plane

    def block_of(self, ppa: int) -> int:
        """Global block index containing ``ppa``."""
        addr = self.decompose(ppa)
        return self.plane_index(ppa) * self.blocks_per_plane + addr.block


def small_geometry(
    channels: int = 8,
    chips_per_channel: int = 2,
    dies_per_chip: int = 2,
    planes_per_die: int = 2,
    blocks_per_plane: int = 64,
    pages_per_block: int = 64,
    page_bytes: int = 4096,
) -> FlashGeometry:
    """A scaled-down geometry for tests and fast benchmark runs.

    Keeps the channel count (the quantity the paper sweeps) while shrinking
    capacity so functional simulations stay fast.
    """
    return FlashGeometry(
        channels=channels,
        chips_per_channel=chips_per_channel,
        dies_per_chip=dies_per_chip,
        planes_per_die=planes_per_die,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        page_bytes=page_bytes,
    )
