"""Flash operation timing (Table 3) and derived transfer costs."""

from __future__ import annotations

from dataclasses import dataclass, replace

MICROSECOND = 1e-6
MILLISECOND = 1e-3
MEGABYTE = 1 << 20


@dataclass(frozen=True)
class FlashTiming:
    """Latency/bandwidth parameters of the flash array.

    Defaults follow Table 3: t_RD = 50 µs, t_WR (program) = 300 µs, and
    600 MB/s of channel bandwidth. The paper does not give an erase time;
    3.5 ms is a typical TLC figure and only matters for GC-heavy runs.
    """

    read_latency: float = 50 * MICROSECOND
    program_latency: float = 300 * MICROSECOND
    erase_latency: float = 3.5 * MILLISECOND
    channel_bandwidth: float = 600 * MEGABYTE  # bytes/second, per channel

    def __post_init__(self) -> None:
        for name in ("read_latency", "program_latency", "erase_latency"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.channel_bandwidth <= 0:
            raise ValueError("channel_bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over one channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.channel_bandwidth

    def with_read_latency(self, read_latency: float) -> "FlashTiming":
        """Copy with a different read latency (Figure 14 sweeps 10–110 µs)."""
        return replace(self, read_latency=read_latency)
