"""Synthetic block-I/O trace generators.

In-storage programs and their host counterparts stress the SSD substrate
with different access shapes; these generators produce logical request
streams for :class:`~repro.ftl.ssd_system.SsdSystem`-level studies
(sequential scans, uniform random, Zipf-skewed hot spots, and mixed
read/write transaction patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.crypto.prng import XorShift64

IoRequest = Tuple[str, int]  # ("read" | "write", lpa)


@dataclass(frozen=True)
class TraceConfig:
    logical_pages: int
    length: int
    seed: int = 17

    def __post_init__(self) -> None:
        if self.logical_pages < 1 or self.length < 0:
            raise ValueError("logical_pages >= 1 and length >= 0 required")


def sequential_read(config: TraceConfig, start: int = 0) -> Iterator[IoRequest]:
    """A streaming scan: the in-storage analytics shape."""
    for i in range(config.length):
        yield ("read", (start + i) % config.logical_pages)


def sequential_write(config: TraceConfig, start: int = 0) -> Iterator[IoRequest]:
    """Dataset population / log append."""
    for i in range(config.length):
        yield ("write", (start + i) % config.logical_pages)


def random_read(config: TraceConfig) -> Iterator[IoRequest]:
    """Uniform random reads (index probes)."""
    rng = XorShift64(config.seed)
    for _ in range(config.length):
        yield ("read", rng.next_below(config.logical_pages))


def zipf_write(config: TraceConfig, hot_fraction: float = 0.1,
               hot_probability: float = 0.9) -> Iterator[IoRequest]:
    """Skewed writes: most updates land on a small hot region.

    The classic FTL stress shape — hot blocks invalidate fast (cheap GC)
    while the cold region pins live data (relocations, wear imbalance).
    """
    if not 0.0 < hot_fraction <= 1.0 or not 0.0 <= hot_probability <= 1.0:
        raise ValueError("fractions must be probabilities")
    rng = XorShift64(config.seed)
    hot_pages = max(1, int(config.logical_pages * hot_fraction))
    for _ in range(config.length):
        if rng.next_float() < hot_probability:
            yield ("write", rng.next_below(hot_pages))
        else:
            yield ("write", hot_pages + rng.next_below(
                max(1, config.logical_pages - hot_pages)))


def transaction_mix(config: TraceConfig, write_ratio: float = 0.3) -> Iterator[IoRequest]:
    """OLTP-ish mix: random reads with a fraction of read-modify-writes."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be a probability")
    rng = XorShift64(config.seed)
    written = set()
    for _ in range(config.length):
        lpa = rng.next_below(config.logical_pages)
        if rng.next_float() < write_ratio or lpa not in written:
            written.add(lpa)
            yield ("write", lpa)
        else:
            yield ("read", lpa)


GENERATORS = {
    "sequential-read": sequential_read,
    "sequential-write": sequential_write,
    "random-read": random_read,
    "zipf-write": zipf_write,
    "transaction-mix": transaction_mix,
}
