"""Exact batched kernel for windowed page-read storms.

The benchmark kernel (and every windowed read workload) drives one closed
loop: ``window`` reads are outstanding; each channel completion issues the
next page. Under constant service times this storm has special structure —

- every die job takes ``t_RD`` and every channel job takes ``t_xfer``, so
  completion events *within each class* are generated in nondecreasing
  time order;
- therefore the engine's heap degenerates into two FIFOs (die completions,
  channel completions) merged by ``(time, seq)``.

The kernel below emulates the event engine on those two FIFOs without any
heap operations — and without approximation. Every observable the event
path would have produced is reproduced **bit for bit**: the final clock,
events fired, sequence numbers consumed, and each :class:`Resource`'s
``jobs_completed`` / ``total_service_time`` / ``total_wait_time`` /
``max_queue_depth`` (float accumulators are advanced by the same additions
in the same per-resource order; ``x + 0.0`` no-ops are elided, which is
bitwise neutral for the non-negative accumulators involved). The test
suite pins this equivalence differentially against the real engine.

When ``REPRO_SPEED=compiled`` and ``tools/build_speed.py`` has produced
``build/speedc.so``, the same two-FIFO loop runs in C (IEEE-754 doubles,
same operations in the same order — still bit-identical, still pinned by
the differential test); otherwise the pure-python loop runs. With
``REPRO_SPEED=off``, :class:`StormUnsupported` sends callers back to the
per-event path.
"""

from __future__ import annotations

import ctypes
from collections import deque
from typing import TYPE_CHECKING, List, Sequence, Tuple

import repro.speed as speed
from repro.flash.geometry import _np
from repro.sim.resource import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flash.ssd import FlashDevice


class StormUnsupported(RuntimeError):
    """The exact batched kernel cannot run here; use the event path."""


def _check_supported(device: "FlashDevice", window: int) -> None:
    engine = device.engine
    if not speed.batch_enabled():
        raise StormUnsupported("REPRO_SPEED=off disables the batched kernels")
    if window < 1:
        raise ValueError("window must be >= 1")
    if device.chip is not None:
        raise StormUnsupported("functional chip attached: reads carry data work")
    if engine.running:
        raise StormUnsupported("engine is mid-run; the kernel needs a quiescent point")
    if engine.pending:
        raise StormUnsupported("engine queue is not empty")
    if engine.invariant_monitor is not None:
        raise StormUnsupported("invariant monitor armed: per-event hooks required")
    if device.timing.read_latency <= 0.0 or device._page_transfer_time <= 0.0:
        raise StormUnsupported("degenerate service times break FIFO event order")
    for res in device.dies:
        if type(res) is not Resource or res.busy or res.queue_depth:
            raise StormUnsupported("die resources must be plain and idle")
    for res in device.channels:
        if type(res) is not Resource or res.busy or res.queue_depth:
            raise StormUnsupported("channel resources must be plain and idle")


def run_read_storm(device: "FlashDevice", ppas: Sequence[int], window: int = 64) -> int:
    """Run a windowed closed-loop read storm to completion, exactly.

    Returns the number of engine events the equivalent per-event run would
    have fired (two per page: die completion + channel completion). Raises
    :class:`StormUnsupported` when the exactness preconditions do not hold;
    callers fall back to :func:`run_read_storm_events`.
    """
    _check_supported(device, window)
    ppa_list = list(ppas)
    n = len(ppa_list)
    if n == 0:
        return 0
    geometry = device.geometry
    chan_arr, die_arr = geometry.channel_and_die_arrays(ppa_list)
    dies = device.dies
    channels = device.channels
    ndies = len(dies)
    nchans = len(channels)
    t_rd = device.timing.read_latency
    t_xfer = device._page_transfer_time
    now0 = device.engine.now

    # per-resource accumulators, seeded from current stats so the kernel's
    # additions continue the exact float sequences the event path would
    die_wait = [r.total_wait_time for r in dies]
    chan_wait = [r.total_wait_time for r in channels]
    die_serv = [r.total_service_time for r in dies]
    chan_serv = [r.total_service_time for r in channels]
    die_jobs = [r.jobs_completed for r in dies]
    chan_jobs = [r.jobs_completed for r in channels]
    die_maxq = [r.max_queue_depth for r in dies]
    chan_maxq = [r.max_queue_depth for r in channels]

    now = _c_kernel(
        n, window, t_rd, t_xfer, die_arr, chan_arr, ndies, nchans, now0,
        die_wait, chan_wait, die_serv, chan_serv,
        die_jobs, chan_jobs, die_maxq, chan_maxq,
    )
    if now is None:
        now = _python_kernel(
            n, window, t_rd, t_xfer, die_arr, chan_arr, ndies, nchans, now0,
            die_wait, chan_wait, die_serv, chan_serv,
            die_jobs, chan_jobs, die_maxq, chan_maxq,
        )

    events = 2 * n
    device.engine.absorb(now, events, events)
    for i, res in enumerate(dies):
        res.total_wait_time = die_wait[i]
        res.total_service_time = die_serv[i]
        res.jobs_completed = die_jobs[i]
        res.max_queue_depth = die_maxq[i]
    for i, res in enumerate(channels):
        res.total_wait_time = chan_wait[i]
        res.total_service_time = chan_serv[i]
        res.jobs_completed = chan_jobs[i]
        res.max_queue_depth = chan_maxq[i]
    device._page_reads.add(n)
    return events


def run_read_storm_events(device: "FlashDevice", ppas: Sequence[int], window: int = 64) -> int:
    """The same storm through the real event engine (reference path).

    Drives the engine to completion; requires a non-running engine. Returns
    the number of events fired for the storm.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    ppa_list = list(ppas)
    engine = device.engine
    before = engine.events_fired
    state = {"next": 0}

    def issue_one() -> None:
        i = state["next"]
        if i >= len(ppa_list):
            return
        state["next"] = i + 1
        device.read(ppa_list[i], on_done=issue_one)

    for _ in range(min(window, len(ppa_list))):
        issue_one()
    engine.run()
    return engine.events_fired - before


# -- the two-FIFO merge loop ---------------------------------------------------


def _python_kernel(
    n: int,
    window: int,
    t_rd: float,
    t_xfer: float,
    die_arr: List[int],
    chan_arr: List[int],
    ndies: int,
    nchans: int,
    now0: float,
    die_wait: List[float],
    chan_wait: List[float],
    die_serv: List[float],
    chan_serv: List[float],
    die_jobs: List[int],
    chan_jobs: List[int],
    die_maxq: List[int],
    chan_maxq: List[int],
) -> float:
    die_busy = [False] * ndies
    chan_busy = [False] * nchans
    die_q: List[deque] = [deque() for _ in range(ndies)]
    chan_q: List[deque] = [deque() for _ in range(nchans)]
    # the two completion FIFOs: (time, seq, read index). Entries are
    # appended in nondecreasing (time, seq) order — constant service times
    # make each lane sorted by construction.
    dq: deque = deque()
    cq: deque = deque()
    dq_append = dq.append
    cq_append = cq.append
    dq_pop = dq.popleft
    cq_pop = cq.popleft
    seq = 0

    # prime the window: reads 0..W-1 all issue at now0
    first = min(window, n)
    for k in range(first):
        d = die_arr[k]
        if die_busy[d]:
            q = die_q[d]
            q.append((k, now0))
            if len(q) > die_maxq[d]:
                die_maxq[d] = len(q)
        else:
            die_busy[d] = True
            seq += 1
            dq_append((now0 + t_rd, seq, k))
    issued = first
    now = now0
    inf = (float("inf"), 0, 0)
    dhead = dq[0] if dq else inf
    chead = inf
    while True:
        if dhead <= chead:
            if dhead is inf:
                break
            # die completion: mirrors Resource._finish on the die, then
            # FlashDevice.read's after_sense acquiring the channel
            dq_pop()
            now, _s, i = dhead
            d = die_arr[i]
            die_jobs[d] += 1
            die_serv[d] += t_rd
            q = die_q[d]
            if q:
                j, enq = q.popleft()
                die_wait[d] += now - enq
                seq += 1
                dq_append((now + t_rd, seq, j))
            else:
                die_busy[d] = False
            c = chan_arr[i]
            if chan_busy[c]:
                q2 = chan_q[c]
                q2.append((i, now))
                lq = len(q2)
                if lq > chan_maxq[c]:
                    chan_maxq[c] = lq
            else:
                chan_busy[c] = True
                seq += 1
                cq_append((now + t_xfer, seq, i))
                if chead is inf:
                    chead = cq[0]
            dhead = dq[0] if dq else inf
        else:
            # channel completion: Resource._finish on the channel, then the
            # closed loop's on_done issuing the next read
            cq_pop()
            now, _s, i = chead
            c = chan_arr[i]
            chan_jobs[c] += 1
            chan_serv[c] += t_xfer
            q2 = chan_q[c]
            if q2:
                j, enq = q2.popleft()
                chan_wait[c] += now - enq
                seq += 1
                cq_append((now + t_xfer, seq, j))
            else:
                chan_busy[c] = False
            if issued < n:
                k = issued
                issued += 1
                d = die_arr[k]
                if die_busy[d]:
                    q = die_q[d]
                    q.append((k, now))
                    lq = len(q)
                    if lq > die_maxq[d]:
                        die_maxq[d] = lq
                else:
                    die_busy[d] = True
                    seq += 1
                    dq_append((now + t_rd, seq, k))
                    if dhead is inf:
                        dhead = dq[0]
            chead = cq[0] if cq else inf
    return now


def _c_kernel(
    n: int,
    window: int,
    t_rd: float,
    t_xfer: float,
    die_arr: List[int],
    chan_arr: List[int],
    ndies: int,
    nchans: int,
    now0: float,
    die_wait: List[float],
    chan_wait: List[float],
    die_serv: List[float],
    chan_serv: List[float],
    die_jobs: List[int],
    chan_jobs: List[int],
    die_maxq: List[int],
    chan_maxq: List[int],
) -> "float | None":
    """Run the same loop in C; returns None when the library is absent."""
    lib = speed.lib()
    if lib is None:
        return None
    if _np is not None:
        # bulk int32 conversion; the arrays stay referenced across the call
        die_np = _np.asarray(die_arr, dtype=_np.int32)
        chan_np = _np.asarray(chan_arr, dtype=_np.int32)
        die_c = die_np.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))
        chan_c = chan_np.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))
    else:
        die_c = (ctypes.c_int32 * n)(*die_arr)
        chan_c = (ctypes.c_int32 * n)(*chan_arr)
    dw = (ctypes.c_double * ndies)(*die_wait)
    cw = (ctypes.c_double * nchans)(*chan_wait)
    ds = (ctypes.c_double * ndies)(*die_serv)
    cs = (ctypes.c_double * nchans)(*chan_serv)
    dj = (ctypes.c_int64 * ndies)(*die_jobs)
    cj = (ctypes.c_int64 * nchans)(*chan_jobs)
    dm = (ctypes.c_int64 * ndies)(*die_maxq)
    cm = (ctypes.c_int64 * nchans)(*chan_maxq)
    out_now = ctypes.c_double(now0)
    rc = lib.repro_storm_read(
        die_c, chan_c,
        ctypes.c_int64(n), ctypes.c_int32(ndies), ctypes.c_int32(nchans),
        ctypes.c_int64(window),
        ctypes.c_double(now0), ctypes.c_double(t_rd), ctypes.c_double(t_xfer),
        dw, cw, ds, cs, dj, cj, dm, cm,
        ctypes.byref(out_now),
    )
    if rc != 0:
        return None  # allocation failure inside the kernel: fall back
    die_wait[:] = list(dw)
    chan_wait[:] = list(cw)
    die_serv[:] = list(ds)
    chan_serv[:] = list(cs)
    die_jobs[:] = list(dj)
    chan_jobs[:] = list(cj)
    die_maxq[:] = list(dm)
    chan_maxq[:] = list(cm)
    return out_now.value


__all__: Tuple[str, ...] = (
    "StormUnsupported",
    "run_read_storm",
    "run_read_storm_events",
)
