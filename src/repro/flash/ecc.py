"""ECC behaviour model for flash page reads.

The threat model (§3) relies on the ECC in flash controllers for flash-page
integrity. This module models a BCH-style code: each page tolerates up to
``correctable_bits`` raw bit errors; the raw bit error rate (RBER) grows
exponentially with block wear, which is why wear leveling matters.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.crypto.prng import XorShift64


@dataclass(frozen=True)
class EccConfig:
    correctable_bits: int = 40  # per page codeword
    base_rber: float = 1e-7  # fresh-block raw bit error rate
    wear_scale: float = 3000.0  # P/E cycles per e-fold of RBER growth
    page_bits: int = 4096 * 8


class EccUncorrectableError(Exception):
    """Raised when a page read has more raw errors than ECC can fix."""

    def __init__(self, message: str, raw_errors: int = 0) -> None:
        super().__init__(message)
        self.raw_errors = raw_errors


class EccModel:
    """Samples raw bit errors per read and decides correctability.

    Fault injection (:mod:`repro.faults`) feeds forced raw-error counts
    through :meth:`inject`; they replace the sampled count for the next
    reads, which keeps an injected schedule reproducible regardless of how
    much natural sampling happened in between.
    """

    def __init__(self, config: EccConfig = EccConfig(), seed: int = 1) -> None:
        self.config = config
        self._rng = XorShift64(seed)
        self._forced: Deque[int] = deque()
        self.reads = 0
        self.corrected_bits = 0
        self.uncorrectable = 0
        self.injected_reads = 0
        self.retried_reads = 0
        self.retry_successes = 0
        self.last_raw_errors = 0

    def rber(self, wear: int) -> float:
        """Raw bit error rate for a block with ``wear`` P/E cycles."""
        return self.config.base_rber * math.exp(wear / self.config.wear_scale)

    def expected_errors(self, wear: int) -> float:
        return self.rber(wear) * self.config.page_bits

    def sample_errors(self, wear: int) -> int:
        """Sample a raw error count (Poisson via inversion, deterministic)."""
        lam = self.expected_errors(wear)
        if lam <= 0:
            return 0
        # Knuth's algorithm is fine: lambda stays small until extreme wear.
        if lam > 700:  # avoid math.exp underflow; page is hopeless anyway
            return int(lam)
        threshold = math.exp(-lam)
        count = 0
        product = self._rng.next_float()
        while product > threshold:
            count += 1
            product *= self._rng.next_float()
        return count

    def inject(self, errors: int, reads: int = 1) -> None:
        """Force the next ``reads`` page reads to see ``errors`` raw errors."""
        if errors < 0 or reads < 1:
            raise ValueError("need errors >= 0 and reads >= 1")
        self._forced.extend([errors] * reads)

    def pending_injections(self) -> int:
        return len(self._forced)

    def check_read(self, wear: int) -> int:
        """Run a page read through ECC; returns corrected bit count.

        Raises :class:`EccUncorrectableError` when errors exceed capability.
        """
        self.reads += 1
        if self._forced:
            errors = self._forced.popleft()
            self.injected_reads += 1
        else:
            errors = self.sample_errors(wear)
        self.last_raw_errors = errors
        if errors > self.config.correctable_bits:
            self.uncorrectable += 1
            raise EccUncorrectableError(
                f"{errors} raw bit errors exceed t={self.config.correctable_bits}",
                raw_errors=errors,
            )
        self.corrected_bits += errors
        return errors

    def retry_read(self, shift: int, decay: float = 0.5) -> int:
        """Re-read the last failing page with a read-retry voltage shift.

        Each escalation level roughly halves the raw error count (the usual
        first-order model of read-retry threshold tuning). Returns the
        corrected bit count or raises when the page is still uncorrectable
        at this level.
        """
        if shift < 1:
            raise ValueError("retry shift must be >= 1")
        self.retried_reads += 1
        errors = int(self.last_raw_errors * (decay ** shift))
        if errors > self.config.correctable_bits:
            raise EccUncorrectableError(
                f"retry level {shift}: {errors} raw bit errors still exceed "
                f"t={self.config.correctable_bits}",
                raw_errors=errors,
            )
        self.retry_successes += 1
        self.corrected_bits += errors
        return errors

    def wear_limit(self) -> int:
        """P/E cycles at which the *expected* error count hits ECC capability.

        A first-order endurance estimate used by wear-leveling tests.
        """
        ratio = self.config.correctable_bits / (
            self.config.base_rber * self.config.page_bits
        )
        return int(self.config.wear_scale * math.log(ratio))

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Config is constructor-owned; the RNG, forced queue and counters move."""
        return {
            "rng": self._rng.snapshot_state(),
            "forced": list(self._forced),
            "reads": self.reads,
            "corrected_bits": self.corrected_bits,
            "uncorrectable": self.uncorrectable,
            "injected_reads": self.injected_reads,
            "retried_reads": self.retried_reads,
            "retry_successes": self.retry_successes,
            "last_raw_errors": self.last_raw_errors,
        }

    def restore_state(self, state: dict) -> None:
        self._rng.restore_state(state["rng"])
        self._forced = deque(state["forced"])
        self.reads = state["reads"]
        self.corrected_bits = state["corrected_bits"]
        self.uncorrectable = state["uncorrectable"]
        self.injected_reads = state["injected_reads"]
        self.retried_reads = state["retried_reads"]
        self.retry_successes = state["retry_successes"]
        self.last_raw_errors = state["last_raw_errors"]


@dataclass
class RetryOutcome:
    """Result of an escalating read-retry sequence that recovered a page."""

    corrected_bits: int
    retries: int
    added_latency: float


@dataclass(frozen=True)
class ReadRetryPolicy:
    """Escalating read retries for initially uncorrectable pages.

    Each level re-reads the page with a stronger read-retry voltage shift
    (modelled as a geometric decay of the raw error count) and pays an
    escalating latency — level k costs ``k * retry_latency`` because deeper
    levels use slower sensing. A page that stays uncorrectable after
    ``max_retries`` levels is a hard failure.
    """

    max_retries: int = 5
    error_decay: float = 0.5
    retry_latency: float = 40e-6

    def recover(self, ecc: EccModel) -> RetryOutcome:
        """Retry the last failing read; raises when every level fails."""
        latency = 0.0
        last: Exception = EccUncorrectableError("no retries attempted")
        for shift in range(1, self.max_retries + 1):
            latency += shift * self.retry_latency
            try:
                corrected = ecc.retry_read(shift, decay=self.error_decay)
            except EccUncorrectableError as exc:
                last = exc
                continue
            return RetryOutcome(
                corrected_bits=corrected, retries=shift, added_latency=latency
            )
        raise EccUncorrectableError(
            f"page unrecoverable after {self.max_retries} retry levels: {last}",
            raw_errors=getattr(last, "raw_errors", 0),
        )

    def worst_case_latency(self) -> float:
        return sum(k * self.retry_latency for k in range(1, self.max_retries + 1))
