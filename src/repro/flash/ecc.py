"""ECC behaviour model for flash page reads.

The threat model (§3) relies on the ECC in flash controllers for flash-page
integrity. This module models a BCH-style code: each page tolerates up to
``correctable_bits`` raw bit errors; the raw bit error rate (RBER) grows
exponentially with block wear, which is why wear leveling matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.prng import XorShift64


@dataclass(frozen=True)
class EccConfig:
    correctable_bits: int = 40  # per page codeword
    base_rber: float = 1e-7  # fresh-block raw bit error rate
    wear_scale: float = 3000.0  # P/E cycles per e-fold of RBER growth
    page_bits: int = 4096 * 8


class EccUncorrectableError(Exception):
    """Raised when a page read has more raw errors than ECC can fix."""


class EccModel:
    """Samples raw bit errors per read and decides correctability."""

    def __init__(self, config: EccConfig = EccConfig(), seed: int = 1) -> None:
        self.config = config
        self._rng = XorShift64(seed)
        self.reads = 0
        self.corrected_bits = 0
        self.uncorrectable = 0

    def rber(self, wear: int) -> float:
        """Raw bit error rate for a block with ``wear`` P/E cycles."""
        return self.config.base_rber * math.exp(wear / self.config.wear_scale)

    def expected_errors(self, wear: int) -> float:
        return self.rber(wear) * self.config.page_bits

    def sample_errors(self, wear: int) -> int:
        """Sample a raw error count (Poisson via inversion, deterministic)."""
        lam = self.expected_errors(wear)
        if lam <= 0:
            return 0
        # Knuth's algorithm is fine: lambda stays small until extreme wear.
        if lam > 700:  # avoid math.exp underflow; page is hopeless anyway
            return int(lam)
        threshold = math.exp(-lam)
        count = 0
        product = self._rng.next_float()
        while product > threshold:
            count += 1
            product *= self._rng.next_float()
        return count

    def check_read(self, wear: int) -> int:
        """Run a page read through ECC; returns corrected bit count.

        Raises :class:`EccUncorrectableError` when errors exceed capability.
        """
        self.reads += 1
        errors = self.sample_errors(wear)
        if errors > self.config.correctable_bits:
            self.uncorrectable += 1
            raise EccUncorrectableError(
                f"{errors} raw bit errors exceed t={self.config.correctable_bits}"
            )
        self.corrected_bits += errors
        return errors

    def wear_limit(self) -> int:
        """P/E cycles at which the *expected* error count hits ECC capability.

        A first-order endurance estimate used by wear-leveling tests.
        """
        ratio = self.config.correctable_bits / (
            self.config.base_rber * self.config.page_bits
        )
        return int(self.config.wear_scale * math.log(ratio))
