"""Discrete-event flash device: channel + die contention and timing.

This is where the paper's bandwidth story lives. A page read occupies its
die for ``t_RD`` then its channel for the transfer time; with C channels the
aggregate internal bandwidth scales with C (Figure 12) while per-page latency
and die counts bound the achievable parallelism (Figure 14).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.storm import StormUnsupported, run_read_storm, run_read_storm_events
from repro.flash.timing import FlashTiming
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.sim.stats import StatRegistry

Callback = Optional[Callable[[], None]]


class FlashDevice:
    """Timing front-end of the SSD's flash array.

    Optionally coupled to a :class:`FlashChip` for functional state; the
    timing path works standalone so platform-level simulations can run
    without byte storage.
    """

    def __init__(
        self,
        engine: Engine,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[FlashTiming] = None,
        chip: Optional[FlashChip] = None,
    ) -> None:
        self.engine = engine
        self.geometry = geometry or FlashGeometry()
        self.timing = timing or FlashTiming()
        self.chip = chip
        self.channels = [
            Resource(engine, f"channel{i}") for i in range(self.geometry.channels)
        ]
        self.dies = [Resource(engine, f"die{i}") for i in range(self.geometry.total_dies)]
        self.stats = StatRegistry()
        # hot-path handles: one registry lookup at construction, not per page
        self._page_reads = self.stats.counter("page_reads")
        self._page_writes = self.stats.counter("page_writes")
        self._block_erases = self.stats.counter("block_erases")
        self._page_transfer_time = self.timing.transfer_time(self.geometry.page_bytes)

    # -- single-page operations ---------------------------------------------

    def read(self, ppa: int, on_done: Callback = None, data_sink: Optional[list] = None) -> None:
        """Schedule a page read: die sense (t_RD), then channel transfer."""
        channel, die = self.geometry.channel_and_die(ppa)
        self._page_reads.add()
        if self.chip is None and data_sink is None:
            # timing-only fast path: skip the _finish_read trampoline
            def after_sense() -> None:
                self.channels[channel].acquire(self._page_transfer_time, on_done=on_done)
        else:
            def after_sense() -> None:
                self.channels[channel].acquire(
                    self._page_transfer_time,
                    on_done=lambda: self._finish_read(ppa, on_done, data_sink),
                )

        self.dies[die].acquire(self.timing.read_latency, on_done=after_sense)

    def _finish_read(self, ppa: int, on_done: Callback, data_sink: Optional[list]) -> None:
        if self.chip is not None and data_sink is not None:
            data_sink.append(self.chip.read(ppa))
        if on_done is not None:
            on_done()

    def write(self, ppa: int, data: Optional[bytes] = None, on_done: Callback = None) -> None:
        """Schedule a page program: channel transfer, then die program."""
        channel, die = self.geometry.channel_and_die(ppa)
        self._page_writes.add()
        if self.chip is not None:
            # functional state changes immediately (command ordering is FIFO)
            self.chip.program(ppa, data if self.chip.store_data else None)

        def after_transfer() -> None:
            self.dies[die].acquire(self.timing.program_latency, on_done=on_done)

        self.channels[channel].acquire(self._page_transfer_time, on_done=after_transfer)

    def erase(self, block: int, on_done: Callback = None) -> None:
        """Schedule a block erase on its die."""
        if self.chip is not None:
            self.chip.erase(block)
        plane = block // self.geometry.blocks_per_plane
        die = plane // self.geometry.planes_per_die
        self._block_erases.add()
        self.dies[die].acquire(self.timing.erase_latency, on_done=on_done)

    # -- batched operations ---------------------------------------------------

    def read_many(self, ppas: Iterable[int], on_all_done: Callback = None) -> int:
        """Issue many reads; ``on_all_done`` fires after the last completes.

        Returns the number of reads issued.
        """
        ppa_list = list(ppas)
        remaining = len(ppa_list)
        if remaining == 0:
            if on_all_done is not None:
                self.engine.schedule(0.0, on_all_done)
            return 0
        state = {"left": remaining}

        def one_done() -> None:
            state["left"] -= 1
            if state["left"] == 0 and on_all_done is not None:
                on_all_done()

        for ppa in ppa_list:
            self.read(ppa, on_done=one_done)
        return remaining

    def read_storm(self, ppas: Iterable[int], window: int = 64) -> int:
        """Run a windowed closed-loop read storm to completion.

        ``window`` reads stay outstanding; every channel completion issues
        the next page. The whole storm runs through the batched exact
        kernel (:mod:`repro.flash.storm`) when the preconditions hold —
        idle device, no functional chip, no armed monitor — and through
        the per-event engine otherwise; both produce bit-identical engine
        and resource state. Requires a non-running engine (the storm is
        drained to completion before returning). Returns the number of
        engine events the storm fired.
        """
        ppa_list = list(ppas)
        try:
            return run_read_storm(self, ppa_list, window)
        except StormUnsupported:
            return run_read_storm_events(self, ppa_list, window)

    def write_many(self, ppas: Iterable[int], on_all_done: Callback = None) -> int:
        """Issue many writes; ``on_all_done`` fires after the last completes."""
        ppa_list = list(ppas)
        remaining = len(ppa_list)
        if remaining == 0:
            if on_all_done is not None:
                self.engine.schedule(0.0, on_all_done)
            return 0
        state = {"left": remaining}

        def one_done() -> None:
            state["left"] -= 1
            if state["left"] == 0 and on_all_done is not None:
                on_all_done()

        for ppa in ppa_list:
            self.write(ppa, on_done=one_done)
        return remaining

    # -- derived figures --------------------------------------------------------

    def internal_bandwidth(self) -> float:
        """Aggregate channel bandwidth in bytes/second."""
        return self.geometry.channels * self.timing.channel_bandwidth

    def max_read_throughput(self) -> float:
        """Read throughput bound: min(channel bw, die-level parallelism).

        With D dies each needing t_RD per page plus the channel transfer,
        sustained throughput cannot exceed D * page / t_RD; the channel
        aggregate caps it from the other side. Figure 14's latency sweep
        crosses between these two regimes.
        """
        die_bound = (
            self.geometry.total_dies
            * self.geometry.page_bytes
            / self.timing.read_latency
        )
        return min(self.internal_bandwidth(), die_bound)
