"""Flash device model (the SimpleSSD substitute).

Physical layer only: geometry, per-operation timing, chip/plane/block/page
state machines, ECC behaviour, and a discrete-event device that serializes
operations over channel and die resources. Everything logical (address
mapping, GC, wear leveling) lives in :mod:`repro.ftl`.
"""

from repro.flash.geometry import FlashGeometry, PhysicalAddress
from repro.flash.timing import FlashTiming
from repro.flash.chip import FlashChip, PageState
from repro.flash.ecc import EccModel
from repro.flash.ssd import FlashDevice

__all__ = [
    "FlashGeometry",
    "PhysicalAddress",
    "FlashTiming",
    "FlashChip",
    "PageState",
    "EccModel",
    "FlashDevice",
]
