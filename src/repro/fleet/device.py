"""One simulated SSD in the fleet: a functional store with a fault surface.

A :class:`FleetDevice` is deliberately smaller than the full per-SSD stack
(the chaos harness exercises that); the fleet layer needs a device that is
*data-faithful* — it holds real bytes per key, so rebuild correctness is
checkable against ground truth — and *fault-faithful*: it can be killed
whole, lose a die (dropping exactly that die's keys), run slow through a
latency storm, or burn error credits that fail the next commands.

Determinism: the only randomness is per-device latency jitter drawn from a
PRNG seeded by (run seed, device id); whether a command *succeeds* never
depends on an RNG draw, only on device state. That separation is what lets
the hedging tests demand byte-identical data outcomes whether or not the
hedge fires (hedging changes which commands are issued, hence which jitter
values are drawn — but never which requests succeed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.crypto.prng import XorShift64
from repro.fleet.topology import seeded_mix

_DEVICE_SALT = 0xDE51CE


@dataclass(frozen=True)
class DeviceConfig:
    """Latency and geometry knobs shared by every device in a fleet."""

    dies: int = 4
    read_latency_s: float = 80e-6
    write_latency_s: float = 120e-6
    jitter_fraction: float = 0.25  # uniform latency jitter, fraction of base
    storm_factor: float = 8.0  # read/write slowdown while a storm is active
    stall_factor: float = 40.0  # slowdown while a power-loss stall is active

    def __post_init__(self) -> None:
        if self.dies < 1:
            raise ValueError("a device needs at least one die")
        if self.read_latency_s <= 0 or self.write_latency_s <= 0:
            raise ValueError("latencies must be positive")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1]")


@dataclass(frozen=True)
class DeviceResult:
    """Outcome of one device command (no exceptions on the data path)."""

    ok: bool
    latency_s: float
    value: bytes = b""
    reason: str = ""  # "" | "dead" | "missing" | "media_error"


class FleetDevice:
    """One SSD-shaped shard target: keyed byte store + fault state."""

    def __init__(
        self,
        device_id: int,
        seed: int,
        config: DeviceConfig = DeviceConfig(),
    ) -> None:
        self.device_id = device_id
        self.config = config
        self._rng = XorShift64(seeded_mix(seed ^ _DEVICE_SALT, device_id) or 1)
        self._store: Dict[int, bytes] = {}
        self.alive = True
        self._quarantined: List[int] = []  # sorted die indices
        self.slow_until = 0.0
        self.slow_factor = 1.0
        self.error_credits = 0  # the next N data commands fail with media_error
        self.counters: Dict[str, int] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def die_for(self, key: int) -> int:
        return key % self.config.dies

    def keys_held(self) -> List[int]:
        return sorted(self._store)

    def holds(self, key: int) -> bool:
        return key in self._store

    def peek(self, key: int) -> bytes:
        """Direct store access for verification sweeps (no fault surface)."""
        return self._store.get(key, b"")

    # -- latency model ---------------------------------------------------------

    def _latency(self, now: float, base: float) -> float:
        jitter = base * self.config.jitter_fraction * self._rng.next_float()
        latency = base + jitter
        if now < self.slow_until:
            latency *= self.slow_factor
        return latency

    # -- data path -------------------------------------------------------------

    def read(self, now: float, key: int) -> DeviceResult:
        if not self.alive:
            self._count("reads_refused_dead")
            return DeviceResult(ok=False, latency_s=0.0, reason="dead")
        latency = self._latency(now, self.config.read_latency_s)
        if self.error_credits > 0:
            self.error_credits -= 1
            self._count("read_media_errors")
            return DeviceResult(ok=False, latency_s=latency, reason="media_error")
        if key not in self._store:
            self._count("reads_missing")
            return DeviceResult(ok=False, latency_s=latency, reason="missing")
        self._count("reads_ok")
        return DeviceResult(ok=True, latency_s=latency, value=self._store[key])

    def write(self, now: float, key: int, value: bytes) -> DeviceResult:
        if not self.alive:
            self._count("writes_refused_dead")
            return DeviceResult(ok=False, latency_s=0.0, reason="dead")
        latency = self._latency(now, self.config.write_latency_s)
        if self.error_credits > 0:
            self.error_credits -= 1
            self._count("write_media_errors")
            return DeviceResult(ok=False, latency_s=latency, reason="media_error")
        self._store[key] = value
        self._count("writes_ok")
        return DeviceResult(ok=True, latency_s=latency)

    def install_replica(self, key: int, value: bytes) -> bool:
        """Background repair path: install a replica copy (no jitter draw —
        rebuild bandwidth is modeled as free background traffic)."""
        if not self.alive:
            return False
        self._store[key] = value
        self._count("rebuild_writes")
        return True

    # -- fault surface ---------------------------------------------------------

    def kill(self, now: float) -> bool:
        """Whole-device failure; returns True when the device was alive."""
        was_alive = self.alive
        self.alive = False
        if was_alive:
            self._count("killed")
        return was_alive

    def quarantine_die(self, now: float, die: int) -> List[int]:
        """Drop every key on ``die``; returns the sorted dropped keys."""
        die = die % self.config.dies
        if die not in self._quarantined:
            self._quarantined.append(die)
            self._quarantined.sort()
        dropped = sorted(k for k in self._store if self.die_for(k) == die)
        for key in dropped:
            del self._store[key]
        self._count("dies_quarantined")
        self._count("keys_dropped_quarantine", len(dropped))
        return dropped

    def start_storm(self, now: float, duration_s: float, credits: int = 0) -> None:
        """Latency storm: reads/writes slow down; ``credits`` commands fail."""
        self.slow_until = max(self.slow_until, now + duration_s)
        self.slow_factor = self.config.storm_factor
        self.error_credits += credits
        self._count("storms")

    def stall(self, now: float, duration_s: float) -> None:
        """Power-loss-shaped stall: much harsher slowdown, no media errors."""
        self.slow_until = max(self.slow_until, now + duration_s)
        self.slow_factor = self.config.stall_factor
        self._count("stalls")

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "rng": self._rng.snapshot_state(),
            "store": [(k, self._store[k]) for k in sorted(self._store)],
            "alive": self.alive,
            "quarantined": list(self._quarantined),
            "slow_until": self.slow_until,
            "slow_factor": self.slow_factor,
            "error_credits": self.error_credits,
            "counters": [(k, self.counters[k]) for k in sorted(self.counters)],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._rng.restore_state(state["rng"])
        self._store = {key: value for key, value in state["store"]}
        self.alive = state["alive"]
        self._quarantined = list(state["quarantined"])
        self.slow_until = state["slow_until"]
        self.slow_factor = state["slow_factor"]
        self.error_credits = state["error_credits"]
        self.counters = {key: value for key, value in state["counters"]}


__all__ = ["DeviceConfig", "DeviceResult", "FleetDevice"]
