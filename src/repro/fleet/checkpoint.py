"""Fleet-level checkpoints: one snapshot for the whole shard fabric.

A fleet checkpoint composes every stateful participant — sim engine,
topology membership, each device's store and RNG, breaker board, SLO
tracker, router counters/digest, rebuild ledger, workload RNG — into one
:class:`~repro.recovery.snapshot.Snapshot`. Restore rebuilds a fresh
:class:`~repro.fleet.lab.FleetRunner` from the snapshot's primitive meta
(re-running constructors, which regenerates the ring and fault plan as
pure functions of the seed) and overlays the saved state.

Checkpoints are only valid between requests: the runner asserts the engine
is quiescent after every step, so between-steps is always a safe cut.
"""

from __future__ import annotations

from repro.fleet.lab import FleetRunner
from repro.recovery.snapshot import Snapshot, SnapshotError

FLEET_SNAPSHOT_KIND = "fleet-run"


def snapshot_fleet_runner(runner: FleetRunner) -> Snapshot:
    """Capture a quiescent fleet runner as a versioned snapshot."""
    meta = {
        "seed": runner.seed,
        "requests": runner.requests,
        "devices": runner.device_count,
        "replication": runner.replication,
        "hedge": runner.hedge_enabled,
        "working_set": runner.working_set,
        "write_fraction": runner.write_fraction,
        "write_quorum": runner.write_quorum,
        "rebuild_batch": runner.rebuild_batch,
        "vnodes": runner.vnodes,
        "device_kills": runner.device_kills,
        "die_quarantines": runner.die_quarantines,
        "op_index": runner.op_index,
    }
    return Snapshot(
        kind=FLEET_SNAPSHOT_KIND, meta=meta, state=runner.snapshot_state()
    )


def restore_fleet_runner(snapshot: Snapshot) -> FleetRunner:
    """Rebuild a runner from a snapshot (constructors first, then state).

    The ring, fault plan, and device RNG streams are pure functions of the
    meta fields, so only membership and mutable state are overlaid.
    """
    if snapshot.kind != FLEET_SNAPSHOT_KIND:
        raise SnapshotError(
            f"expected a {FLEET_SNAPSHOT_KIND!r} snapshot, got {snapshot.kind!r}"
        )
    meta = snapshot.meta
    runner = FleetRunner(
        meta["seed"],
        meta["requests"],
        devices=meta["devices"],
        replication=meta["replication"],
        hedge=meta["hedge"],
        working_set=meta["working_set"],
        write_fraction=meta["write_fraction"],
        write_quorum=meta["write_quorum"],
        rebuild_batch=meta["rebuild_batch"],
        vnodes=meta["vnodes"],
        device_kills=meta["device_kills"],
        die_quarantines=meta["die_quarantines"],
    )
    runner.restore_state(snapshot.state)
    return runner


__all__ = [
    "FLEET_SNAPSHOT_KIND",
    "restore_fleet_runner",
    "snapshot_fleet_runner",
]
