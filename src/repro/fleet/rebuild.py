"""The replication ledger and background rebuild state machine.

The manager owns the *placement* truth — which devices currently hold each
key — and keeps it synchronized with faults: a device kill or die
quarantine removes the lost holders, enqueues repairs, and starts the
under-replicated clock. ``pump_rebuild`` then drains the repair queue a
bounded batch per step (reading a surviving copy, installing it on the
next ring target), so a rebuild spans many steps and the crash-point
oracle can land checkpoints in the middle of one.

Reliability counters follow the SRE convention: the *time integral* of
under-replicated keys (key-seconds of exposure) is the primary metric —
a rebuild that finishes twice as fast halves it even when the same keys
were exposed.

State machine per key (tracked implicitly by ``holders`` and the queue):

    replicated --[holder lost]--> under-replicated (+repair queued)
    under-replicated --[pump installs a copy]--> replicated
    under-replicated --[last holder lost]--> lost (terminal; counted)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.fleet.device import FleetDevice
from repro.fleet.topology import FleetTopology


class RebuildManager:
    """Placement ledger + quarantine/kill-triggered background rebuild."""

    def __init__(
        self,
        topology: FleetTopology,
        devices: Dict[int, FleetDevice],
        replication: int,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.topology = topology
        self.devices = devices
        self.replication = replication
        self._placement: Dict[int, List[int]] = {}  # key -> sorted holder ids
        self._queue: List[int] = []  # keys awaiting repair, FIFO, deduped
        self._queued: Dict[int, bool] = {}
        self._under = 0  # keys currently holding 0 < n < replication copies
        self._lost: Dict[int, bool] = {}
        self._last_accounted = 0.0
        self.counters: Dict[str, int] = {}
        self.under_replicated_key_seconds = 0.0
        self.max_under_replicated = 0

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def holders(self, key: int) -> List[int]:
        return list(self._placement.get(key, []))

    @property
    def pending(self) -> int:
        """Repairs still queued (the oracle uses this to spot mid-rebuild)."""
        return len(self._queue)

    @property
    def under_replicated(self) -> int:
        return self._under

    @property
    def keys_lost(self) -> int:
        return len(self._lost)

    def _is_under(self, key: int) -> bool:
        n = len(self._placement.get(key, []))
        return 0 < n < self.replication

    def _track(self, key: int, was_under: bool) -> None:
        is_under = self._is_under(key)
        if is_under and not was_under:
            self._under += 1
            self.max_under_replicated = max(self.max_under_replicated, self._under)
        elif was_under and not is_under:
            self._under -= 1

    def _enqueue(self, key: int) -> None:
        if not self._queued.get(key, False):
            self._queue.append(key)
            self._queued[key] = True

    # -- write/fault notifications --------------------------------------------

    def record_write(self, now: float, key: int, replicas: Iterable[int]) -> None:
        """A routed write landed on ``replicas``; refresh the ledger."""
        self.account(now)
        was_under = self._is_under(key)
        self._placement[key] = sorted(replicas)
        self._lost.pop(key, None)
        self._track(key, was_under)
        if self._is_under(key):
            self._count("writes_under_replicated")
            self._enqueue(key)

    def device_lost(self, now: float, device_id: int) -> int:
        """A whole device died; strip it from every placement.

        Returns the number of keys that lost a replica. Keys left with no
        holder are terminally lost (counted, not queued — there is nothing
        to copy from).
        """
        self.account(now)
        affected = 0
        for key in sorted(self._placement):
            holder_list = self._placement[key]
            if device_id not in holder_list:
                continue
            was_under = self._is_under(key)
            holder_list.remove(device_id)
            affected += 1
            if holder_list:
                self._track(key, was_under)
                self._enqueue(key)
            else:
                self._track(key, was_under)
                if not self._lost.get(key, False):
                    self._lost[key] = True
                    self._count("keys_lost")
        self._count("devices_lost")
        return affected

    def replicas_dropped(self, now: float, device_id: int, keys: Iterable[int]) -> int:
        """A die quarantine dropped specific keys from one device."""
        self.account(now)
        affected = 0
        for key in keys:
            holder_list = self._placement.get(key)
            if holder_list is None or device_id not in holder_list:
                continue
            was_under = self._is_under(key)
            holder_list.remove(device_id)
            affected += 1
            if holder_list:
                self._track(key, was_under)
                self._enqueue(key)
            else:
                self._track(key, was_under)
                if not self._lost.get(key, False):
                    self._lost[key] = True
                    self._count("keys_lost")
        if affected:
            self._count("quarantine_drops", affected)
        return affected

    # -- the rebuild pump ------------------------------------------------------

    def pump_rebuild(self, now: float, budget: int = 4) -> int:
        """Repair up to ``budget`` queued keys; returns repairs completed.

        Each repair reads a surviving copy (``peek`` — background traffic,
        no fault surface) and installs it on the next alive ring target
        not already holding the key. A key whose survivors all disappeared
        before its turn is terminally lost.
        """
        self.account(now)
        completed = 0
        while self._queue and completed < budget:
            key = self._queue.pop(0)
            self._queued[key] = False
            holder_list = self._placement.get(key, [])
            was_under = self._is_under(key)
            if not holder_list:
                continue  # lost while queued; already counted
            if len(holder_list) >= self.replication:
                continue  # a later write already restored it
            survivors = [
                d for d in holder_list
                if self.devices[d].alive and self.devices[d].holds(key)
            ]
            if not survivors:
                self._placement[key] = []
                self._track(key, was_under)
                if not self._lost.get(key, False):
                    self._lost[key] = True
                    self._count("keys_lost")
                self._count("rebuild_failures")
                continue
            targets = [
                d
                for d in self.topology.replicas_for(key, count=self.replication)
                if d not in holder_list and self.devices[d].alive
            ]
            if not targets:
                self._count("rebuild_no_target")
                continue  # fleet too small to re-replicate; leave as-is
            value = self.devices[survivors[0]].peek(key)
            if not self.devices[targets[0]].install_replica(key, value):
                self._count("rebuild_failures")
                self._enqueue(key)
                continue
            holder_list.append(targets[0])
            holder_list.sort()
            self._track(key, was_under)
            completed += 1
            self._count("rebuilds_completed")
            if self._is_under(key):
                self._enqueue(key)  # still short (replication > 2); keep going
        return completed

    # -- under-replication clock ----------------------------------------------

    def account(self, now: float) -> None:
        """Advance the under-replicated key-seconds integral to ``now``."""
        if now > self._last_accounted:
            self.under_replicated_key_seconds += self._under * (
                now - self._last_accounted
            )
            self._last_accounted = now

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "placement": [(k, list(self._placement[k])) for k in sorted(self._placement)],
            "queue": list(self._queue),
            "queued": [(k, self._queued[k]) for k in sorted(self._queued)],
            "under": self._under,
            "lost": [(k, self._lost[k]) for k in sorted(self._lost)],
            "last_accounted": self._last_accounted,
            "counters": [(k, self.counters[k]) for k in sorted(self.counters)],
            "under_replicated_key_seconds": self.under_replicated_key_seconds,
            "max_under_replicated": self.max_under_replicated,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._placement = {key: list(holders) for key, holders in state["placement"]}
        self._queue = list(state["queue"])
        self._queued = {key: value for key, value in state["queued"]}
        self._under = state["under"]
        self._lost = {key: value for key, value in state["lost"]}
        self._last_accounted = state["last_accounted"]
        self.counters = {key: value for key, value in state["counters"]}
        self.under_replicated_key_seconds = state["under_replicated_key_seconds"]
        self.max_under_replicated = state["max_under_replicated"]

    def summary_rows(self) -> List[Tuple[str, str]]:
        """Deterministic (name, value) rows for reports and CSV export."""
        rows: List[Tuple[str, str]] = [
            ("under_replicated_now", str(self._under)),
            ("max_under_replicated", str(self.max_under_replicated)),
            ("under_replicated_key_seconds", repr(self.under_replicated_key_seconds)),
            ("keys_lost", str(self.keys_lost)),
            ("rebuild_pending", str(self.pending)),
        ]
        rows.extend((name, str(self.counters[name])) for name in sorted(self.counters))
        return rows


__all__ = ["RebuildManager"]
