"""The fleet lab: replication-on vs replication-off under device chaos.

:class:`FleetRunner` drives a seeded keyed workload through the shard
router while a :class:`~repro.faults.plan.FaultPlan` kills devices,
quarantines dies, and throws latency storms at the fleet. Both lab arms
see the *same* plan — only the replication factor and hedging differ — so
the A/B comparison isolates exactly what k-way replication buys:
availability (a killed device's keys survive on replicas) and read tail
(hedging races replicas instead of waiting out a storm).

The runner is stepped (one request per :meth:`step`) and quiescent between
steps — the engine queue drains inside each routed read — which is what
lets fleet checkpoints land between any two requests and the crash oracle
cut the run mid-rebuild.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.prng import XorShift64
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanConfig
from repro.fleet.device import DeviceConfig, FleetDevice
from repro.fleet.rebuild import RebuildManager
from repro.fleet.router import FleetRefusal, ShardRouter
from repro.fleet.topology import FleetTopology, seeded_mix
from repro.platform.metrics import SloTracker
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import HedgePolicy
from repro.sim.engine import Engine

_WORKLOAD_SALT = 0x0F1EE7
_PAYLOAD_BYTES = 16


def _payload(seed: int, key: int, version: int) -> bytes:
    """Deterministic per-(key, version) payload; doubles as ground truth."""
    blob = f"{seed}:{key}:{version}".encode("ascii")
    return hashlib.sha256(blob).digest()[:_PAYLOAD_BYTES]


@dataclass(frozen=True)
class FleetChaosConfig:
    """How much chaos the fault plan throws at the fleet."""

    device_kills: int = 1
    die_quarantines: int = 2
    read_bursts: int = 4
    hard_uncorrectables: int = 1
    stalls: int = 1

    def plan_config(self) -> FaultPlanConfig:
        return FaultPlanConfig(
            read_bursts=self.read_bursts,
            uncorrectable_pages=self.die_quarantines,
            hard_uncorrectables=self.hard_uncorrectables,
            die_failures=self.device_kills,
            dram_corruptions=0,
            power_losses=self.stalls,
            power_losses_mid_gc=0,
        )


class FleetRunner:
    """One lab arm: a fleet, a router, a rebuild manager, and a workload.

    Constructor arguments are all primitives so a checkpoint can rebuild
    the runner from its snapshot meta alone.
    """

    def __init__(
        self,
        seed: int,
        requests: int,
        devices: int = 6,
        replication: int = 2,
        hedge: bool = True,
        working_set: int = 64,
        write_fraction: float = 0.3,
        write_quorum: int = 1,
        rebuild_batch: int = 4,
        vnodes: int = 16,
        device_kills: int = 1,
        die_quarantines: int = 2,
    ) -> None:
        if requests < 1:
            raise ValueError("need at least one request")
        if not 1 <= working_set <= requests:
            raise ValueError("working_set must lie in [1, requests]")
        self.seed = seed
        self.requests = requests
        self.device_count = devices
        self.replication = replication
        self.hedge_enabled = hedge
        self.working_set = working_set
        self.write_fraction = write_fraction
        self.write_quorum = write_quorum
        self.rebuild_batch = rebuild_batch
        self.vnodes = vnodes
        self.device_kills = device_kills
        self.die_quarantines = die_quarantines

        self.engine = Engine()
        device_ids = list(range(devices))
        self.topology = FleetTopology(
            seed, device_ids, vnodes=vnodes, replication=replication
        )
        self.devices: Dict[int, FleetDevice] = {
            d: FleetDevice(d, seed, DeviceConfig()) for d in device_ids
        }
        self.breakers = BreakerBoard()
        self.slo = SloTracker()
        hedge_policy: Optional[HedgePolicy] = HedgePolicy() if hedge else None
        self.router = ShardRouter(
            self.engine,
            self.topology,
            self.devices,
            breakers=self.breakers,
            hedge=hedge_policy,
            read_observed=self.slo,
        )
        self.rebuild = RebuildManager(self.topology, self.devices, replication)
        self.plan = FaultPlan.generate(
            seed,
            requests,
            FleetChaosConfig(
                device_kills=device_kills, die_quarantines=die_quarantines
            ).plan_config(),
        )
        self._rng = XorShift64(seeded_mix(seed ^ _WORKLOAD_SALT, requests) or 1)
        self.interarrival_s = 100e-6
        # a refused request is tail latency, not a no-op: the client burns
        # its whole deadline before giving up (see docs/SERVING.md taxonomy)
        self.client_deadline_s = 1.5e-3
        self.op_index = 0
        self._next_arrival = 0.0
        self._versions: Dict[int, int] = {}
        self._expected: Dict[int, bytes] = {}
        self.failure_reasons: Dict[str, int] = {}
        self.hedged_reads = 0
        self.event_log: List[str] = []
        self._finalized: Dict[str, Any] = {}

    # -- fault translation -----------------------------------------------------

    def _apply_fault(self, kind: FaultKind, param: int, now: float) -> None:
        target_id = sorted(self.devices)[param % len(self.devices)]
        device = self.devices[target_id]
        if kind is FaultKind.DIE_FAILURE:
            # promoted to a whole-device chaos kill at fleet scale
            if not device.alive:
                self.event_log.append(f"op={self.op_index} kill dev{target_id} (already dead)")
                return
            device.kill(now)
            self.topology.mark_dead(target_id)
            affected = self.rebuild.device_lost(now, target_id)
            self.event_log.append(
                f"op={self.op_index} kill dev{target_id} affected={affected}"
            )
        elif kind is FaultKind.UNCORRECTABLE_PAGE:
            if not device.alive:
                return
            die = param % device.config.dies
            dropped = device.quarantine_die(now, die)
            affected = self.rebuild.replicas_dropped(now, target_id, dropped)
            self.event_log.append(
                f"op={self.op_index} quarantine dev{target_id} die{die}"
                f" dropped={len(dropped)} affected={affected}"
            )
        elif kind is FaultKind.READ_BURST:
            device.start_storm(now, 40 * self.interarrival_s, credits=param % 3)
            self.event_log.append(f"op={self.op_index} storm dev{target_id}")
        elif kind is FaultKind.HARD_UNCORRECTABLE:
            device.error_credits += 2
            self.event_log.append(f"op={self.op_index} media dev{target_id}")
        elif kind is FaultKind.DRAM_CORRUPTION:
            device.start_storm(now, 10 * self.interarrival_s)
            self.event_log.append(f"op={self.op_index} blip dev{target_id}")
        else:  # POWER_LOSS / POWER_LOSS_MID_GC
            device.stall(now, 20 * self.interarrival_s)
            self.event_log.append(f"op={self.op_index} stall dev{target_id}")

    def _refuse(self, refusal: FleetRefusal) -> None:
        key = refusal.status.value
        self.failure_reasons[key] = self.failure_reasons.get(key, 0) + 1

    # -- the request loop ------------------------------------------------------

    def step(self) -> bool:
        """Issue one request; returns False once the workload is exhausted."""
        if self.op_index >= self.requests:
            return False
        engine = self.engine
        arrival = self._next_arrival
        self._next_arrival = arrival + self.interarrival_s * (
            0.5 + self._rng.next_float()
        )
        for event in self.plan.due(self.op_index):
            self._apply_fault(event.kind, event.param, arrival)
        if engine.now < arrival:
            engine.run(until=arrival)
        now = engine.now

        if self.op_index < self.working_set:
            is_write, key = True, self.op_index  # seed the working set
        else:
            is_write = self._rng.next_float() < self.write_fraction
            key = self._rng.next_below(self.working_set)

        if is_write:
            version = self._versions.get(key, 0) + 1
            value = _payload(self.seed, key, version)
            try:
                outcome = self.router.write(now, key, value, quorum=self.write_quorum)
            except FleetRefusal as refusal:
                self._refuse(refusal)
                self.slo.record(now, "write", self.client_deadline_s, ok=False)
            else:
                self._versions[key] = version
                self._expected[key] = value
                self.rebuild.record_write(now, key, list(outcome.replicas))
                self.slo.record(now, "write", outcome.latency_s, ok=True)
        else:
            holders = self.rebuild.holders(key)
            try:
                outcome = self.router.read(now, key, holders)
            except FleetRefusal as refusal:
                self._refuse(refusal)
                self.slo.record(now, "read", self.client_deadline_s, ok=False)
            else:
                if outcome.hedged:
                    self.hedged_reads += 1
                self.slo.record(now, "read", outcome.latency_s, ok=True)

        self.rebuild.pump_rebuild(self.engine.now, budget=self.rebuild_batch)
        self.op_index += 1
        assert self.engine.pending == 0, "engine must be quiescent between steps"
        return True

    def run_until(self, op_index: int) -> None:
        while self.op_index < min(op_index, self.requests):
            self.step()

    def run(self) -> "FleetArmReport":
        self.run_until(self.requests)
        return self.finalize()

    # -- verification + report -------------------------------------------------

    def finalize(self) -> "FleetArmReport":
        """Final accounting plus a ground-truth sweep over surviving data."""
        if not self._finalized:
            self.rebuild.account(self.engine.now)
            verified = lost = corrupt = 0
            for key in sorted(self._expected):
                holders = [
                    d
                    for d in self.rebuild.holders(key)
                    if self.devices[d].alive and self.devices[d].holds(key)
                ]
                if not holders:
                    lost += 1
                elif self.devices[holders[0]].peek(key) == self._expected[key]:
                    verified += 1
                else:
                    corrupt += 1
            self._finalized = {
                "verified": verified,
                "lost": lost,
                "corrupt": corrupt,
            }
        return FleetArmReport.from_runner(self)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Quiescent-state snapshot (engine queue must be drained)."""
        return {
            "engine": self.engine.snapshot_state(),
            "topology": self.topology.snapshot_state(),
            "devices": [
                (d, self.devices[d].snapshot_state()) for d in sorted(self.devices)
            ],
            "breakers": self.breakers.snapshot_state(),
            "slo": self.slo.snapshot_state(),
            "router": self.router.snapshot_state(),
            "rebuild": self.rebuild.snapshot_state(),
            "rng": self._rng.snapshot_state(),
            "interarrival_s": self.interarrival_s,
            "client_deadline_s": self.client_deadline_s,
            "op_index": self.op_index,
            "next_arrival": self._next_arrival,
            "versions": [(k, self._versions[k]) for k in sorted(self._versions)],
            "expected": [(k, self._expected[k]) for k in sorted(self._expected)],
            "failure_reasons": [
                (k, self.failure_reasons[k]) for k in sorted(self.failure_reasons)
            ],
            "hedged_reads": self.hedged_reads,
            "event_log": list(self.event_log),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.engine.restore_state(state["engine"])
        self.topology.restore_state(state["topology"])
        for device_id, device_state in state["devices"]:
            self.devices[device_id].restore_state(device_state)
        self.breakers.restore_state(state["breakers"])
        self.slo.restore_state(state["slo"])
        self.router.restore_state(state["router"])
        self.rebuild.restore_state(state["rebuild"])
        self._rng.restore_state(state["rng"])
        self.interarrival_s = state["interarrival_s"]
        self.client_deadline_s = state["client_deadline_s"]
        self.op_index = state["op_index"]
        self._next_arrival = state["next_arrival"]
        self._versions = {key: value for key, value in state["versions"]}
        self._expected = {key: value for key, value in state["expected"]}
        self.failure_reasons = {
            key: value for key, value in state["failure_reasons"]
        }
        self.hedged_reads = state["hedged_reads"]
        self.event_log = list(state["event_log"])
        self._finalized = {}


@dataclass(frozen=True)
class FleetArmReport:
    """Everything one lab arm produced, as picklable primitives."""

    seed: int
    requests: int
    devices: int
    replication: int
    hedge: bool
    availability: float
    p50_read_s: float
    p99_read_s: float
    p99_write_s: float
    hedged_reads: int
    hedge_wins: int
    reads_routed: int
    writes_routed: int
    verified: int
    lost: int
    corrupt: int
    keys_lost: int
    rebuilds_completed: int
    max_under_replicated: int
    under_replicated_key_seconds: float
    rebuild_pending: int
    devices_lost: int
    read_digest: str
    failure_reasons: Tuple[Tuple[str, int], ...] = ()
    slo_lines: Tuple[str, ...] = ()
    event_log: Tuple[str, ...] = field(default=())

    @classmethod
    def from_runner(cls, runner: FleetRunner) -> "FleetArmReport":
        counters = runner.router.counters
        rebuild = runner.rebuild
        return cls(
            seed=runner.seed,
            requests=runner.requests,
            devices=runner.device_count,
            replication=runner.replication,
            hedge=runner.hedge_enabled,
            availability=runner.slo.availability(),
            p50_read_s=runner.slo.percentile("read", 50.0),
            p99_read_s=runner.slo.percentile("read", 99.0),
            p99_write_s=runner.slo.percentile("write", 99.0),
            hedged_reads=runner.hedged_reads,
            hedge_wins=counters.get("hedge_wins", 0),
            reads_routed=counters.get("reads_routed", 0),
            writes_routed=counters.get("writes_routed", 0),
            verified=runner._finalized.get("verified", 0),
            lost=runner._finalized.get("lost", 0),
            corrupt=runner._finalized.get("corrupt", 0),
            keys_lost=rebuild.keys_lost,
            rebuilds_completed=rebuild.counters.get("rebuilds_completed", 0),
            max_under_replicated=rebuild.max_under_replicated,
            under_replicated_key_seconds=rebuild.under_replicated_key_seconds,
            rebuild_pending=rebuild.pending,
            devices_lost=rebuild.counters.get("devices_lost", 0),
            read_digest=runner.router.read_digest,
            failure_reasons=tuple(
                (k, runner.failure_reasons[k]) for k in sorted(runner.failure_reasons)
            ),
            slo_lines=tuple(runner.slo.summary_lines()),
            event_log=tuple(runner.event_log),
        )

    def label(self) -> str:
        return (
            f"replication={self.replication}"
            f" hedge={'on' if self.hedge else 'off'}"
        )

    def fingerprint_lines(self) -> List[str]:
        """Every field, deterministically rendered (floats via repr)."""
        lines = [
            f"seed={self.seed} requests={self.requests} devices={self.devices}",
            self.label(),
            f"availability={self.availability!r}",
            f"p50_read_s={self.p50_read_s!r}",
            f"p99_read_s={self.p99_read_s!r}",
            f"p99_write_s={self.p99_write_s!r}",
            f"hedged_reads={self.hedged_reads} hedge_wins={self.hedge_wins}",
            f"reads_routed={self.reads_routed} writes_routed={self.writes_routed}",
            f"verified={self.verified} lost={self.lost} corrupt={self.corrupt}",
            f"keys_lost={self.keys_lost}"
            f" rebuilds_completed={self.rebuilds_completed}"
            f" rebuild_pending={self.rebuild_pending}",
            f"max_under_replicated={self.max_under_replicated}",
            f"under_replicated_key_seconds={self.under_replicated_key_seconds!r}",
            f"devices_lost={self.devices_lost}",
            f"read_digest={self.read_digest}",
        ]
        lines += [f"refusal.{name}={count}" for name, count in self.failure_reasons]
        lines += list(self.slo_lines)
        lines += list(self.event_log)
        return lines

    def fingerprint(self) -> str:
        blob = "\n".join(self.fingerprint_lines()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class FleetReport:
    """The A/B comparison the fleet lab prints and exports."""

    schema = "fleet-lab-report/v1"

    off: FleetArmReport
    on: FleetArmReport

    @classmethod
    def from_arms(cls, off: FleetArmReport, on: FleetArmReport) -> "FleetReport":
        return cls(off=off, on=on)

    @property
    def policy_win(self) -> bool:
        """Replication-on must strictly beat off on availability AND p99."""
        return (
            self.on.availability > self.off.availability
            and self.on.p99_read_s < self.off.p99_read_s
        )

    def format(self) -> str:
        lines = [
            f"fleet lab: seed={self.on.seed} requests={self.on.requests}"
            f" devices={self.on.devices}",
            "",
            f"[A] {self.off.label()}",
        ]
        lines += ["    " + line for line in self.off.fingerprint_lines()[2:14]]
        lines += ["", f"[B] {self.on.label()}"]
        lines += ["    " + line for line in self.on.fingerprint_lines()[2:14]]
        lines += [
            "",
            f"availability: {self.off.availability * 100:.4f}%"
            f" -> {self.on.availability * 100:.4f}%",
            f"p99 read: {self.off.p99_read_s * 1e6:.1f}us"
            f" -> {self.on.p99_read_s * 1e6:.1f}us",
            f"keys lost: {self.off.keys_lost} -> {self.on.keys_lost}",
            f"policy win: {'yes' if self.policy_win else 'no'}",
        ]
        return "\n".join(lines)

    def csv_rows(self) -> List[Dict[str, str]]:
        rows = []
        for arm in (self.off, self.on):
            rows.append(
                {
                    "replication": str(arm.replication),
                    "hedge": "on" if arm.hedge else "off",
                    "availability": repr(arm.availability),
                    "p99_read_s": repr(arm.p99_read_s),
                    "keys_lost": str(arm.keys_lost),
                    "rebuilds_completed": str(arm.rebuilds_completed),
                    "under_replicated_key_seconds": repr(
                        arm.under_replicated_key_seconds
                    ),
                    "fingerprint": arm.fingerprint(),
                }
            )
        return rows

    def to_json(self) -> Dict[str, Any]:
        def arm_dict(arm: FleetArmReport) -> Dict[str, Any]:
            return {
                "replication": arm.replication,
                "hedge": arm.hedge,
                "availability": arm.availability,
                "p50_read_s": arm.p50_read_s,
                "p99_read_s": arm.p99_read_s,
                "hedged_reads": arm.hedged_reads,
                "hedge_wins": arm.hedge_wins,
                "verified": arm.verified,
                "lost": arm.lost,
                "keys_lost": arm.keys_lost,
                "rebuilds_completed": arm.rebuilds_completed,
                "max_under_replicated": arm.max_under_replicated,
                "under_replicated_key_seconds": arm.under_replicated_key_seconds,
                "devices_lost": arm.devices_lost,
                "failure_reasons": dict(arm.failure_reasons),
                "fingerprint": arm.fingerprint(),
            }

        return {
            "schema": self.schema,
            "seed": self.on.seed,
            "requests": self.on.requests,
            "devices": self.on.devices,
            "replication_off": arm_dict(self.off),
            "replication_on": arm_dict(self.on),
            "policy_win": self.policy_win,
        }

    def fingerprint(self) -> str:
        blob = f"{self.off.fingerprint()}|{self.on.fingerprint()}".encode("ascii")
        return hashlib.sha256(blob).hexdigest()


def run_fleet_arm(
    seed: int,
    requests: int,
    devices: int = 6,
    replication: int = 2,
    hedge: bool = True,
    working_set: int = 64,
    write_quorum: int = 1,
    rebuild_batch: int = 4,
    device_kills: int = 1,
    die_quarantines: int = 2,
) -> FleetArmReport:
    """Run one lab arm start to finish (pure function of its arguments)."""
    runner = FleetRunner(
        seed,
        requests,
        devices=devices,
        replication=replication,
        hedge=hedge,
        working_set=working_set,
        write_quorum=write_quorum,
        rebuild_batch=rebuild_batch,
        device_kills=device_kills,
        die_quarantines=die_quarantines,
    )
    return runner.run()


def run_fleet(
    seed: int,
    requests: int,
    devices: int = 6,
    replication: int = 2,
    working_set: int = 64,
    device_kills: int = 1,
    die_quarantines: int = 2,
) -> FleetReport:
    """Both arms, same seed and chaos plan: replication-off vs -on."""
    off = run_fleet_arm(
        seed,
        requests,
        devices=devices,
        replication=1,
        hedge=False,
        working_set=working_set,
        device_kills=device_kills,
        die_quarantines=die_quarantines,
    )
    on = run_fleet_arm(
        seed,
        requests,
        devices=devices,
        replication=replication,
        hedge=True,
        working_set=working_set,
        device_kills=device_kills,
        die_quarantines=die_quarantines,
    )
    return FleetReport.from_arms(off, on)


__all__ = [
    "FleetArmReport",
    "FleetChaosConfig",
    "FleetReport",
    "FleetRunner",
    "run_fleet",
    "run_fleet_arm",
]
