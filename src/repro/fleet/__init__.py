"""repro.fleet — sharded multi-SSD scale-out with k-way replication.

N simulated SSD devices behind a seeded consistent-hash shard router:
reads hedge across replicas (`repro.resilience` policy), per-device
circuit breakers feed replica selection, and a die quarantine or
whole-device kill triggers rebalance plus background rebuild of lost
replicas from survivors. Fleet checkpoints extend the `repro.recovery`
crash oracle to the whole fabric; the lab proves replication-on strictly
beats replication-off on availability and read tail under device chaos.
"""

from repro.fleet.checkpoint import (
    FLEET_SNAPSHOT_KIND,
    restore_fleet_runner,
    snapshot_fleet_runner,
)
from repro.fleet.device import DeviceConfig, DeviceResult, FleetDevice
from repro.fleet.lab import (
    FleetArmReport,
    FleetChaosConfig,
    FleetReport,
    FleetRunner,
    run_fleet,
    run_fleet_arm,
)
from repro.fleet.oracle import FleetOraclePoint, FleetOracleReport, run_fleet_oracle
from repro.fleet.rebuild import RebuildManager
from repro.fleet.router import (
    FleetRefusal,
    ReadOutcome,
    ShardRouter,
    TopologyChannelRouter,
    WriteOutcome,
)
from repro.fleet.topology import FleetTopology, seeded_mix

__all__ = [
    "DeviceConfig",
    "DeviceResult",
    "FLEET_SNAPSHOT_KIND",
    "FleetArmReport",
    "FleetChaosConfig",
    "FleetDevice",
    "FleetOraclePoint",
    "FleetOracleReport",
    "FleetRefusal",
    "FleetReport",
    "FleetRunner",
    "FleetTopology",
    "ReadOutcome",
    "RebuildManager",
    "ShardRouter",
    "TopologyChannelRouter",
    "WriteOutcome",
    "restore_fleet_runner",
    "run_fleet",
    "run_fleet_arm",
    "run_fleet_oracle",
    "seeded_mix",
    "snapshot_fleet_runner",
]
