"""Fleet crash-point oracle: kill the fleet mid-rebuild, restore, finish.

Extends the `repro.recovery` differential oracle to the fleet fabric: one
golden uninterrupted replication-on run fixes the target fingerprint, then
for every crash point the sweep runs a fresh fleet to that request index,
checkpoints it through disk, discards the live runner, restores from the
file, finishes, and demands the byte-identical fingerprint. With a rebuild
batch of 1 the repair queue stays populated for many requests after a
device kill, so a healthy sweep necessarily lands crash points *inside* a
rebuild — the report counts them (``mid_rebuild``) so the test can assert
the interesting case was actually exercised.

The corruption probe (one flipped byte must be rejected before any state
reaches the simulator) runs once per sweep, same as the chaos oracle.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.fleet.checkpoint import (
    FLEET_SNAPSHOT_KIND,
    restore_fleet_runner,
    snapshot_fleet_runner,
)
from repro.fleet.lab import FleetRunner
from repro.recovery.oracle import crash_points
from repro.recovery.snapshot import (
    SnapshotCorruptError,
    load_snapshot,
    save_snapshot,
)


@dataclass(frozen=True)
class FleetOraclePoint:
    """One fleet crash point's verdict."""

    seed: int
    crash_op: int
    mid_rebuild: bool  # the repair queue was non-empty at the cut
    matched: bool
    golden_digest: str
    resumed_digest: str


@dataclass
class FleetOracleReport:
    """Outcome of a fleet crash-point sweep."""

    requests: int
    devices: int
    replication: int
    points: List[FleetOraclePoint] = field(default_factory=list)
    corruption_rejected: bool = False

    @property
    def passed(self) -> int:
        return sum(1 for p in self.points if p.matched)

    @property
    def failed(self) -> int:
        return len(self.points) - self.passed

    @property
    def mid_rebuild_points(self) -> int:
        return sum(1 for p in self.points if p.mid_rebuild)

    @property
    def all_passed(self) -> bool:
        return self.failed == 0 and self.corruption_rejected and bool(self.points)

    def format(self) -> str:
        seeds = sorted({p.seed for p in self.points})
        lines = [
            f"fleet oracle: {len(self.points)} crash points over "
            f"{len(seeds)} seeds, {self.requests} requests,"
            f" {self.devices} devices, replication={self.replication}",
            f"  byte-identical  : {self.passed}/{len(self.points)}",
            f"  mid-rebuild cuts: {self.mid_rebuild_points}",
            "  corrupt snapshot: "
            + (
                "rejected (content fingerprint)"
                if self.corruption_rejected
                else "NOT REJECTED"
            ),
        ]
        for point in self.points:
            if not point.matched:
                lines.append(
                    f"  MISMATCH seed={point.seed} crash_op={point.crash_op}: "
                    f"{point.resumed_digest[:16]} != {point.golden_digest[:16]}"
                )
        return "\n".join(lines)


def _digest(fingerprint: str) -> str:
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()


def _probe_corruption(path: str) -> bool:
    """Flip one byte of a saved snapshot; loading must refuse it."""
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[len(blob) // 2] ^= 0x01
    corrupt_path = path + ".corrupt"
    with open(corrupt_path, "wb") as fh:
        fh.write(bytes(blob))
    try:
        load_snapshot(corrupt_path, expect_kind=FLEET_SNAPSHOT_KIND)
    except SnapshotCorruptError:
        return True
    finally:
        os.unlink(corrupt_path)
    return False


def _build(seed: int, requests: int, devices: int, replication: int) -> FleetRunner:
    # rebuild_batch=1 stretches each rebuild across many requests so the
    # crash-point sweep reliably cuts mid-rebuild
    return FleetRunner(
        seed,
        requests,
        devices=devices,
        replication=replication,
        hedge=True,
        working_set=min(48, requests),
        rebuild_batch=1,
    )


def run_fleet_oracle(
    base_seed: int = 42,
    seeds: int = 2,
    points: int = 7,
    requests: int = 400,
    devices: int = 6,
    replication: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> FleetOracleReport:
    """Sweep ``points`` crash points across ``seeds`` consecutive seeds."""
    report = FleetOracleReport(
        requests=requests, devices=devices, replication=replication
    )
    sweep = crash_points(requests, points)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-oracle-") as tmp:
        for seed in range(base_seed, base_seed + seeds):
            golden_fp = _build(seed, requests, devices, replication).run().fingerprint()
            golden_digest = _digest(golden_fp)
            for crash_op in sweep:
                runner = _build(seed, requests, devices, replication)
                runner.run_until(crash_op)
                mid_rebuild = runner.rebuild.pending > 0
                path = os.path.join(tmp, f"seed{seed}-op{crash_op}.snap")
                save_snapshot(snapshot_fleet_runner(runner), path)
                del runner  # the hard kill: only the file survives
                loaded = load_snapshot(path, expect_kind=FLEET_SNAPSHOT_KIND)
                if not report.corruption_rejected:
                    report.corruption_rejected = _probe_corruption(path)
                resumed = restore_fleet_runner(loaded)
                resumed.run_until(requests)
                resumed_fp = resumed.finalize().fingerprint()
                matched = resumed_fp == golden_fp
                report.points.append(
                    FleetOraclePoint(
                        seed=seed,
                        crash_op=crash_op,
                        mid_rebuild=mid_rebuild,
                        matched=matched,
                        golden_digest=golden_digest,
                        resumed_digest=_digest(resumed_fp),
                    )
                )
                if progress is not None:
                    status = "ok" if matched else "MISMATCH"
                    tag = " mid-rebuild" if mid_rebuild else ""
                    progress(f"seed={seed} crash_op={crash_op}{tag}: {status}")
    return report


__all__ = [
    "FleetOraclePoint",
    "FleetOracleReport",
    "run_fleet_oracle",
]
