"""The shard router: replica selection, hedged reads, typed refusals.

Reads race replicas the way the resilience lab hedges channels, but at
device granularity: the primary command is issued immediately, and once
the observed-latency quantile elapses without a completion the router
issues a duplicate to the next replica (`HedgePolicy` decides when). The
first success wins; every other outstanding event is cancelled through
:meth:`~repro.sim.engine.Engine.cancel`, so the engine heap stays bounded
under heavy hedging — the fleet tests pin ``queued_entries == 0`` between
steps.

Per-device circuit breakers feed replica selection: an open breaker drops
that device to the back of the candidate order instead of queueing doomed
commands behind it. Refusals are typed (:class:`FleetRefusal`) and carry
the `repro.serve.wire` taxonomy kind, so the serving layer can map them
onto retryable wire statuses with deterministic retry-after hints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.device import FleetDevice
from repro.fleet.topology import FleetTopology
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import HedgePolicy
from repro.serve.wire import RETRYABLE, retry_after_for, status_for_fleet
from repro.sim.engine import Engine


class FleetRefusal(Exception):
    """A typed fleet-level refusal, mapped onto the wire taxonomy.

    ``kind`` is a `status_for_fleet` key (``replica_exhausted``,
    ``under_replicated``, ``read_error``); ``retryable`` mirrors the wire
    status so callers need no second lookup.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.status = status_for_fleet(kind)
        self.retry_after_s = retry_after_for(self.status)
        self.retryable = self.status in RETRYABLE


@dataclass(frozen=True)
class ReadOutcome:
    """One routed read: winner, latency, and how the race resolved."""

    ok: bool
    latency_s: float
    value: bytes
    winner: int  # device id that served the read (-1 on failure)
    hedged: bool  # a hedge command was actually issued
    attempts: int  # commands issued (primary + failovers + hedge)


@dataclass(frozen=True)
class WriteOutcome:
    """One routed write: replicas reached and the fan-out latency."""

    ok: bool
    latency_s: float
    replicas: Tuple[int, ...]  # device ids that accepted the write


class ShardRouter:
    """Routes keyed reads/writes across the fleet's replica sets."""

    def __init__(
        self,
        engine: Engine,
        topology: FleetTopology,
        devices: Dict[int, FleetDevice],
        breakers: Optional[BreakerBoard] = None,
        hedge: Optional[HedgePolicy] = None,
        read_observed: Optional[Any] = None,  # SloTracker-shaped: sorted_latencies
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.devices = devices
        self.breakers = breakers
        self.hedge = hedge
        self.read_observed = read_observed
        self.counters: Dict[str, int] = {}
        # rolling sha256 over every successful read payload, in completion
        # order: byte-identical whether or not any hedge fired
        self.read_digest = hashlib.sha256(b"fleet-read-digest").hexdigest()

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _absorb_read(self, value: bytes) -> None:
        blob = bytes.fromhex(self.read_digest) + value
        self.read_digest = hashlib.sha256(blob).hexdigest()

    def _feed_breaker(self, device_id: int, now: float, ok: bool) -> None:
        if self.breakers is None:
            return
        breaker = self.breakers.breaker(f"dev{device_id}")
        if ok:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)

    def _hedge_delay(self) -> float:
        assert self.hedge is not None
        observed: List[float] = []
        if self.read_observed is not None:
            observed = self.read_observed.sorted_latencies("read")
        return self.hedge.hedge_delay(observed)

    # -- candidate ordering ----------------------------------------------------

    def read_candidates(self, holders: Sequence[int]) -> List[int]:
        """Alive holders, breaker-allowed first, each group in id order.

        ``allow()`` spends HALF_OPEN probe slots, so it is consulted once
        per routing decision (here), not speculatively per attempt.
        """
        now = self.engine.now
        preferred: List[int] = []
        backstop: List[int] = []
        for device_id in sorted(holders):
            if not self.devices[device_id].alive:
                continue
            if self.breakers is None or self.breakers.breaker(
                f"dev{device_id}"
            ).allow(now):
                preferred.append(device_id)
            else:
                backstop.append(device_id)
        return preferred + backstop

    # -- writes ----------------------------------------------------------------

    def write(
        self,
        now: float,
        key: int,
        value: bytes,
        quorum: int = 1,
    ) -> WriteOutcome:
        """Fan the write out to the key's current replica targets.

        Raises :class:`FleetRefusal`:

        - ``replica_exhausted`` when no alive device can take the write;
        - ``under_replicated`` when fewer than ``quorum`` replicas accepted
          it (retryable: rebuild restores capacity, retrying later helps).
        """
        targets = self.topology.replicas_for(key)
        accepted: List[int] = []
        latency = 0.0
        for device_id in targets:
            result = self.devices[device_id].write(now, key, value)
            self._feed_breaker(device_id, now, result.ok)
            if result.ok:
                accepted.append(device_id)
                latency = max(latency, result.latency_s)
        if not accepted:
            self._count("writes_replica_exhausted")
            raise FleetRefusal(
                "replica_exhausted",
                f"no alive replica target for key {key}",
            )
        if len(accepted) < quorum:
            self._count("writes_under_replicated_refused")
            raise FleetRefusal(
                "under_replicated",
                f"key {key} reached {len(accepted)}/{quorum} write quorum",
            )
        self._count("writes_routed")
        return WriteOutcome(ok=True, latency_s=latency, replicas=tuple(accepted))

    # -- hedged reads ----------------------------------------------------------

    def read(self, now: float, key: int, holders: Sequence[int]) -> ReadOutcome:
        """Issue a (possibly hedged) read; drains the engine to completion.

        ``holders`` is the key's current replica set from the rebuild
        ledger. The engine queue must be empty on entry and is empty again
        on return — the router is the only event producer during a read.

        Raises :class:`FleetRefusal`:

        - ``read_error`` (terminal) when the key has no holders left — the
          data is gone until (unless) rebuild finds a survivor;
        - ``replica_exhausted`` (retryable) when every candidate attempt
          failed without a surviving copy being readable right now.
        """
        candidates = self.read_candidates(holders)
        if not candidates:
            self._count("reads_lost")
            raise FleetRefusal("read_error", f"key {key} has no live replica")
        engine = self.engine
        if engine.now < now:
            engine.run(until=now)
        start = engine.now
        record: Dict[str, Any] = {
            "done": False,
            "ok": False,
            "value": b"",
            "winner": -1,
            "hedged": False,
            "attempts": 0,
            "failed": 0,
            "next": 0,  # cursor into candidates for failover/hedge issue
            "total": len(candidates),
            "events": [],  # outstanding cancellable completion events
            "hedge_event": None,
            "end": start,
        }

        def issue() -> None:
            index = record["next"]
            if index >= len(candidates):
                return
            record["next"] = index + 1
            device_id = candidates[index]
            record["attempts"] += 1
            result = self.devices[device_id].read(engine.now, key)

            def complete() -> None:
                self._settle(record, device_id, result)

            event = engine.schedule(result.latency_s, complete, name=f"read-dev{device_id}")
            record["events"].append(event)

        def fire_hedge() -> None:
            record["hedge_event"] = None
            if record["done"] or record["next"] >= len(candidates):
                return
            record["hedged"] = True
            self._count("hedges_fired")
            issue()

        issue()
        if (
            self.hedge is not None
            and len(candidates) > 1
            and record["next"] < len(candidates)
        ):
            record["hedge_event"] = engine.schedule(
                self._hedge_delay(), fire_hedge, name="hedge-trigger"
            )
        # the router's own retry ladder: when an attempt fails and nothing
        # else is outstanding, _settle issues the next candidate inline, so
        # one run() drains the whole race
        record["issue"] = issue
        engine.run()
        if record["ok"]:
            self._count("reads_routed")
            if record["hedged"] and record["winner"] != candidates[0]:
                self._count("hedge_wins")
            self._absorb_read(record["value"])
            return ReadOutcome(
                ok=True,
                latency_s=record["end"] - start,
                value=record["value"],
                winner=record["winner"],
                hedged=record["hedged"],
                attempts=record["attempts"],
            )
        self._count("reads_replica_exhausted")
        raise FleetRefusal(
            "replica_exhausted",
            f"all {record['attempts']} replica attempts failed for key {key}",
        )

    def _settle(self, record: Dict[str, Any], device_id: int, result: Any) -> None:
        """One attempt completed: resolve the race or ladder onward."""
        engine = self.engine
        if record["done"]:
            return
        self._feed_breaker(device_id, engine.now, result.ok)
        if result.ok:
            record["done"] = True
            record["ok"] = True
            record["value"] = result.value
            record["winner"] = device_id
            record["end"] = engine.now
            for event in record["events"]:
                if event.live:
                    engine.cancel(event)
                    self._count("hedge_losses_cancelled")
            if record["hedge_event"] is not None and record["hedge_event"].live:
                engine.cancel(record["hedge_event"])
                record["hedge_event"] = None
            return
        record["failed"] += 1
        self._count("read_attempt_failures")
        outstanding = sum(1 for event in record["events"] if event.live)
        if outstanding > 0:
            return  # a racing attempt is still in flight; let it settle
        if record["next"] < record["total"]:
            record["issue"]()  # sequential failover to the next candidate
            return
        record["done"] = True
        record["end"] = engine.now
        if record["hedge_event"] is not None and record["hedge_event"].live:
            engine.cancel(record["hedge_event"])
            record["hedge_event"] = None

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Counters and the read digest; collaborators snapshot themselves."""
        return {
            "counters": [(k, self.counters[k]) for k in sorted(self.counters)],
            "read_digest": self.read_digest,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.counters = {key: value for key, value in state["counters"]}
        self.read_digest = state["read_digest"]


class TopologyChannelRouter:
    """Duck-typed channel router for ``OffloadService._pick_channel``.

    The serving layer never imports the fleet layer; it accepts any object
    with ``candidates(op, lpa) -> Sequence[int]``. This adapter maps LPAs
    onto the fleet's consistent-hash replica order so the service's
    breaker-backed failover walks ring replicas instead of the hard-coded
    primary/half-stride pair.
    """

    def __init__(self, topology: FleetTopology) -> None:
        self._topology = topology

    def candidates(self, op: str, lpa: int) -> Tuple[int, ...]:
        return tuple(self._topology.replicas_for(lpa))


__all__ = [
    "FleetRefusal",
    "ReadOutcome",
    "ShardRouter",
    "TopologyChannelRouter",
    "WriteOutcome",
]
