"""Seeded consistent-hash shard topology for a multi-SSD fleet.

Every device contributes ``vnodes`` points to one hash ring; a key's
replica set is the first ``replication`` *distinct, alive* devices walking
clockwise from the key's own ring point. Removing a device (chaos kill,
terminal quarantine) therefore moves only the keys it held — every other
key keeps its exact replica set, which is what bounds rebuild traffic to
the lost replicas.

Determinism: ring points and key points come from a seeded xorshift64*
mix, never from builtin ``hash()`` (whose value depends on
``PYTHONHASHSEED``) — the `fleet-unseeded-topology` lint rule pins this.
The whole topology is a pure function of (seed, device set), so snapshots
only need to record membership, not the ring itself.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Sequence, Tuple

from repro.crypto.prng import XorShift64

_RING_SALT = 0xF1EE7_0B1
_KEY_SALT = 0x5EED_4EA5


def seeded_mix(seed: int, a: int, b: int = 0) -> int:
    """Deterministic 64-bit mix of (seed, a, b) via one xorshift64* draw.

    The explicit-seed constructor is what makes this replayable; builtin
    ``hash()`` would fold in the per-process hash seed.
    """
    basis = (
        ((seed + 1) * 0x9E3779B97F4A7C15)
        ^ ((a + 1) * 0xC2B2AE3D27D4EB4F)
        ^ ((b + 1) * 0x165667B19E3779F9)
    )
    return XorShift64(basis or 1).next_u64()


class FleetTopology:
    """Consistent-hash ring over the fleet's devices.

    ``device_ids`` fixes the ring for the life of the run; devices are
    marked dead rather than excised so a restored snapshot rebuilds the
    identical ring and only membership state varies.
    """

    def __init__(
        self,
        seed: int,
        device_ids: Sequence[int],
        vnodes: int = 16,
        replication: int = 2,
    ) -> None:
        if not device_ids:
            raise ValueError("a fleet needs at least one device")
        if len(set(device_ids)) != len(device_ids):
            raise ValueError("device ids must be unique")
        if vnodes < 1:
            raise ValueError("need at least one vnode per device")
        if not 1 <= replication <= len(device_ids):
            raise ValueError("replication must lie in [1, len(devices)]")
        self.seed = seed
        self.vnodes = vnodes
        self.replication = replication
        self.device_ids = tuple(sorted(device_ids))
        self._alive: Dict[int, bool] = {d: True for d in self.device_ids}
        ring: List[Tuple[int, int]] = []
        for device_id in self.device_ids:
            for vnode in range(vnodes):
                ring.append((seeded_mix(seed ^ _RING_SALT, device_id, vnode), device_id))
        ring.sort()
        points = [point for point, _ in ring]
        # both are pure functions of (seed, device_ids): the constructor
        # rebuilds them on restore, so only membership is snapshotted
        self._ring = ring
        self._points = points

    # -- membership ------------------------------------------------------------

    def is_alive(self, device_id: int) -> bool:
        return self._alive[device_id]

    def alive_devices(self) -> List[int]:
        return [d for d in self.device_ids if self._alive[d]]

    def mark_dead(self, device_id: int) -> bool:
        """Remove a device from placement; True when it was alive."""
        was_alive = self._alive[device_id]
        self._alive[device_id] = False
        return was_alive

    # -- placement -------------------------------------------------------------

    def key_point(self, key: int) -> int:
        return seeded_mix(self.seed ^ _KEY_SALT, key)

    def replicas_for(self, key: int, count: int = 0) -> List[int]:
        """First ``count`` distinct alive devices clockwise from the key.

        Defaults to the configured replication factor; returns fewer when
        the fleet has fewer alive devices (the caller decides whether that
        is an under-replication event or a refusal).
        """
        want = count or self.replication
        start = bisect.bisect_right(self._points, self.key_point(key))
        picked: List[int] = []
        for offset in range(len(self._ring)):
            _, device_id = self._ring[(start + offset) % len(self._ring)]
            if not self._alive[device_id] or device_id in picked:
                continue
            picked.append(device_id)
            if len(picked) == want:
                break
        return picked

    def primary_for(self, key: int) -> int:
        replicas = self.replicas_for(key, count=1)
        if not replicas:
            raise ValueError("no alive device to place the key on")
        return replicas[0]

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Membership only: the ring is a pure function of (seed, devices)."""
        return {"alive": [(d, self._alive[d]) for d in self.device_ids]}

    def restore_state(self, state: Dict[str, Any]) -> None:
        for device_id, alive in state["alive"]:
            self._alive[device_id] = alive


__all__ = ["FleetTopology", "seeded_mix"]
