"""Memory access trace recording for workload characterization.

Operators report their memory behaviour through a :class:`TraceRecorder`:
sequential reads of the streamed input (read-only region), random
reads/writes over hash-table working sets, and sequential writes of
intermediate results (writable region).

Two levels are tracked:

- **CPU-level** counters (``cpu_reads``/``cpu_writes``): every load/store
  the program issues. Their ratio is what Table 1 of the paper reports.
- **DRAM-level** counters and sampled events: accesses that miss the
  on-chip caches and reach SSD DRAM — the traffic the MEE protects and the
  level at which Table 6's extra-traffic percentages are defined. Working
  sets smaller than ``cache_filter_bytes`` are absorbed by the caches
  (their cold fill is a one-time "fixed" cost that does not scale with the
  dataset); larger working sets miss in proportion to the part that does
  not fit, optionally reduced by a hot-subset fraction for skewed (Zipf)
  key distributions.

Counting is done in bulk — a gigabyte-scale scan is one arithmetic update
plus a handful of sampled events, not a per-line Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.crypto.prng import XorShift64

LINE_BYTES = 64
PAGE_BYTES = 4096
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES

# region base page numbers: keeps input/working-set/output pages disjoint
INPUT_REGION_PAGE = 0
WORKSET_REGION_PAGE = 1 << 22
OUTPUT_REGION_PAGE = 1 << 23

AccessEvent = Tuple[int, int, bool, bool]  # (page, line, is_write, readonly)


@dataclass
class AccessTrace:
    """The finished product handed to the simulators."""

    events: List[AccessEvent] = field(default_factory=list)
    cpu_reads: int = 0
    cpu_writes: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    fixed_dram_reads: int = 0  # one-time cold fills; do not scale with input
    fixed_dram_writes: int = 0

    # -- CPU level (Table 1) --

    @property
    def total_accesses(self) -> int:
        return self.cpu_reads + self.cpu_writes

    @property
    def write_ratio(self) -> float:
        """Fraction of CPU memory accesses that are writes (Table 1)."""
        return self.cpu_writes / self.total_accesses if self.total_accesses else 0.0

    # -- DRAM level (MEE, memory timing, Table 6 denominators) --

    @property
    def all_dram_reads(self) -> int:
        return self.dram_reads + self.fixed_dram_reads

    @property
    def all_dram_writes(self) -> int:
        return self.dram_writes + self.fixed_dram_writes

    @property
    def dram_accesses(self) -> int:
        return self.all_dram_reads + self.all_dram_writes


def subsample_events(events: List[AccessEvent], limit: int, chunk: int = 512) -> List[AccessEvent]:
    """Pick ~``limit`` events spread across the whole trace.

    Keeps contiguous chunks intact (the MEE's counter-coverage behaviour
    depends on intra-burst locality) while drawing them from every phase
    of the trace — naive ``events[:limit]`` would see only the first
    phase of a read-then-write workload.
    """
    if limit <= 0:
        return []
    if len(events) <= limit:
        return list(events)
    n_chunks = (len(events) + chunk - 1) // chunk
    keep = max(1, limit // chunk)
    out: List[AccessEvent] = []
    for i in range(keep):
        # chunk indices spread uniformly over the whole trace
        idx = (i * n_chunks) // keep
        out.extend(events[idx * chunk:(idx + 1) * chunk])
    return out[:limit]


class TraceRecorder:
    """Counts every access exactly; samples DRAM events sparsely."""

    def __init__(
        self,
        sample_every: int = 64,
        seed: int = 11,
        max_samples: int = 200_000,
        cache_filter_bytes: int = 1 << 20,
        burst_length: int = 512,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        self.sample_every = sample_every
        self.max_samples = max_samples
        self.cache_filter_bytes = cache_filter_bytes
        self.burst_length = burst_length
        self._rng = XorShift64(seed)
        self.trace = AccessTrace()
        self._tick = 0  # DRAM access counter, for even sampling
        self._input_cursor = 0  # lines
        self._output_cursor = 0  # lines

    # -- internal ---------------------------------------------------------------

    def _sample_slots(self, count: int) -> List[int]:
        """Offsets (within a run of ``count`` DRAM accesses) to sample.

        Sampling happens in *bursts* of ``burst_length`` consecutive
        accesses out of every ``burst_length * sample_every`` — one access
        in ``sample_every`` overall, but with intra-burst spatial locality
        preserved, which the MEE's counter-coverage behaviour depends on.
        """
        period = self.burst_length * self.sample_every
        room = self.max_samples - len(self.trace.events)
        if room <= 0:
            self._tick += count
            return []
        slots = []
        offset = self._tick % period
        pos = 0
        while pos < count and len(slots) < room:
            in_period = (offset + pos) % period
            if in_period < self.burst_length:
                slots.append(pos)
                pos += 1
            else:
                pos += period - in_period  # jump to the next burst start
        self._tick += count
        return slots

    @staticmethod
    def _page_line(region_base: int, line_index: int) -> Tuple[int, int]:
        return region_base + line_index // LINES_PER_PAGE, line_index % LINES_PER_PAGE

    # -- operator-facing API --------------------------------------------------------

    def read_input(self, nbytes: int) -> None:
        """Sequential reads of the streamed (read-only) input region.

        Streamed data has no reuse, so every line read reaches DRAM.
        """
        lines = max(1, int(nbytes) // LINE_BYTES)
        self.trace.cpu_reads += lines
        self.trace.dram_reads += lines
        for offset in self._sample_slots(lines):
            page, line = self._page_line(INPUT_REGION_PAGE, self._input_cursor + offset)
            self.trace.events.append((page, line, False, True))
        self._input_cursor += lines

    def read_workset(
        self,
        working_set_bytes: int,
        count: int = 1,
        hot_fraction: float = 0.0,
        readonly: bool = False,
    ) -> None:
        """Random reads within a working set (hash probes, dimension gathers).

        Pass ``readonly=True`` for gathers over read-only data (dimension
        tables): their events land in the read-only region, so the MEE's
        hybrid-counter fast path applies.
        """
        self._workset(working_set_bytes, count, hot_fraction, is_write=False, readonly=readonly)

    def write_workset(self, working_set_bytes: int, count: int = 1, hot_fraction: float = 0.0) -> None:
        """Random writes within a writable working set (hash inserts/updates)."""
        self._workset(working_set_bytes, count, hot_fraction, is_write=True)

    def _workset(
        self,
        working_set_bytes: int,
        count: int,
        hot_fraction: float,
        is_write: bool,
        readonly: bool = False,
    ) -> None:
        if count <= 0:
            return
        if not 0.0 <= hot_fraction < 1.0:
            raise ValueError("hot_fraction must lie in [0, 1)")
        lines = max(1, int(working_set_bytes) // LINE_BYTES)
        if is_write:
            self.trace.cpu_writes += count
        else:
            self.trace.cpu_reads += count
        ws_bytes = lines * LINE_BYTES
        if ws_bytes <= self.cache_filter_bytes:
            # one-time cold fill / final writeback: does not scale with input
            dram_count = min(count, lines)
            if is_write:
                self.trace.fixed_dram_writes += dram_count
            else:
                self.trace.fixed_dram_reads += dram_count
        else:
            # accesses to the cache-resident hot subset never reach DRAM;
            # the rest miss in proportion to the uncached part
            miss_fraction = (1.0 - hot_fraction) * (
                1.0 - self.cache_filter_bytes / ws_bytes
            )
            dram_count = max(1, int(count * miss_fraction))
            if is_write:
                self.trace.dram_writes += dram_count
            else:
                self.trace.dram_reads += dram_count
        region = INPUT_REGION_PAGE if readonly else WORKSET_REGION_PAGE
        for _ in self._sample_slots(dram_count):
            idx = self._rng.next_below(lines)
            page, line = self._page_line(region, idx)
            self.trace.events.append((page, line, is_write, readonly))

    def write_output(self, nbytes: int) -> None:
        """Sequential writes of results/intermediate data."""
        lines = max(1, int(nbytes) // LINE_BYTES)
        self.trace.cpu_writes += lines
        self.trace.dram_writes += lines
        for offset in self._sample_slots(lines):
            page, line = self._page_line(OUTPUT_REGION_PAGE, self._output_cursor + offset)
            self.trace.events.append((page, line, True, False))
        self._output_cursor += lines

    def finish(self) -> AccessTrace:
        return self.trace
