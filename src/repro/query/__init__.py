"""Mini columnar query engine.

Executes the paper's workloads (Table 4) for real over generated data while
counting the work performed: rows touched, bytes moved, instruction
estimates, and a sampled DRAM-level access trace that drives the MEE and
cache simulations.
"""

from repro.query.table import Table
from repro.query.trace import AccessTrace, TraceRecorder
from repro.query.operators import (
    OpStats,
    aggregate,
    filter_rows,
    hash_join,
    scan,
)

__all__ = [
    "Table",
    "AccessTrace",
    "TraceRecorder",
    "OpStats",
    "aggregate",
    "filter_rows",
    "hash_join",
    "scan",
]
