"""Columnar tables backed by numpy arrays."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class Table:
    """An immutable columnar table: name -> equally sized numpy arrays."""

    def __init__(self, name: str, columns: Dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns in table {name}: {lengths}")
        self.name = name
        self.columns = dict(columns)
        self.num_rows = lengths.pop()

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            known = ", ".join(sorted(self.columns))
            raise KeyError(f"table {self.name} has no column '{name}' (has: {known})") from None

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    def row_bytes(self) -> int:
        """Bytes per row across all columns."""
        return sum(col.dtype.itemsize for col in self.columns.values())

    def total_bytes(self) -> int:
        return self.row_bytes() * self.num_rows

    def take(self, mask_or_index: np.ndarray, name: Optional[str] = None) -> "Table":
        """Row subset by boolean mask or integer index array."""
        return Table(
            name or f"{self.name}_subset",
            {col_name: col[mask_or_index] for col_name, col in self.columns.items()},
        )

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)), f"{self.name}_head")
