"""Relational operators with work accounting.

Each operator really computes its result (numpy-vectorized) and reports the
work performed into an :class:`OpStats`: rows and bytes touched, an
instruction estimate (per-row costs calibrated for simple cores), and the
DRAM access pattern via a :class:`TraceRecorder`.

Instruction-cost constants are per row: a predicate evaluation is a few
ALU ops + a compare; hash build/probe includes hashing and bucket chasing.
Only ratios matter for the reproduction (compute intensity per byte).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.query.table import Table
from repro.query.trace import TraceRecorder

# per-row instruction estimates
COST_SCAN = 4
COST_FILTER = 8
COST_ARITHMETIC = 14
COST_AGG_UPDATE = 12
COST_HASH_BUILD = 45
COST_HASH_PROBE = 32
COST_EMIT = 10

HASH_ENTRY_BYTES = 32
REGISTER_RESIDENT_BYTES = 2048  # accumulator sets below this never hit memory


@dataclass
class OpStats:
    """Accumulated work over a query plan."""

    rows_read: int = 0
    rows_emitted: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    instructions: float = 0.0

    def merge(self, other: "OpStats") -> "OpStats":
        self.rows_read += other.rows_read
        self.rows_emitted += other.rows_emitted
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.instructions += other.instructions
        return self


def scan(
    table: Table,
    columns: Sequence[str],
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
) -> Dict[str, np.ndarray]:
    """Stream selected columns of a table; the base of every plan."""
    out = {name: table.column(name) for name in columns}
    nbytes = sum(col.dtype.itemsize for col in out.values()) * table.num_rows
    stats.rows_read += table.num_rows
    stats.bytes_read += nbytes
    stats.instructions += COST_SCAN * table.num_rows
    if recorder is not None:
        recorder.read_input(nbytes)
    return out


def filter_rows(
    table: Table,
    predicate: Callable[[Table], np.ndarray],
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
) -> Table:
    """Select rows matching a vectorized predicate."""
    mask = predicate(table)
    if mask.dtype != np.bool_ or len(mask) != table.num_rows:
        raise ValueError("predicate must return a boolean mask over all rows")
    stats.rows_read += table.num_rows
    stats.bytes_read += table.total_bytes()
    stats.instructions += COST_FILTER * table.num_rows
    result = table.take(mask, f"{table.name}_filtered")
    stats.rows_emitted += result.num_rows
    stats.instructions += COST_EMIT * result.num_rows
    # pipelined: matching rows flow to the next operator in registers/cache,
    # so a filter costs input reads but no DRAM materialization
    if recorder is not None:
        recorder.read_input(table.total_bytes())
    return result


def arithmetic(
    table: Table,
    expr: Callable[[Table], np.ndarray],
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
    out_name: str = "value",
) -> Table:
    """Row-wise computed column (the Arithmetic workload of Table 4)."""
    values = expr(table)
    stats.rows_read += table.num_rows
    stats.bytes_read += table.total_bytes()
    stats.rows_emitted += len(values)
    stats.instructions += COST_ARITHMETIC * table.num_rows
    result = Table(f"{table.name}_arith", {out_name: values})
    # pipelined like filter: computed values feed the consumer directly
    if recorder is not None:
        recorder.read_input(table.total_bytes())
    return result


def aggregate(
    table: Table,
    group_by: Optional[str],
    aggregations: Dict[str, Callable[[np.ndarray], float]],
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
) -> Table:
    """Group-by aggregation (hash-grouped) or full-table aggregation."""
    stats.rows_read += table.num_rows
    stats.bytes_read += table.total_bytes()
    stats.instructions += COST_AGG_UPDATE * table.num_rows * max(1, len(aggregations))
    if recorder is not None:
        recorder.read_input(table.total_bytes())

    if group_by is None:
        columns = {
            f"{col}_{fn.__name__}": np.array([fn(table.column(col))])
            for col, fn in aggregations.items()
        }
        result = Table(f"{table.name}_agg", columns)
    else:
        keys = table.column(group_by)
        uniq, inverse = np.unique(keys, return_inverse=True)
        columns: Dict[str, np.ndarray] = {group_by: uniq}
        for col, fn in aggregations.items():
            values = table.column(col)
            out = np.empty(len(uniq), dtype=np.float64)
            for g in range(len(uniq)):
                out[g] = fn(values[inverse == g])
            columns[f"{col}_{fn.__name__}"] = out
        result = Table(f"{table.name}_agg", columns)
        # accumulators for a handful of groups live in registers; only
        # aggregations over many groups materialize a memory-resident table
        workset = HASH_ENTRY_BYTES * len(uniq)
        if recorder is not None and workset > REGISTER_RESIDENT_BYTES:
            recorder.write_workset(workset, table.num_rows)

    stats.rows_emitted += result.num_rows
    stats.bytes_written += result.total_bytes()
    if recorder is not None:
        recorder.write_output(result.total_bytes())
    return result


def hash_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
    suffixes: tuple = ("_l", "_r"),
    materialize: bool = False,
) -> Table:
    """Inner hash join: build on the smaller side, probe with the larger.

    Pipelined by default: matched rows stream to the consumer. Pass
    ``materialize=True`` when the plan actually spills the join output.
    """
    build, probe = (left, right) if left.num_rows <= right.num_rows else (right, left)
    build_key = left_on if build is left else right_on
    probe_key = right_on if build is left else left_on

    stats.rows_read += build.num_rows + probe.num_rows
    stats.bytes_read += build.total_bytes() + probe.total_bytes()
    stats.instructions += COST_HASH_BUILD * build.num_rows
    stats.instructions += COST_HASH_PROBE * probe.num_rows
    if recorder is not None:
        recorder.read_input(build.total_bytes() + probe.total_bytes())
        workset = max(HASH_ENTRY_BYTES * build.num_rows, HASH_ENTRY_BYTES)
        recorder.write_workset(workset, build.num_rows)  # inserts
        recorder.read_workset(workset, probe.num_rows)  # probes

    # vectorized equi-join via sorted search on the build side
    build_keys = build.column(build_key)
    probe_keys = probe.column(probe_key)
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    left_idx = np.searchsorted(sorted_keys, probe_keys, side="left")
    right_idx = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = right_idx - left_idx  # matches per probe row

    probe_rows = np.repeat(np.arange(probe.num_rows), counts)
    starts = np.repeat(left_idx, counts)
    within = np.arange(len(starts)) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    build_rows = order[starts + within]

    columns: Dict[str, np.ndarray] = {}
    b_suffix, p_suffix = (suffixes if build is left else (suffixes[1], suffixes[0]))
    keys_equal = build_key == probe_key
    for name, col in build.columns.items():
        if keys_equal and name == build_key:
            continue  # identical to the probe-side key column; emit once
        columns[_disambiguate(name, probe.columns, b_suffix)] = col[build_rows]
    for name, col in probe.columns.items():
        if keys_equal and name == probe_key:
            columns[name] = col[probe_rows]
        else:
            columns[_disambiguate(name, build.columns, p_suffix)] = col[probe_rows]
    result = Table(f"{left.name}_join_{right.name}", columns)

    stats.rows_emitted += result.num_rows
    stats.instructions += COST_EMIT * result.num_rows
    if materialize:
        stats.bytes_written += result.total_bytes()
        if recorder is not None:
            recorder.write_output(result.total_bytes())
    return result


def sort_limit(
    table: Table,
    by: str,
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
    descending: bool = True,
    limit: Optional[int] = None,
) -> Table:
    """ORDER BY ... [LIMIT n]: top-k via partial selection when limited.

    A bounded top-k keeps its heap in cache (no DRAM traffic); a full sort
    of a large table spills runs through memory.
    """
    keys = table.column(by)
    n = table.num_rows
    stats.rows_read += n
    stats.bytes_read += table.total_bytes()
    if limit is not None and limit < n:
        # selection + partial sort: O(n) scan with a k-sized heap
        stats.instructions += (COST_SCAN + 6) * n
        idx = np.argpartition(keys, -limit if descending else limit - 1)
        idx = idx[-limit:] if descending else idx[:limit]
        order = idx[np.argsort(keys[idx])]
        if descending:
            order = order[::-1]
        # the k-entry heap lives in registers/L1: no recorder traffic
    else:
        # full sort: n log n compares, runs spill through memory
        stats.instructions += COST_SCAN * n + 24 * n * max(1, int(np.log2(max(2, n))))
        order = np.argsort(keys, kind="stable")
        if descending:
            order = order[::-1]
        if recorder is not None:
            recorder.write_output(table.total_bytes())  # sorted runs
            recorder.read_input(table.total_bytes())  # merge pass
    result = table.take(order, f"{table.name}_sorted")
    stats.rows_emitted += result.num_rows
    return result


def positional_join(
    probe: Table,
    dim: Table,
    probe_key: str,
    dim_key: str,
    stats: OpStats,
    recorder: Optional[TraceRecorder] = None,
) -> Table:
    """Join against a dimension table whose key is dense (0..N-1).

    No hash table is built: dimension attributes are gathered by direct
    array indexing, so the join issues random *reads* over the dimension
    table but no stores — which is why the paper's part/orders joins show
    near-zero write ratios (Table 1).
    """
    keys = dim.column(dim_key)
    if len(keys) and (keys[0] != 0 or keys[-1] != len(keys) - 1):
        raise ValueError(
            f"positional_join requires a dense key column; '{dim_key}' is not"
        )
    index = probe.column(probe_key)
    if len(index) and (index.min() < 0 or index.max() >= dim.num_rows):
        raise ValueError("probe keys fall outside the dimension table")

    stats.rows_read += probe.num_rows + dim.num_rows
    stats.bytes_read += probe.total_bytes()
    stats.instructions += COST_SCAN * probe.num_rows + COST_EMIT * probe.num_rows
    if recorder is not None:
        # random gathers over the read-only dimension table (cache-filtered)
        recorder.read_workset(dim.total_bytes(), probe.num_rows, readonly=True)

    columns: Dict[str, np.ndarray] = dict(probe.columns)
    for name, col in dim.columns.items():
        if name == dim_key:
            continue
        columns[_disambiguate(name, probe.columns, "_dim")] = col[index]
    result = Table(f"{probe.name}_pjoin_{dim.name}", columns)
    stats.rows_emitted += result.num_rows
    return result


def _disambiguate(name: str, other: Dict[str, np.ndarray], suffix: str) -> str:
    return f"{name}{suffix}" if name in other else name
