"""Lightweight statistics primitives shared by all simulators."""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass
class ReliabilityStats:
    """Counters for fault injection and recovery (:mod:`repro.faults`).

    ``faults_injected`` counts scheduled fault events that fired;
    ``errors_corrected`` counts raw bit errors the ECC fixed inline;
    ``faults_recovered`` counts faults that needed active recovery (read
    retry + remap, power-loss rebuild, tenant abort) but lost no committed
    data; ``faults_fatal`` counts unrecoverable data loss (hard
    uncorrectables, pages stranded on a failed die).
    """

    faults_injected: int = 0
    errors_corrected: int = 0
    faults_recovered: int = 0
    faults_fatal: int = 0
    read_retries: int = 0
    remaps: int = 0
    power_loss_recoveries: int = 0
    integrity_violations: int = 0
    tenant_aborts: int = 0
    dies_failed: int = 0
    recovery_integrity_failures: int = 0
    added_latency_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "ReliabilityStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0.0 if f.name == "added_latency_s" else 0)

    def snapshot_state(self) -> Dict[str, float]:
        return self.as_dict()

    def restore_state(self, state: Dict[str, float]) -> None:
        for f in fields(self):
            setattr(self, f.name, state[f.name])


@dataclass
class RecoveryStats:
    """Counters for the checkpoint/restore subsystem (:mod:`repro.recovery`).

    ``invariant_checks``/``violations`` count runtime invariant-monitor
    activity (Merkle-root consistency, mapping bijectivity, counter and
    sim-clock monotonicity); ``snapshots_taken``/``restores`` count
    checkpoint traffic; ``oracle_points_passed`` counts crash points where
    the differential oracle proved restore byte-identical.
    """

    invariant_checks: int = 0
    violations: int = 0
    snapshots_taken: int = 0
    restores: int = 0
    oracle_points_passed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "RecoveryStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class SearchStats:
    """Counters for the adversarial scenario search (:mod:`repro.search`).

    ``evaluations`` counts scenario executions (cache misses only);
    ``dedup_hits`` counts genomes the memo served without re-running;
    ``sim_ops_spent`` is the simulated-operation budget actually consumed;
    ``corpus_entries`` counts deduplicated scoring scenarios retained;
    ``shrink_evals`` counts evaluations spent inside the delta-debugging
    shrinker (budgeted separately from exploration).
    """

    evaluations: int = 0
    dedup_hits: int = 0
    sim_ops_spent: int = 0
    corpus_entries: int = 0
    shrink_evals: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class SimBudget:
    """A wall-clock-free search budget denominated in simulated operations.

    Every scenario evaluation charges its simulated cost (operation or
    request count) here; exploration stops when the budget is spent. Being
    counted in simulated work — never wall time — keeps search runs exactly
    reproducible across machines of any speed.
    """

    __slots__ = ("total_ops", "spent_ops")

    def __init__(self, total_ops: int) -> None:
        if total_ops < 1:
            raise ValueError("search budget must be positive")
        self.total_ops = total_ops
        self.spent_ops = 0

    @property
    def remaining_ops(self) -> int:
        return max(0, self.total_ops - self.spent_ops)

    @property
    def exhausted(self) -> bool:
        return self.spent_ops >= self.total_ops

    def charge(self, ops: int) -> None:
        """Record ``ops`` simulated operations of work (post-paid: the
        evaluation that crosses the line still completes)."""
        if ops < 0:
            raise ValueError("cannot charge negative work")
        self.spent_ops += ops


# -- memoization surface -------------------------------------------------------
#
# Modules that wrap pure lookup helpers in functools.lru_cache register them
# here so profiling/bench tooling can surface hit rates without importing
# every subsystem (the registry is name -> zero-arg cache_info-like callable).
_MEMO_FUNCS: Dict[str, Callable[[], Any]] = {}


def register_memo(name: str, cached_func: Any) -> Any:
    """Register an ``lru_cache``-wrapped function for hit-rate reporting.

    Returns the function unchanged so it can be used as a decorator tail:
    ``helper = register_memo("dram.timing", lru_cache(...)(helper))``.
    """
    _MEMO_FUNCS[name] = cached_func.cache_info
    return cached_func


def memo_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size snapshot of every registered memoized helper."""
    out: Dict[str, Dict[str, int]] = {}
    for name in sorted(_MEMO_FUNCS):
        info = _MEMO_FUNCS[name]()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
        }
    return out


class Counter:
    """A named monotonically increasing counter.

    Hot paths should hold the Counter object itself (one registry lookup,
    then ``add`` per event) rather than calling ``registry.counter(name)``
    per event.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use two counters for deltas")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram tracking count/mean/min/max/variance.

    Uses Welford's online algorithm so memory stays constant regardless of
    sample count; optional sample retention supports percentile queries in
    tests.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "_samples")

    def __init__(self, name: str, keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._samples is not None:
            self._samples.append(value)

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self._mean * self.count

    def snapshot_state(self) -> Dict[str, Any]:
        """Welford accumulators and retained samples (checkpoint/restore)."""
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples) if self._samples is not None else None,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self.min = state["min"]
        self.max = state["max"]
        samples = state["samples"]
        self._samples = list(samples) if samples is not None else None

    def percentile(self, pct: float) -> float:
        """Return an exact percentile; requires ``keep_samples=True``."""
        if self._samples is None:
            raise RuntimeError("histogram was created without keep_samples")
        if not self._samples:
            raise ValueError("no samples recorded")
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[idx]


class StatRegistry:
    """A flat namespace of counters and histograms for one simulated component."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str, keep_samples: bool = False) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, keep_samples=keep_samples)
        return self._histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all stats into a name→value dict (hist → mean)."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = float(hist.count)
            out[f"{name}.mean"] = hist.mean
        return out

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._histograms.clear()
