"""Discrete-event simulation kernel used by every timing model in repro.

The kernel is deliberately small: an event queue ordered by (time, sequence),
FIFO resources with queueing statistics, and counter/histogram helpers. All
flash, DRAM, and platform timing models are built on top of it.
"""

from repro.sim.engine import Engine, Event
from repro.sim.resource import Resource
from repro.sim.stats import (
    Counter,
    Histogram,
    SearchStats,
    SimBudget,
    StatRegistry,
    memo_cache_stats,
    register_memo,
)

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "Counter",
    "Histogram",
    "SearchStats",
    "SimBudget",
    "StatRegistry",
    "memo_cache_stats",
    "register_memo",
]
