"""FIFO resources with queueing and utilization statistics.

A :class:`Resource` models a server pool (flash channel, die, CPU core...).
Clients call :meth:`acquire` with a service time and a completion callback;
the resource serializes jobs across its servers in FIFO order and invokes the
callback when the job's service completes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Tuple

from repro.sim.engine import Engine

# (service_time, on_done, enqueue_time) — a plain tuple, not a dataclass:
# one is allocated per job on the simulator's hottest path
_Job = Tuple[float, Optional[Callable[[], Any]], float]


class Resource:
    """A FIFO multi-server resource tied to an :class:`Engine`."""

    def __init__(self, engine: Engine, name: str, servers: int = 1) -> None:
        if servers < 1:
            raise ValueError("a resource needs at least one server")
        self.engine = engine
        self.name = name
        self.servers = servers
        self._busy = 0
        self._waiting: deque[_Job] = deque()
        # statistics
        self.jobs_completed = 0
        self.total_service_time = 0.0
        self.total_wait_time = 0.0
        self.max_queue_depth = 0

    @property
    def busy(self) -> int:
        """Number of servers currently serving a job."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Number of jobs waiting for a free server."""
        return len(self._waiting)

    def acquire(
        self,
        service_time: float,
        on_done: Optional[Callable[[], Any]] = None,
    ) -> None:
        """Submit a job needing ``service_time`` seconds of a server.

        ``on_done`` fires when service completes (after any queueing delay).
        """
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        if self._busy < self.servers:
            self._start((service_time, on_done, self.engine.now))
        else:
            self._waiting.append((service_time, on_done, self.engine.now))
            if len(self._waiting) > self.max_queue_depth:
                self.max_queue_depth = len(self._waiting)

    def _start(self, job: _Job) -> None:
        self._busy += 1
        self.total_wait_time += self.engine.now - job[2]
        # completions are never cancelled: take the no-handle fast path
        self.engine.schedule_after(job[0], lambda: self._finish(job))

    def _finish(self, job: _Job) -> None:
        self._busy -= 1
        self.jobs_completed += 1
        self.total_service_time += job[0]
        if self._waiting:
            self._start(self._waiting.popleft())
        on_done = job[1]
        if on_done is not None:
            on_done()

    def utilization(self) -> float:
        """Fraction of server-time spent busy since time zero."""
        if self.engine.now <= 0:
            return 0.0
        return self.total_service_time / (self.engine.now * self.servers)

    def mean_wait(self) -> float:
        """Mean queueing delay over completed+started jobs."""
        started = self.jobs_completed + self._busy
        if started == 0:
            return 0.0
        return self.total_wait_time / started
