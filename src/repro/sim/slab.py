"""A bounded free-list ("slab") for hot-path record objects.

The event kernel's remaining allocation cost is record churn: NVMe command
records, timer handles, per-access result objects. A :class:`Slab` keeps a
bounded pool of dead records; ``acquire`` reuses one (after the caller's
``reset`` hook re-initializes it) instead of constructing, and ``release``
donates a record back once *no other reference survives* — the same
contract as a kernel slab allocator. Recycling is always optional: a slab
that stays empty degrades to plain construction, never to wrong results.
"""

from __future__ import annotations

from typing import Callable, Generic, List, TypeVar

T = TypeVar("T")


class Slab(Generic[T]):
    """Bounded object pool with explicit acquire/release lifecycle."""

    __slots__ = ("_factory", "_free", "max_size", "allocated", "reused", "released")

    def __init__(self, factory: Callable[[], T], max_size: int = 256) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self._factory = factory
        self._free: List[T] = []
        self.max_size = max_size
        # lifecycle counters (profiler visibility, see `repro profile`)
        self.allocated = 0
        self.reused = 0
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> T:
        """Pop a pooled record, or construct a fresh one.

        The caller owns re-initialization: pooled records come back exactly
        as they were released.
        """
        free = self._free
        if free:
            self.reused += 1
            return free.pop()
        self.allocated += 1
        return self._factory()

    def release(self, record: T) -> None:
        """Donate ``record`` back to the pool.

        Only call this when no other live reference to ``record`` exists;
        the next ``acquire`` will hand it to an unrelated caller. Beyond
        ``max_size`` the record is dropped for the garbage collector.
        """
        self.released += 1
        if len(self._free) < self.max_size:
            self._free.append(record)

    def stats(self) -> dict:
        return {
            "free": len(self._free),
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
        }
