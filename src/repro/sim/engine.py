"""Event queue and simulation clock.

Time is a float in seconds. Events scheduled at equal times fire in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), which keeps runs deterministic.

Performance notes (see docs/PERFORMANCE.md): heap entries are plain
``(time, seq, callback, handle)`` tuples so the heap compares at C speed
and never falls through to Python-level ``__lt__`` — ``seq`` is unique, so
comparison always resolves on the first two slots. :meth:`Engine.schedule`
allocates an :class:`Event` handle (needed for :meth:`Engine.cancel`);
:meth:`Engine.schedule_after` is the fire-and-forget fast path that skips
the handle entirely. Cancelled entries are skipped lazily on pop, and the
heap is compacted whenever cancelled entries outnumber live ones, which
bounds memory under heavy hedged-read cancellation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

# Compact below this queue size is not worth the rebuild.
_COMPACT_MIN_QUEUE = 64

_Entry = Tuple[float, int, Callable[[], Any], Optional["Event"]]


class Event:
    """A cancellable handle for one scheduled callback.

    Handles are *not* heap entries (tuples are, for comparison speed); they
    exist so :meth:`Engine.cancel` can mark an entry dead and so timers can
    distinguish fired-vs-cancelled races deterministically.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
        cancelled: bool = False,
        fired: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        self.fired = fired

    @property
    def live(self) -> bool:
        """Still pending: neither fired nor cancelled."""
        return not (self.fired or self.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"Event(t={self.time!r}, seq={self.seq}, {state}, name={self.name!r})"


class Engine:
    """A minimal deterministic discrete-event simulation engine."""

    def __init__(self) -> None:
        self._queue: List[_Entry] = []  # repro: allow[recovery-unserialized-state] -- callbacks are closures; snapshots only happen at quiescent (empty-queue) points, enforced in snapshot_state
        self._now: float = 0.0
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False  # repro: allow[recovery-unserialized-state] -- transient run()-scope flag; snapshots cannot happen mid-run
        self._cancelled_pending: int = 0  # cancelled entries still in the heap
        # runtime invariant monitor (repro.recovery); None = disabled. Bound
        # locally by run() — arm before starting a run, not during one.
        self.invariant_monitor: Optional[Any] = None  # repro: allow[recovery-unserialized-state] -- monitors are re-armed by their owner after restore, never serialized

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending

    @property
    def queued_entries(self) -> int:
        """Raw heap size including not-yet-reclaimed cancelled entries."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = Event(self._now + delay, self._seq, callback, name)
        heapq.heappush(self._queue, (event.time, self._seq, callback, event))
        return event

    def schedule_after(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fire-and-forget fast path: schedule without a cancel handle.

        Skips the :class:`Event` allocation entirely; use for the vast
        majority of events that are never cancelled (resource completions,
        pipeline stages). Falls back to :meth:`schedule` when you need the
        handle.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, None))

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, name=name)

    def cancel(self, event: Event) -> bool:
        """Cancel a previously scheduled event.

        Returns True when the event was still pending (the cancel mattered)
        and False when it had already fired — the distinction timers need to
        resolve completion-vs-timeout races deterministically.
        """
        if event.fired:
            return False
        if not event.cancelled:
            event.cancelled = True
            self._cancelled_pending += 1
            self._maybe_compact()
        return True

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Without this, a workload that schedules-and-cancels (hedged reads,
        per-command timeout timers) grows the heap without bound: cancelled
        entries are only reclaimed when their time comes up.
        """
        queue = self._queue
        if len(queue) < _COMPACT_MIN_QUEUE:
            return
        if self._cancelled_pending * 2 <= len(queue):
            return
        # in-place so aliases held by a running run() loop stay valid
        queue[:] = [
            entry for entry in queue if entry[3] is None or not entry[3].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled_pending = 0

    def step(self) -> Optional[Event]:
        """Execute the next live event; return its handle, or None if empty.

        Fast-path entries (from :meth:`schedule_after`) have no persistent
        handle; for those a transient, already-fired :class:`Event` is
        returned so callers still observe time/seq.
        """
        queue = self._queue
        while queue:
            time, seq, callback, event = heapq.heappop(queue)
            if event is not None and event.cancelled:
                self._cancelled_pending -= 1
                continue
            if time < self._now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self._now = time
            self._events_fired += 1
            if event is None:
                event = Event(time, seq, callback, fired=True)  # repro: allow[perf-hot-loop-alloc] -- runs once per step() (loop only skips cancelled entries); the Event is the return value
            else:
                event.fired = True
            callback()
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise RuntimeError("engine is already running (no reentrant run)")
        self._running = True
        # the pop loop is inlined (rather than calling step()) and binds
        # hot globals locally: this loop is the simulator's innermost path
        pop = heapq.heappop
        queue = self._queue
        monitor = self.invariant_monitor
        try:
            fired = 0
            while queue:
                head = queue[0]
                event = head[3]
                if event is not None and event.cancelled:
                    pop(queue)
                    self._cancelled_pending -= 1
                    continue
                time = head[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                pop(queue)
                if time < self._now:
                    raise RuntimeError("event queue corrupted: time went backwards")
                self._now = time
                self._events_fired += 1
                if event is not None:
                    event.fired = True
                head[2]()
                fired += 1
                if monitor is not None:
                    monitor.after_engine_event(self._now)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._events_fired = 0
        self._cancelled_pending = 0

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Clock and sequencing state; only legal at a quiescent point.

        Pending heap entries hold arbitrary closures, which a primitive
        snapshot cannot (and should not) serialize — checkpointing is a
        quiescent-point operation, the same discipline real SSD firmware
        uses for power-loss-protected flush points.
        """
        if self._queue:
            raise RuntimeError(
                f"cannot snapshot an engine with {len(self._queue)} queued "
                "events; drain the queue (quiescent point) first"
            )
        return {
            "now": self._now,
            "seq": self._seq,
            "events_fired": self._events_fired,
            "cancelled_pending": self._cancelled_pending,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        if self._queue:
            raise RuntimeError("cannot restore into an engine with queued events")
        self._now = state["now"]
        self._seq = state["seq"]
        self._events_fired = state["events_fired"]
        self._cancelled_pending = state["cancelled_pending"]
