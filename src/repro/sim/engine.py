"""Event queue and simulation clock.

Time is a float in seconds. Events scheduled at equal times fire in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by (time, seq) so the heap pops them in deterministic
    order. ``cancelled`` events stay in the heap but are skipped when popped;
    this is cheaper than a heap removal and is how :meth:`Engine.cancel`
    works.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    @property
    def live(self) -> bool:
        """Still pending: neither fired nor cancelled."""
        return not (self.fired or self.cancelled)


class Engine:
    """A minimal deterministic discrete-event simulation engine."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = Event(time=self._now + delay, seq=self._seq, callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, name=name)

    def cancel(self, event: Event) -> bool:
        """Cancel a previously scheduled event.

        Returns True when the event was still pending (the cancel mattered)
        and False when it had already fired — the distinction timers need to
        resolve completion-vs-timeout races deterministically.
        """
        if event.fired:
            return False
        event.cancelled = True
        return True

    def step(self) -> Optional[Event]:
        """Execute the next live event; return it, or None if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self._now = event.time
            self._events_fired += 1
            event.fired = True
            event.callback()
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise RuntimeError("engine is already running (no reentrant run)")
        self._running = True
        try:
            fired = 0
            while self._queue:
                nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and nxt.time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._events_fired = 0
