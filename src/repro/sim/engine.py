"""Event queue and simulation clock.

Time is a float in seconds. Events scheduled at equal times fire in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), which keeps runs deterministic.

Performance notes (see docs/PERFORMANCE.md): heap entries are plain
``(time, seq, callback, handle)`` tuples so the heap compares at C speed
and never falls through to Python-level ``__lt__`` — ``seq`` is unique, so
comparison always resolves on the first two slots. :meth:`Engine.schedule`
allocates an :class:`Event` handle (needed for :meth:`Engine.cancel`);
:meth:`Engine.schedule_after` is the fire-and-forget fast path that skips
the handle entirely. Cancelled entries are skipped lazily on pop, and the
heap is compacted whenever cancelled entries outnumber live ones, which
bounds memory under heavy hedged-read cancellation.

Two further fast paths (the ``repro.speed`` work):

- :meth:`Engine.schedule_batch` files a same-timestamp event storm through
  a sorted side lane (one deque append per event) instead of N heap pushes;
  the run loop merges the lane against the heap by ``(time, seq)``, so
  firing order is exactly what N individual ``schedule_after`` calls would
  have produced.
- :class:`Event` handles are slab-recycled: ``cancel(event, recycle=True)``
  donates the handle back to the engine's free list once its heap entry is
  reclaimed, and :meth:`Engine.schedule` reuses pooled handles instead of
  constructing. Timeout-timer-heavy paths (NVMe command aborts, hedged
  reads) stop allocating entirely in steady state.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

# Compact below this queue size is not worth the rebuild.
_COMPACT_MIN_QUEUE = 64
# Upper bound on pooled Event handles; beyond this, reclaimed handles are
# simply dropped for the garbage collector.
_EVENT_POOL_MAX = 256

_Entry = Tuple[float, int, Callable[[], Any], Optional["Event"]]
_DueEntry = Tuple[float, int, Callable[[], Any]]


class Event:
    """A cancellable handle for one scheduled callback.

    Handles are *not* heap entries (tuples are, for comparison speed); they
    exist so :meth:`Engine.cancel` can mark an entry dead and so timers can
    distinguish fired-vs-cancelled races deterministically.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "fired", "pooled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
        cancelled: bool = False,
        fired: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        self.fired = fired
        # set by cancel(recycle=True): the canceller has dropped its
        # reference, so the engine may reuse this handle once the heap
        # entry is reclaimed
        self.pooled = False

    @property
    def live(self) -> bool:
        """Still pending: neither fired nor cancelled."""
        return not (self.fired or self.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"Event(t={self.time!r}, seq={self.seq}, {state}, name={self.name!r})"


class Engine:
    """A minimal deterministic discrete-event simulation engine."""

    def __init__(self) -> None:
        self._queue: List[_Entry] = []  # repro: allow[recovery-unserialized-state] -- callbacks are closures; snapshots only happen at quiescent (empty-queue) points, enforced in snapshot_state
        # the batch lane: (time, seq, callback) entries kept sorted by
        # (time, seq); the run loop merges it against the heap
        self._due: Deque[_DueEntry] = deque()  # repro: allow[recovery-unserialized-state] -- same quiescent-point discipline as _queue
        self._now: float = 0.0
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False  # repro: allow[recovery-unserialized-state] -- transient run()-scope flag; snapshots cannot happen mid-run
        self._cancelled_pending: int = 0  # cancelled entries still in the heap
        self._free_events: List[Event] = []  # repro: allow[recovery-unserialized-state] -- recycled handles carry no simulation state
        # runtime invariant monitor (repro.recovery); None = disabled. Bound
        # locally by run() — arm before starting a run, not during one.
        self.invariant_monitor: Optional[Any] = None  # repro: allow[recovery-unserialized-state] -- monitors are re-armed by their owner after restore, never serialized

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def running(self) -> bool:
        """True while a :meth:`run` loop is executing callbacks."""
        return self._running

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending + len(self._due)

    @property
    def queued_entries(self) -> int:
        """Raw heap size including not-yet-reclaimed cancelled entries."""
        return len(self._queue)

    @property
    def pooled_events(self) -> int:
        """Recycled :class:`Event` handles awaiting reuse."""
        return len(self._free_events)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        time = self._now + delay
        free = self._free_events
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.name = name
            event.cancelled = False
            event.fired = False
            event.pooled = False
        else:
            event = Event(time, self._seq, callback, name)
        heapq.heappush(self._queue, (time, self._seq, callback, event))
        return event

    def schedule_after(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fire-and-forget fast path: schedule without a cancel handle.

        Skips the :class:`Event` allocation entirely; use for the vast
        majority of events that are never cancelled (resource completions,
        pipeline stages). Falls back to :meth:`schedule` when you need the
        handle.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, None))

    def schedule_batch(self, delay: float, callbacks: Iterable[Callable[[], Any]]) -> int:
        """Schedule many callbacks at one timestamp with O(1) work each.

        Fire-and-forget like :meth:`schedule_after` (no handles, not
        cancellable), and fires in exactly the order N individual
        ``schedule_after`` calls would have: each callback gets its own
        sequence number, and the run loop merges the batch lane against the
        heap by ``(time, seq)``. The lane is kept sorted by construction —
        a batch scheduled *earlier* than the lane's tail falls back to
        plain heap pushes, which is merely slower, never wrong.

        Returns the number of callbacks scheduled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        due = self._due
        if due and due[-1][0] > time:
            # would break the lane's sort order: take the heap path
            count = 0
            for callback in callbacks:
                self._seq += 1
                heapq.heappush(self._queue, (time, self._seq, callback, None))
                count += 1
            return count
        seq = self._seq
        append = due.append
        count = 0
        for callback in callbacks:
            seq += 1
            append((time, seq, callback))
            count += 1
        self._seq = seq
        return count

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, name=name)

    def cancel(self, event: Event, recycle: bool = False) -> bool:
        """Cancel a previously scheduled event.

        Returns True when the event was still pending (the cancel mattered)
        and False when it had already fired — the distinction timers need to
        resolve completion-vs-timeout races deterministically.

        ``recycle=True`` declares that the caller holds no further reference
        to ``event``: once its heap entry is reclaimed (lazy skip or
        compaction), the handle returns to the engine's free list and a
        later :meth:`schedule` reuses it instead of allocating.
        """
        if event.fired:
            return False
        if not event.cancelled:
            event.cancelled = True
            if recycle:
                event.pooled = True
            self._cancelled_pending += 1
            self._maybe_compact()
        return True

    def _reclaim(self, event: Event) -> None:
        """Return a pooled cancelled handle to the free list."""
        event.callback = _noop  # drop the closure reference
        if len(self._free_events) < _EVENT_POOL_MAX:
            self._free_events.append(event)

    def absorb(self, now: float, events: int, seqs: int) -> None:
        """Account for events executed by an external exact batch kernel.

        The storm kernels (:mod:`repro.flash.storm`) emulate a run of this
        engine outside it — bit-identically — and then report the clock
        advance, the events fired, and the sequence numbers consumed here.
        Only legal at a quiescent point: the kernel's exactness proof
        assumes no interleaving work.
        """
        if self._running:
            raise RuntimeError("cannot absorb external events during run()")
        if self._queue or self._due:
            raise RuntimeError("cannot absorb external events with a non-empty queue")
        if now < self._now:
            raise ValueError(f"absorb would move time backwards ({now} < {self._now})")
        if events < 0 or seqs < 0:
            raise ValueError("absorbed event/seq counts must be non-negative")
        self._now = now
        self._events_fired += events
        self._seq += seqs

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Without this, a workload that schedules-and-cancels (hedged reads,
        per-command timeout timers) grows the heap without bound: cancelled
        entries are only reclaimed when their time comes up.
        """
        queue = self._queue
        if len(queue) < _COMPACT_MIN_QUEUE:
            return
        if self._cancelled_pending * 2 <= len(queue):
            return
        # in-place so aliases held by a running run() loop stay valid
        live: List[_Entry] = []
        for entry in queue:
            event = entry[3]
            if event is None or not event.cancelled:
                live.append(entry)
            elif event.pooled:
                self._reclaim(event)
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled_pending = 0

    def step(self) -> Optional[Event]:
        """Execute the next live event; return its handle, or None if empty.

        Fast-path entries (from :meth:`schedule_after` and
        :meth:`schedule_batch`) have no persistent handle; for those a
        transient, already-fired :class:`Event` is returned so callers
        still observe time/seq.
        """
        queue = self._queue
        due = self._due
        # locate the next live entry (merging the batch lane against the
        # heap) without executing anything; the single firing — including
        # the one transient Event construction — happens after the loop
        entry: Optional[_Entry] = None
        while queue:
            head = queue[0]
            event = head[3]
            if event is not None and event.cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
                if event.pooled:
                    self._reclaim(event)
                continue
            entry = head
            break
        if due and (entry is None or (due[0][0], due[0][1]) < (entry[0], entry[1])):
            time, seq, callback = due.popleft()
            event = None
        elif entry is not None:
            heapq.heappop(queue)
            time, seq, callback, event = entry
        else:
            return None
        if time < self._now:
            raise RuntimeError("event queue corrupted: time went backwards")
        self._now = time
        self._events_fired += 1
        if event is None:
            event = Event(time, seq, callback, fired=True)
        else:
            event.fired = True
        callback()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise RuntimeError("engine is already running (no reentrant run)")
        self._running = True
        # the pop loop is inlined (rather than calling step()) and binds
        # hot globals locally: this loop is the simulator's innermost path
        pop = heapq.heappop
        queue = self._queue
        due = self._due
        monitor = self.invariant_monitor
        try:
            fired = 0
            while queue or due:
                if queue:
                    head: Optional[_Entry] = queue[0]
                    event = head[3]
                    if event is not None and event.cancelled:
                        pop(queue)
                        self._cancelled_pending -= 1
                        if event.pooled:
                            self._reclaim(event)
                        continue
                else:
                    head = None
                if due and (head is None or (due[0][0], due[0][1]) < (head[0], head[1])):
                    # batch lane wins the (time, seq) merge
                    time = due[0][0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    _dt, _ds, callback = due.popleft()
                    if time < self._now:
                        raise RuntimeError("event queue corrupted: time went backwards")
                    self._now = time
                    self._events_fired += 1
                    callback()
                    fired += 1
                    if monitor is not None:
                        monitor.after_engine_event(self._now)
                    continue
                assert head is not None
                time = head[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                pop(queue)
                if time < self._now:
                    raise RuntimeError("event queue corrupted: time went backwards")
                self._now = time
                self._events_fired += 1
                if event is not None:
                    event.fired = True
                head[2]()
                fired += 1
                if monitor is not None:
                    monitor.after_engine_event(self._now)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until(self, time: float, max_events: Optional[int] = None) -> float:
        """Run the queue up to (and including) absolute time ``time``.

        The named companion of :meth:`schedule_batch`: drain the storm you
        just filed, stop at the horizon. Equivalent to ``run(until=time)``.
        """
        return self.run(until=time, max_events=max_events)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._due.clear()
        self._now = 0.0
        self._seq = 0
        self._events_fired = 0
        self._cancelled_pending = 0
        self._free_events.clear()

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Clock and sequencing state; only legal at a quiescent point.

        Pending heap entries hold arbitrary closures, which a primitive
        snapshot cannot (and should not) serialize — checkpointing is a
        quiescent-point operation, the same discipline real SSD firmware
        uses for power-loss-protected flush points.
        """
        if self._queue or self._due:
            raise RuntimeError(
                f"cannot snapshot an engine with {len(self._queue) + len(self._due)} "
                "queued events; drain the queue (quiescent point) first"
            )
        return {
            "now": self._now,
            "seq": self._seq,
            "events_fired": self._events_fired,
            "cancelled_pending": self._cancelled_pending,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        if self._queue or self._due:
            raise RuntimeError("cannot restore into an engine with queued events")
        self._now = state["now"]
        self._seq = state["seq"]
        self._events_fired = state["events_fired"]
        self._cancelled_pending = state["cancelled_pending"]


def _noop() -> None:
    """Placeholder callback for pooled Event handles."""
