"""Processor models (the gem5 substitute).

Analytic core models for the SSD controller's ARM cores (Cortex-A72
out-of-order, Cortex-A53 in-order) and the host's Intel i7-7700K, plus a
real set-associative cache hierarchy simulator used to derive hit rates
from sampled address traces.
"""

from repro.cpu.cache import Cache, CacheHierarchy, NextLinePrefetcher
from repro.cpu.core import CoreModel
from repro.cpu.models import CORTEX_A53, CORTEX_A72, INTEL_I7_7700K, core_by_name

__all__ = [
    "Cache",
    "CacheHierarchy",
    "NextLinePrefetcher",
    "CoreModel",
    "CORTEX_A53",
    "CORTEX_A72",
    "INTEL_I7_7700K",
    "core_by_name",
]
