"""Analytic core timing model.

Compute time is modelled as issue-limited execution plus memory stalls:

    cycles = instructions / effective_ipc
           + memory_accesses * miss_to_memory_rate * dram_cycles / mlp

Out-of-order cores (A72, i7) hide more memory latency (higher ``mlp``) and
sustain higher IPC than the in-order A53; Figure 15's sweep over core model
and frequency falls directly out of these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CoreModel:
    """Parameters of one processor core."""

    name: str
    frequency_hz: float
    base_ipc: float  # sustained IPC on cache-resident work
    out_of_order: bool
    mlp: float  # overlapped outstanding memory misses
    dram_latency_s: float = 80e-9  # effective memory latency seen by the core

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.base_ipc <= 0 or self.mlp < 1:
            raise ValueError("invalid core parameters")

    def with_frequency(self, frequency_hz: float) -> "CoreModel":
        """Copy at a different clock (Figure 15 frequency sweep)."""
        return replace(self, frequency_hz=frequency_hz, name=f"{self.name}@{frequency_hz/1e9:.1f}GHz")

    def compute_time(
        self,
        instructions: float,
        memory_accesses: float = 0.0,
        memory_miss_rate: float = 0.02,
        extra_memory_latency_s: float = 0.0,
    ) -> float:
        """Seconds to execute ``instructions`` with the given memory profile.

        ``extra_memory_latency_s`` is added per memory-bound access — this is
        where the MEE's encryption/verification latency enters the pipeline
        (IceClave's per-access overhead).
        """
        if instructions < 0 or memory_accesses < 0:
            raise ValueError("work amounts must be non-negative")
        if not 0.0 <= memory_miss_rate <= 1.0:
            raise ValueError("miss rate must be a probability")
        issue_cycles = instructions / self.base_ipc
        misses = memory_accesses * memory_miss_rate
        per_miss = self.dram_latency_s + extra_memory_latency_s
        stall_seconds = misses * per_miss / self.mlp
        return issue_cycles / self.frequency_hz + stall_seconds

    def mips(self) -> float:
        """Peak instruction throughput in millions/second."""
        return self.frequency_hz * self.base_ipc / 1e6
