"""Set-associative cache simulation with true LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional


class Cache:
    """One cache level: size/associativity/line size, true LRU."""

    def __init__(self, name: str, size_bytes: int, assoc: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        lines = size_bytes // line_bytes
        if lines % assoc:
            raise ValueError("size/line_bytes must be a multiple of associativity")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = lines // assoc
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Touch a line; True on hit. Misses fill (allocate-on-miss)."""
        set_idx, tag = self._locate(address)
        ways = self._sets.setdefault(set_idx, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[tag] = True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class NextLinePrefetcher:
    """Sequential prefetcher: a miss pulls the next N lines in as well.

    Streaming scans — the dominant in-storage access shape — turn from
    all-miss into mostly-hit with even a one-line-ahead prefetcher, which
    is why the A72's real hardware prefetchers matter to Figure 15.
    """

    def __init__(self, degree: int = 1, line_bytes: int = 64) -> None:
        if degree < 0:
            raise ValueError("prefetch degree must be non-negative")
        self.degree = degree
        self.line_bytes = line_bytes
        self.prefetches_issued = 0

    def on_miss(self, address: int) -> List[int]:
        """Addresses to prefetch after a demand miss at ``address``."""
        self.prefetches_issued += self.degree
        return [
            address + i * self.line_bytes for i in range(1, self.degree + 1)
        ]


class CacheHierarchy:
    """An inclusive L1→L2 lookup chain returning the hit level per access."""

    def __init__(
        self,
        levels: Optional[List[Cache]] = None,
        prefetcher: Optional[NextLinePrefetcher] = None,
    ) -> None:
        self.levels = levels or [
            Cache("L1D", 32 * 1024, assoc=4),
            Cache("L2", 1024 * 1024, assoc=16),
        ]
        self.prefetcher = prefetcher

    def access(self, address: int) -> int:
        """Returns the level index that hit (0 = L1), or len(levels) = memory."""
        level = self._lookup(address)
        if level == len(self.levels) and self.prefetcher is not None:
            for prefetch_addr in self.prefetcher.on_miss(address):
                self._lookup(prefetch_addr)  # fills on the way down
        return level

    def _lookup(self, address: int) -> int:
        for idx, cache in enumerate(self.levels):
            if cache.access(address):
                # fill upper levels happened implicitly via allocate-on-miss
                return idx
        return len(self.levels)

    def run_trace(self, addresses) -> Dict[str, float]:
        """Run an address trace; returns per-level hit rates + memory rate."""
        memory_accesses = 0
        total = 0
        for address in addresses:
            if self.access(address) == len(self.levels):
                memory_accesses += 1
            total += 1
        rates = {cache.name: cache.hit_rate for cache in self.levels}
        rates["memory"] = memory_accesses / total if total else 0.0
        return rates
