"""Concrete core presets used in the paper's evaluation.

- Cortex-A72 @ 1.6 GHz: the SSD controller's out-of-order core (Table 3:
  3-wide decode, 5-wide dispatch/retire, 48KB/32KB L1, 1MB L2).
- Cortex-A53: the in-order alternative of the Figure 15 sweep.
- Intel i7-7700K @ 4.2 GHz: the host processor of the Host/Host+SGX
  baselines (§6.1).

IPC and MLP values are calibrated to the relative single-thread throughput
these cores show on data-processing workloads, which is all the paper's
figures depend on.
"""

from __future__ import annotations

from repro.cpu.core import CoreModel

CORTEX_A72 = CoreModel(
    name="cortex-a72",
    frequency_hz=1.6e9,
    base_ipc=1.6,
    out_of_order=True,
    mlp=4.0,
    dram_latency_s=90e-9,  # DDR3-1600 in the SSD controller
)

CORTEX_A53 = CoreModel(
    name="cortex-a53",
    frequency_hz=1.6e9,
    base_ipc=1.25,
    out_of_order=False,
    mlp=2.2,
    dram_latency_s=90e-9,
)

INTEL_I7_7700K = CoreModel(
    name="i7-7700k",
    frequency_hz=4.2e9,
    base_ipc=2.5,
    out_of_order=True,
    mlp=10.0,
    dram_latency_s=60e-9,  # DDR4-3600 host memory
)

_BY_NAME = {
    CORTEX_A72.name: CORTEX_A72,
    CORTEX_A53.name: CORTEX_A53,
    INTEL_I7_7700K.name: INTEL_I7_7700K,
}


def core_by_name(name: str) -> CoreModel:
    """Look up a core preset; raises KeyError with the known names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown core '{name}'; known cores: {known}") from None
