"""Benchmark trajectory: wall-clock, events/sec and peak RSS per figure run.

``python -m repro bench`` measures a fixed set of named benchmark cases —
the simulation kernel itself plus the figure pipelines the paper's
evaluation regenerates — and writes the measurements as ``BENCH_<n>.json``
(the next free index, so the committed files form a trajectory over the
repo's history).

Wall-clock numbers are machine-dependent, so every file also records a
*calibration* measurement (a fixed pure-Python integer loop). Regression
checks compare calibration-normalized times: ``(wall/cal)_now`` vs
``(wall/cal)_baseline``, which cancels raw machine speed and leaves only
the repo's own efficiency. CI fails when any case regresses by more than
:data:`REGRESSION_THRESHOLD` against the committed baseline.

Everything here deliberately reads the host clock — that is the measurand —
so the determinism lint is waived at the single chokepoint every timing
goes through.
"""

from __future__ import annotations

import json
import pathlib
import re
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import repro.speed as speed
from repro.flash.geometry import small_geometry
from repro.flash.ssd import FlashDevice
from repro.flash.timing import FlashTiming
from repro.perf.parallel import (
    chaos_point,
    map_points,
    platform_point,
    resilience_point,
)
from repro.perf.parallel import _profile_for
from repro.platform.config import PlatformConfig
from repro.platform.schemes import SCHEMES
from repro.sim.engine import Engine

SCHEMA_VERSION = 1
REGRESSION_THRESHOLD = 0.25
# Cases whose baseline wall time is under this fraction of the calibration
# loop are too small to gate: at ~10 ms, scheduler jitter alone exceeds the
# regression threshold. They are still recorded in the trajectory.
NOISE_FLOOR = 0.25
_BENCH_RE = re.compile(r"BENCH_(\d+)\.json$")

_QUICK_FIG11_WORKLOADS = ("filter", "tpch-q1", "tpcc", "wordcount")
_FULL_FIG11_WORKLOADS = (
    "arithmetic", "aggregate", "filter",
    "tpch-q1", "tpch-q3", "tpch-q12", "tpch-q14", "tpch-q19",
    "tpcb", "tpcc", "wordcount",
)


def _wall() -> float:
    """Host wall-clock; the one sanctioned read in the whole tree."""
    return time.perf_counter()  # repro: allow[det-wallclock] -- benchmarking measures host time by design


def calibration_seconds(passes: int = 3) -> float:
    """Best-of-N time for a fixed pure-Python integer workload.

    Used to normalize wall-clock across machines: dividing a benchmark's
    wall time by this cancels raw interpreter/CPU speed.
    """
    best: Optional[float] = None
    for _ in range(max(1, passes)):
        start = _wall()
        acc = 0
        for i in range(1_500_000):
            acc += i * i
        elapsed = _wall() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KB (Linux semantics), None if unavailable."""
    try:
        import resource as host_resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return None
    return int(host_resource.getrusage(host_resource.RUSAGE_SELF).ru_maxrss)


# -- benchmark cases -----------------------------------------------------------


def _bench_kernel_flash_read(quick: bool, jobs: int) -> Optional[int]:
    """Raw event-kernel throughput: a windowed page-read storm.

    Single-engine on purpose; parallel speedup is measured by the pipeline
    cases below. Goes through :meth:`FlashDevice.read_storm`, which picks
    the fastest available exact kernel (compiled > vectorized python >
    per-event engine) for the active ``REPRO_SPEED`` mode — all of them
    produce byte-identical engine and resource state.
    """
    pages = 2000 if quick else 8000
    engine = Engine()
    geometry = small_geometry(channels=8)
    device = FlashDevice(engine, geometry, FlashTiming())
    pages = min(pages, geometry.total_pages)
    device.read_storm(range(pages), window=64)
    return engine.events_fired


def _bench_compare(quick: bool, jobs: int) -> Optional[int]:
    """The `repro compare` pipeline: one workload, all four schemes.

    Small in either mode, so ``quick`` changes nothing here.
    """
    config = PlatformConfig()
    specs = [platform_point("tpch-q1", s, config) for s in sorted(SCHEMES)]
    return len(map_points(specs, jobs=jobs))


def _bench_fig11(quick: bool, jobs: int) -> Optional[int]:
    """The Figure 11 grid: workloads x schemes."""
    config = PlatformConfig()
    workloads = _QUICK_FIG11_WORKLOADS if quick else _FULL_FIG11_WORKLOADS
    specs = [
        platform_point(w, s, config)
        for w in workloads
        for s in sorted(SCHEMES)
    ]
    return len(map_points(specs, jobs=jobs))


def _bench_channel_sweep(quick: bool, jobs: int) -> Optional[int]:
    """The Figures 12/13 channel sweep for one workload."""
    base = PlatformConfig()
    channels = (4, 8) if quick else (4, 8, 16, 32)
    specs = [
        platform_point("tpch-q3", scheme, base.with_channels(ch))
        for ch in channels
        for scheme in ("host", "isc", "iceclave")
    ]
    return len(map_points(specs, jobs=jobs))


def _bench_chaos(quick: bool, jobs: int) -> Optional[int]:
    """One fault-injection campaign (the reliability CSV's unit of work)."""
    ops = 600 if quick else 2000
    profile = _profile_for("tpcc", None)
    # single campaign, run inline; chaos parallelism is the exporter's job
    report = map_points(
        [chaos_point("tpcc", profile.write_ratio, seed=42, ops=ops)], jobs=1
    )[0]
    return ops + int(report.reliability.get("faults_injected", 0))


def _bench_resilience(quick: bool, jobs: int) -> Optional[int]:
    """The two-arm resilience experiment behind `repro resilience`."""
    ops = 600 if quick else 2000
    map_points([resilience_point(seed=7, ops=ops)], jobs=1)
    return 2 * ops  # both arms process the same request count


@dataclass(frozen=True)
class BenchCase:
    name: str
    description: str
    fn: Callable[[bool, int], Optional[int]]


BENCH_CASES = (
    BenchCase("kernel-flash-read", "event kernel: windowed page-read storm",
              _bench_kernel_flash_read),
    BenchCase("compare-tpch-q1", "compare pipeline: 4 schemes, one workload",
              _bench_compare),
    BenchCase("fig11-grid", "Figure 11 grid: workloads x schemes",
              _bench_fig11),
    BenchCase("channel-sweep", "Figures 12/13 channel sweep (one workload)",
              _bench_channel_sweep),
    BenchCase("chaos-tpcc", "fault-injection campaign (reliability CSV unit)",
              _bench_chaos),
    BenchCase("resilience", "two-arm resilience experiment",
              _bench_resilience),
)


# -- running and persisting ---------------------------------------------------


def run_bench(quick: bool = False, jobs: int = 1) -> Dict[str, Any]:
    """Measure every case; returns the BENCH_<n>.json payload."""
    calibration = calibration_seconds()
    benchmarks: List[Dict[str, Any]] = []
    for case in BENCH_CASES:
        start = _wall()
        events = case.fn(quick, jobs)
        wall = _wall() - start
        benchmarks.append(
            {
                "name": case.name,
                "description": case.description,
                "wall_s": wall,
                "events": events,
                "events_per_s": (events / wall) if events and wall > 0 else None,
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "jobs": jobs,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "speed": speed.describe(),
        "calibration_s": calibration,
        "peak_rss_kb": _peak_rss_kb(),
        "benchmarks": benchmarks,
    }


def next_bench_path(out_dir: pathlib.Path) -> pathlib.Path:
    """First unused ``BENCH_<n>.json`` slot in ``out_dir``."""
    taken = []
    for path in out_dir.glob("BENCH_*.json"):
        match = _BENCH_RE.match(path.name)
        if match is not None:
            taken.append(int(match.group(1)))
    return out_dir / f"BENCH_{max(taken) + 1 if taken else 0}.json"


def write_bench(payload: Dict[str, Any], out_dir: pathlib.Path) -> pathlib.Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_bench_path(out_dir)
    with path.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: pathlib.Path) -> Dict[str, Any]:
    with pathlib.Path(path).open() as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {payload.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return payload


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Calibration-normalized comparison; returns a list of failures.

    Empty list = no regression. Cases present on only one side are skipped
    (the set may grow over the trajectory), as are cases below
    :data:`NOISE_FLOOR` (too small for wall-clock to mean anything), but
    *zero* comparable cases is itself a failure — a silently empty gate
    guards nothing.
    """
    if current.get("mode") != baseline.get("mode"):
        return [
            f"mode mismatch: current run is '{current.get('mode')}' but the "
            f"baseline is '{baseline.get('mode')}'; nothing is comparable"
        ]
    cal_now = current.get("calibration_s") or 0.0
    cal_base = baseline.get("calibration_s") or 0.0
    if cal_now <= 0 or cal_base <= 0:
        return ["missing/invalid calibration measurements; cannot normalize"]
    baseline_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    problems: List[str] = []
    compared = 0
    for bench in current.get("benchmarks", []):
        base = baseline_by_name.get(bench["name"])
        if base is None or not base.get("wall_s"):
            continue
        if base["wall_s"] / cal_base < NOISE_FLOOR:
            continue
        compared += 1
        normalized = (bench["wall_s"] / cal_now) / (base["wall_s"] / cal_base)
        if normalized > 1.0 + threshold:
            problems.append(
                f"{bench['name']}: {normalized:.2f}x the normalized baseline "
                f"(limit {1.0 + threshold:.2f}x; "
                f"{bench['wall_s']:.3f}s now vs {base['wall_s']:.3f}s then)"
            )
    if compared == 0:
        problems.append("no comparable benchmarks between current run and baseline")
    return problems


def compare_benches(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> Dict[str, Any]:
    """Trajectory comparison between two bench payloads.

    Computes calibration-normalized speedups per case (``>1`` = current is
    faster) plus raw event-rate ratios where both sides report rates. Used
    by ``repro bench --compare OLD NEW`` so the committed ``BENCH_<n>.json``
    files read as a performance trajectory, and by CI to print the trend.
    """
    cal_base = baseline.get("calibration_s") or 0.0
    cal_now = current.get("calibration_s") or 0.0
    comparable_modes = current.get("mode") == baseline.get("mode")
    cases: List[Dict[str, Any]] = []
    baseline_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    for bench in current.get("benchmarks", []):
        base = baseline_by_name.get(bench["name"])
        if base is None:
            continue
        entry: Dict[str, Any] = {
            "name": bench["name"],
            "wall_s_baseline": base.get("wall_s"),
            "wall_s_current": bench.get("wall_s"),
            "events_per_s_baseline": base.get("events_per_s"),
            "events_per_s_current": bench.get("events_per_s"),
            "speedup": None,
            "event_rate_ratio": None,
        }
        if (
            comparable_modes
            and cal_base > 0
            and cal_now > 0
            and base.get("wall_s")
            and bench.get("wall_s")
        ):
            entry["speedup"] = (base["wall_s"] / cal_base) / (
                bench["wall_s"] / cal_now
            )
        if base.get("events_per_s") and bench.get("events_per_s"):
            entry["event_rate_ratio"] = (
                bench["events_per_s"] / base["events_per_s"]
            )
        cases.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "comparable_modes": comparable_modes,
        "mode_baseline": baseline.get("mode"),
        "mode_current": current.get("mode"),
        "calibration_s_baseline": cal_base,
        "calibration_s_current": cal_now,
        "speed_baseline": baseline.get("speed"),
        "speed_current": current.get("speed"),
        "cases": cases,
    }


def format_compare(comparison: Dict[str, Any]) -> str:
    """Human-readable speedup table for :func:`compare_benches` output."""
    lines = [
        f"bench trajectory: {comparison['mode_baseline']} baseline -> "
        f"{comparison['mode_current']} current "
        f"(speedups are calibration-normalized; >1.00x = faster now)"
    ]
    if not comparison["comparable_modes"]:
        lines.append("  WARNING: modes differ; wall-clock speedups suppressed")
    for case in comparison["cases"]:
        speedup = case["speedup"]
        speedup_text = f"{speedup:6.2f}x" if speedup is not None else "      -"
        rate = case["event_rate_ratio"]
        if rate is not None:
            now = case["events_per_s_current"]
            rate_text = f"  {now:12.0f} ev/s ({rate:.2f}x baseline)"
        else:
            rate_text = ""
        lines.append(f"  {case['name']:>18s}: {speedup_text}{rate_text}")
    if not comparison["cases"]:
        lines.append("  (no cases in common)")
    return "\n".join(lines)


def format_bench(payload: Dict[str, Any]) -> str:
    lines = [
        f"bench mode={payload['mode']} jobs={payload['jobs']} "
        f"python={payload['python']} calibration={payload['calibration_s'] * 1e3:.1f}ms "
        f"peak_rss={payload['peak_rss_kb'] or '?'}KB",
    ]
    for bench in payload["benchmarks"]:
        eps = bench["events_per_s"]
        eps_text = f"{eps:12.0f} ev/s" if eps else " " * 17
        lines.append(
            f"  {bench['name']:>18s}: {bench['wall_s']:8.3f}s {eps_text}  "
            f"{bench['description']}"
        )
    return "\n".join(lines)
