"""Performance tooling: profiler, deterministic parallel runner, bench.

Three pieces, all sitting just below the CLI:

- :mod:`repro.perf.parallel` — fan experiment *points* (scheme runs, chaos
  campaigns, resilience experiments) across worker processes with a
  fixed-order merge, so ``--jobs N`` output is byte-identical to serial;
- :mod:`repro.perf.profiler` — cProfile harness plus the simulator-side
  counters (memo hit rates, counter-cache stats) for one workload run;
- :mod:`repro.perf.bench` — the benchmark trajectory: wall-clock,
  events/sec and peak RSS per figure workload, written as ``BENCH_<n>.json``
  and regression-gated against a committed baseline in CI.

See docs/PERFORMANCE.md for the methodology and the optimization inventory.
"""

from repro.perf.parallel import (
    chaos_point,
    execute_point,
    map_points,
    platform_point,
    resilience_point,
)

__all__ = [
    "chaos_point",
    "execute_point",
    "map_points",
    "platform_point",
    "resilience_point",
]
