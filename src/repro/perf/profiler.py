"""cProfile harness for one workload run, plus simulator-side counters.

``python -m repro profile <workload>`` answers two questions at once:
*where does host CPU time go* (the cProfile table) and *is the simulator
doing redundant work* (memo hit rates, MEE counter-cache behaviour from the
run's own stats). The second half is what distinguishes a model bug from a
Python-level hot spot — a 0% memo hit rate on a sweep means the cache key
is wrong, not that the code needs micro-optimizing.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platform.config import PlatformConfig
from repro.platform.metrics import RunResult
from repro.platform.schemes import make_platform
from repro.sim.stats import memo_cache_stats
from repro.workloads import workload_by_name

_SORT_KEYS = ("cumulative", "tottime", "ncalls")


@dataclass
class ProfileReport:
    """Everything one profiling run produced."""

    workload: str
    scheme: str
    result: RunResult
    profile_table: str
    memo_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    alloc_table: str = ""

    def summary_lines(self) -> List[str]:
        lines = [
            f"profiled {self.workload} on {self.scheme}: "
            f"simulated total {self.result.total_time:.3f}s",
            "",
            "simulator counters:",
        ]
        for key, value in sorted(self.result.stats.items()):
            lines.append(f"  {key:>32s} = {value:.6g}")
        lines.append("")
        lines.append("memoized helpers (hits/misses/size):")
        if not self.memo_stats:
            lines.append("  (none registered)")
        for name, info in self.memo_stats.items():
            total = info["hits"] + info["misses"]
            rate = info["hits"] / total if total else 0.0
            lines.append(
                f"  {name:>28s}: {info['hits']}/{info['misses']}/{info['size']}"
                f"  ({rate * 100:.1f}% hit)"
            )
        if self.alloc_table:
            lines.append("")
            lines.append(self.alloc_table.rstrip())
        lines.append("")
        lines.append(self.profile_table.rstrip())
        return lines

    def format(self) -> str:
        return "\n".join(self.summary_lines())


def _format_alloc_stats(statistics: list, top_allocs: int) -> str:
    """Render tracemalloc per-line statistics as an aligned table."""
    lines = [f"top {top_allocs} allocation sites (tracemalloc, by total size):"]
    shown = statistics[:top_allocs]
    if not shown:
        lines.append("  (no allocations recorded)")
    for stat in shown:
        frame = stat.traceback[0]
        lines.append(
            f"  {stat.size / 1024:10.1f} KiB in {stat.count:>8d} blocks  "
            f"{frame.filename}:{frame.lineno}"
        )
    remainder = statistics[top_allocs:]
    if remainder:
        other = sum(stat.size for stat in remainder)
        lines.append(
            f"  {other / 1024:10.1f} KiB in {len(remainder)} other sites"
        )
    return "\n".join(lines)


def profile_run(
    workload: str,
    scheme: str = "iceclave",
    config: Optional[PlatformConfig] = None,
    seed: Optional[int] = None,
    sort: str = "cumulative",
    top: int = 25,
    top_allocs: int = 0,
) -> ProfileReport:
    """Run ``workload`` on ``scheme`` under cProfile.

    The workload generation happens *outside* the profiled region — the
    interesting cost is the platform model, and the profile should not be
    dominated by trace synthesis.

    ``top_allocs > 0`` additionally traces allocations with ``tracemalloc``
    and reports the heaviest allocation sites by total size. Tracing slows
    the run down (so the cProfile numbers shift), but the *relative* ranking
    of allocation sites is what the slab/batching work cares about.
    """
    if sort not in _SORT_KEYS:
        raise ValueError(f"sort must be one of {_SORT_KEYS}")
    if top < 1:
        raise ValueError("top must be >= 1")
    if top_allocs < 0:
        raise ValueError("top_allocs must be >= 0")
    cfg = config or PlatformConfig()
    kwargs = {} if seed is None else {"seed": seed}
    profile = workload_by_name(workload, **kwargs).run()
    platform = make_platform(scheme, cfg)

    alloc_table = ""
    if top_allocs:
        import tracemalloc

        tracemalloc.start()
    profiler = cProfile.Profile()
    profiler.enable()
    result = platform.run(profile)
    profiler.disable()
    if top_allocs:
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        alloc_table = _format_alloc_stats(
            snapshot.statistics("lineno"), top_allocs
        )

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    return ProfileReport(
        workload=workload,
        scheme=scheme,
        result=result,
        profile_table=stream.getvalue(),
        memo_stats=memo_cache_stats(),
        alloc_table=alloc_table,
    )
