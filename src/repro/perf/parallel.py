"""Deterministic parallel execution of independent experiment points.

An experiment *point* is a picklable ``(kind, payload)`` tuple describing
one self-contained piece of work: run one workload on one scheme, run one
chaos campaign, run one resilience experiment. Points carry names and
seeds — never live objects — so a worker process rebuilds exactly the same
deterministic state the serial path would, and the result is bit-identical
either way.

Ordering contract: :func:`map_points` returns results in *input order*
regardless of worker count or completion order (``Pool.map`` preserves
order; the serial path trivially does). Callers therefore merge results by
index and produce byte-identical output at ``--jobs 1`` and ``--jobs N``.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.platform.config import PlatformConfig
from repro.platform.metrics import RunResult
from repro.platform.schemes import make_platform
from repro.workloads import workload_by_name

Spec = Tuple[str, Tuple[Any, ...]]

# Per-process cache: a worker handed several points for the same workload
# regenerates the (deterministic) profile only once.
_PROFILE_CACHE: Dict[Tuple[str, Optional[int]], Any] = {}


def platform_point(
    workload: str,
    scheme: str,
    config: PlatformConfig,
    seed: Optional[int] = None,
) -> Spec:
    """One (workload, scheme, config) run; returns a :class:`RunResult`."""
    return ("platform-run", (workload, scheme, config, seed))


def chaos_point(workload: str, write_ratio: float, seed: int, ops: int) -> Spec:
    """One fault-injection campaign; returns a ``ChaosReport``."""
    return ("chaos", (workload, write_ratio, seed, ops))


def resilience_point(seed: int, ops: int) -> Spec:
    """One two-arm resilience experiment; returns a ``ResilienceReport``."""
    return ("resilience", (seed, ops))


def fleet_point(
    seed: int,
    requests: int,
    devices: int,
    replication: int,
    hedge: bool,
    device_kills: int = 1,
    die_quarantines: int = 2,
) -> Spec:
    """One fleet lab arm; returns a ``FleetArmReport``."""
    return (
        "fleet-arm",
        (seed, requests, devices, replication, hedge, device_kills, die_quarantines),
    )


def _profile_for(workload: str, seed: Optional[int]) -> Any:
    key = (workload, seed)
    profile = _PROFILE_CACHE.get(key)
    if profile is None:
        kwargs = {} if seed is None else {"seed": seed}
        profile = _PROFILE_CACHE[key] = workload_by_name(workload, **kwargs).run()
    return profile


def execute_point(spec: Spec) -> Any:
    """Run one point to completion; pure in the spec (same spec ⇒ same result)."""
    kind, payload = spec
    if kind == "platform-run":
        workload, scheme, config, seed = payload
        profile = _profile_for(workload, seed)
        result: RunResult = make_platform(scheme, config).run(profile)
        return result
    if kind == "chaos":
        from repro.faults import run_chaos

        workload, write_ratio, seed, ops = payload
        return run_chaos(workload, write_ratio, seed=seed, ops=ops)
    if kind == "resilience":
        from repro.resilience import run_resilience

        seed, ops = payload
        return run_resilience(seed=seed, ops=ops)
    if kind == "fleet-arm":
        from repro.fleet import run_fleet_arm

        seed, requests, devices, replication, hedge, kills, quarantines = payload
        return run_fleet_arm(
            seed,
            requests,
            devices=devices,
            replication=replication,
            hedge=hedge,
            device_kills=kills,
            die_quarantines=quarantines,
        )
    raise ValueError(f"unknown point kind {kind!r}")


def map_points(specs: Iterable[Spec], jobs: int = 1) -> List[Any]:
    """Execute every point; results come back in input order.

    ``jobs <= 1`` runs inline (no pool, no pickling). With more jobs a
    process pool fans the points out; ``chunksize=1`` keeps scheduling
    greedy so one slow point does not serialize a whole chunk behind it.
    """
    spec_list = list(specs)
    if jobs <= 1 or len(spec_list) <= 1:
        return [execute_point(spec) for spec in spec_list]
    methods = multiprocessing.get_all_start_methods()
    # fork skips re-importing the world per worker; fall back where absent
    use_fork = "fork" in methods
    if use_fork:
        # build each distinct profile once in the parent: forked workers
        # inherit the cache, so no worker re-synthesizes a trace. (Profiles
        # are deterministic in (name, seed), so warming changes nothing.)
        for kind, payload in spec_list:
            if kind == "platform-run":
                _profile_for(payload[0], payload[3])
    ctx = multiprocessing.get_context("fork" if use_fork else None)
    workers = min(jobs, len(spec_list))
    with ctx.Pool(processes=workers) as pool:
        return pool.map(execute_point, spec_list, chunksize=1)
