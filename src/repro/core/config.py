"""IceClave configuration: measured constants and sizing (Tables 3 and 5).

Lifecycle and world-switch costs were measured by the authors on the
OpenSSD Cosmos+ FPGA prototype (Table 5); memory-side latencies come from
Table 3 and §6.3. They are inputs to the timing model, and the Table 5
benchmark prints them next to the values the micro-simulation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MICROSECOND = 1e-6
NANOSECOND = 1e-9


@dataclass(frozen=True)
class IceClaveConfig:
    """All tunables of the IceClave runtime and protection machinery."""

    # -- TEE lifecycle (Table 5, FPGA-measured) --
    tee_create_time: float = 95 * MICROSECOND
    tee_delete_time: float = 58 * MICROSECOND
    context_switch_time: float = 3.8 * MICROSECOND

    # -- memory protection machinery (Table 3 / §4.4 / §5) --
    memory_encryption_time: float = 102.6 * NANOSECOND
    memory_verification_time: float = 151.2 * NANOSECOND
    aes_delay: float = 60 * NANOSECOND  # AES-128 hardware latency
    counter_cache_bytes: int = 128 * KIB
    cache_line_bytes: int = 64
    page_bytes: int = 4 * KIB

    # -- SSD DRAM --
    dram_bytes: int = 4 * GIB

    # -- runtime sizing (§4.5) --
    tee_preallocation_bytes: int = 16 * MIB
    max_tee_code_bytes: int = 528 * KIB  # paper: in-storage programs are 28-528KB
    protected_region_bytes: int = 64 * MIB  # hosts the cached mapping table
    secure_region_bytes: int = 128 * MIB  # FTL + IceClave runtime

    # -- stream cipher engine (§5) --
    cipher_keystream_bits_per_cycle: int = 64
    cipher_clock_hz: float = 400e6

    # -- minor-counter geometry of the split-counter scheme --
    minor_counter_bits: int = 7  # SC-64: 64 x 7-bit minors + one major / line

    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.tee_preallocation_bytes <= 0:
            raise ValueError("TEE preallocation must be positive")
        if self.dram_bytes <= self.protected_region_bytes + self.secure_region_bytes:
            raise ValueError("DRAM must be larger than the reserved regions")

    @property
    def normal_region_bytes(self) -> int:
        """DRAM left for in-storage programs after the reserved regions."""
        return self.dram_bytes - self.protected_region_bytes - self.secure_region_bytes

    @property
    def minor_counter_limit(self) -> int:
        """Writes to one line before a minor counter overflows (2^bits)."""
        return 1 << self.minor_counter_bits

    def cipher_page_latency(self) -> float:
        """Time for the stream-cipher engine to cover one flash page.

        The engine produces ``cipher_keystream_bits_per_cycle`` per cycle
        (Figure 10: 64 keystream bits/cycle), pipelined with the transfer.
        """
        bits = self.page_bytes * 8
        cycles = bits / self.cipher_keystream_bits_per_cycle
        return cycles / self.cipher_clock_hz

    def with_dram(self, dram_bytes: int) -> "IceClaveConfig":
        """Copy with a different SSD DRAM capacity (Figure 16 sweep)."""
        return replace(self, dram_bytes=dram_bytes)
