"""RISC-V realization of IceClave's three-region protection (§4.7).

The paper's discussion: as SSD vendors adopt RISC-V controllers, the
normal/protected/secure regions can be mapped onto RISC-V's privilege
levels — machine mode (M) hosts the FTL and IceClave runtime, supervisor
mode (S) the in-storage runtime services, and user mode (U) the offloaded
programs — with Physical Memory Protection (PMP) entries enforcing the
region permissions.

This module implements the RISC-V side faithfully enough to prove the
mapping works: PMP entry encoding (NAPOT/TOR address matching, R/W/X and
the lock bit), priority-ordered matching, and a checker that reproduces
exactly the Figure 6 permission matrix:

    region      M-mode      S/U-mode
    normal      R/W         R/W
    protected   R/W         R (read-only)
    secure      R/W         no access

PMP semantics follow the privileged spec: entries are checked in order,
the first match decides; locked entries bind M-mode too (unlocked entries
let M-mode through by default, which is what gives the FTL full access).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.core.exceptions import MMUFault
from repro.core.memory_protection import AccessType, MemoryRegion


class PrivilegeLevel(Enum):
    """RISC-V privilege levels (privileged spec v1.10, cited by the paper)."""

    USER = 0  # offloaded in-storage programs
    SUPERVISOR = 1  # in-storage runtime services
    MACHINE = 3  # FTL + IceClave runtime


class AddressMatch(Enum):
    OFF = 0
    TOR = 1  # top-of-range: previous entry's address .. this address
    NAPOT = 3  # naturally aligned power-of-two region


@dataclass(frozen=True)
class PmpEntry:
    """One PMP address/config register pair."""

    mode: AddressMatch
    address: int  # encoded per mode (see napot/tor constructors)
    readable: bool
    writable: bool
    executable: bool
    locked: bool  # L bit: applies to M-mode as well

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("PMP address must be non-negative")
        if self.writable and not self.readable:
            raise ValueError("W without R is a reserved PMP combination")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def napot(base: int, size: int, r: bool, w: bool, x: bool, locked: bool) -> "PmpEntry":
        """A naturally aligned power-of-two region [base, base+size)."""
        if size < 8 or size & (size - 1):
            raise ValueError("NAPOT size must be a power of two >= 8")
        if base % size:
            raise ValueError("NAPOT base must be size-aligned")
        # pmpaddr encoding: base/4 with low bits set to encode the size
        encoded = (base >> 2) | ((size >> 3) - 1)
        return PmpEntry(AddressMatch.NAPOT, encoded, r, w, x, locked)

    @staticmethod
    def tor(top: int, r: bool, w: bool, x: bool, locked: bool) -> "PmpEntry":
        """Top-of-range entry; the region floor is the previous entry's top."""
        if top % 4:
            raise ValueError("TOR addresses are 4-byte granular")
        return PmpEntry(AddressMatch.TOR, top >> 2, r, w, x, locked)

    # -- decoding ----------------------------------------------------------------

    def napot_range(self) -> Tuple[int, int]:
        if self.mode is not AddressMatch.NAPOT:
            raise ValueError("not a NAPOT entry")
        trailing_ones = 0
        addr = self.address
        while addr & 1:
            trailing_ones += 1
            addr >>= 1
        size = 1 << (trailing_ones + 3)
        base = (self.address & ~((1 << trailing_ones) - 1)) << 2
        return base, base + size

    def matches(self, address: int, previous_top: int) -> Tuple[bool, int]:
        """(does this entry match ``address``, new previous_top)."""
        if self.mode is AddressMatch.OFF:
            return False, self.address << 2
        if self.mode is AddressMatch.TOR:
            top = self.address << 2
            return previous_top <= address < top, top
        base, end = self.napot_range()
        return base <= address < end, previous_top


class PhysicalMemoryProtection:
    """An ordered bank of PMP entries plus the permission check."""

    MAX_ENTRIES = 16

    def __init__(self, entries: Optional[List[PmpEntry]] = None) -> None:
        self.entries: List[PmpEntry] = list(entries or [])
        if len(self.entries) > self.MAX_ENTRIES:
            raise ValueError(f"at most {self.MAX_ENTRIES} PMP entries")
        self.faults = 0

    def add(self, entry: PmpEntry) -> None:
        if len(self.entries) >= self.MAX_ENTRIES:
            raise ValueError("PMP entry bank is full")
        self.entries.append(entry)

    def check(self, address: int, privilege: PrivilegeLevel, access: AccessType) -> None:
        """Raise :class:`MMUFault` unless the access is permitted.

        Priority-ordered first-match; unmatched S/U accesses fail, and
        unmatched M-mode accesses succeed (the spec's default).
        """
        previous_top = 0
        for entry in self.entries:
            matched, previous_top = entry.matches(address, previous_top)
            if not matched:
                continue
            if privilege is PrivilegeLevel.MACHINE and not entry.locked:
                return  # unlocked entries do not constrain M-mode
            allowed = entry.readable if access is AccessType.READ else entry.writable
            if not allowed:
                self.faults += 1
                raise MMUFault(
                    f"{privilege.name}-mode {access.value} at {address:#x} denied by PMP"
                )
            return
        if privilege is PrivilegeLevel.MACHINE:
            return
        self.faults += 1
        raise MMUFault(
            f"{privilege.name}-mode {access.value} at {address:#x}: no PMP match"
        )


def iceclave_pmp_layout(
    secure_bytes: int, protected_bytes: int, dram_bytes: int
) -> PhysicalMemoryProtection:
    """Build the PMP configuration realizing Figure 4 on RISC-V (§4.7).

    Layout mirrors :class:`~repro.core.memory_protection.AddressSpace`:
    secure region at the bottom, then the protected region, then normal
    memory. All three entries use TOR matching so arbitrary (4-byte
    aligned) region sizes work.
    """
    for name, value in (("secure", secure_bytes), ("protected", protected_bytes)):
        if value <= 0 or value % 4:
            raise ValueError(f"{name} region must be positive and 4-byte aligned")
    if secure_bytes + protected_bytes >= dram_bytes:
        raise ValueError("reserved regions exceed DRAM")
    return PhysicalMemoryProtection(
        [
            # secure region: no R/W for S/U; unlocked so M-mode passes
            PmpEntry.tor(secure_bytes, r=False, w=False, x=False, locked=False),
            # protected region: read-only for S/U (the cached mapping table)
            PmpEntry.tor(secure_bytes + protected_bytes, r=True, w=False, x=False,
                         locked=False),
            # normal region: full access for everyone
            PmpEntry.tor(dram_bytes, r=True, w=True, x=True, locked=False),
        ]
    )


def region_of_pmp_layout(
    address: int, secure_bytes: int, protected_bytes: int, dram_bytes: int
) -> MemoryRegion:
    """Classify an address under the standard IceClave PMP layout."""
    if not 0 <= address < dram_bytes:
        raise MMUFault(f"address {address:#x} outside DRAM")
    if address < secure_bytes:
        return MemoryRegion.SECURE
    if address < secure_bytes + protected_bytes:
        return MemoryRegion.PROTECTED
    return MemoryRegion.NORMAL
