"""TrustZone-extended memory protection: the three-region model (§4.2).

IceClave partitions SSD DRAM into *normal*, *protected*, and *secure*
regions (Figure 4). Figure 6 gives the descriptor encoding: the NS bit
selects the security domain, AP[2:1] the access permissions, and a reserved
descriptor bit (ES) distinguishes the protected region:

    region     ES  AP[2:1]  NS   normal world    secure world
    normal      1    01      1   R/W             R/W
    protected   0    01      1   R (read-only)   R/W
    secure      0    00      0   no access       R/W

The protected region hosts the cached mapping table so in-storage programs
can translate addresses without a world switch; only secure-world FTL code
can update it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import MMUFault


class World(Enum):
    """Execution security state of the core (TrustZone worlds)."""

    NORMAL = "normal"
    SECURE = "secure"


class MemoryRegion(Enum):
    NORMAL = "normal"
    PROTECTED = "protected"
    SECURE = "secure"


class AccessType(Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class RegionDescriptor:
    """The Figure 6 descriptor bits for one region."""

    es: int  # reserved bit repurposed to mark the protected region
    ap: int  # AP[2:1]
    ns: int  # non-secure bit

    def region(self) -> MemoryRegion:
        """Decode the bit pattern back to a region (inverse of encoding)."""
        try:
            return _BITS_TO_REGION[(self.es, self.ap, self.ns)]
        except KeyError:
            raise MMUFault(
                f"reserved descriptor encoding ES={self.es} AP={self.ap:02b} NS={self.ns}"
            ) from None


_REGION_TO_BITS: Dict[MemoryRegion, RegionDescriptor] = {
    MemoryRegion.NORMAL: RegionDescriptor(es=1, ap=0b01, ns=1),
    MemoryRegion.PROTECTED: RegionDescriptor(es=0, ap=0b01, ns=1),
    MemoryRegion.SECURE: RegionDescriptor(es=0, ap=0b00, ns=0),
}

_BITS_TO_REGION = {
    (d.es, d.ap, d.ns): region for region, d in _REGION_TO_BITS.items()
}

# permission matrix straight from Figure 6
_PERMISSIONS: Dict[Tuple[MemoryRegion, World], Tuple[bool, bool]] = {
    # (region, world): (can_read, can_write)
    (MemoryRegion.NORMAL, World.NORMAL): (True, True),
    (MemoryRegion.NORMAL, World.SECURE): (True, True),
    (MemoryRegion.PROTECTED, World.NORMAL): (True, False),
    (MemoryRegion.PROTECTED, World.SECURE): (True, True),
    (MemoryRegion.SECURE, World.NORMAL): (False, False),
    (MemoryRegion.SECURE, World.SECURE): (True, True),
}


def descriptor_for(region: MemoryRegion) -> RegionDescriptor:
    """The Figure 6 bit pattern for a region."""
    return _REGION_TO_BITS[region]


def check_access(region: MemoryRegion, world: World, access: AccessType) -> None:
    """Raise :class:`MMUFault` unless the access is allowed by Figure 6."""
    can_read, can_write = _PERMISSIONS[(region, world)]
    allowed = can_read if access is AccessType.READ else can_write
    if not allowed:
        raise MMUFault(
            f"{world.value}-world {access.value} to {region.value} region denied"
        )


@dataclass(frozen=True)
class _Range:
    start: int
    end: int  # exclusive
    region: MemoryRegion
    owner: Optional[int]  # TEE id for per-TEE normal-region carve-outs


class AddressSpace:
    """The SSD DRAM physical address map with region attributes.

    Layout (low to high): secure region (FTL + IceClave runtime), protected
    region (cached mapping table), then the normal region from which TEE
    memory is carved. Normal-region carve-outs are tagged with the owning
    TEE so cross-TEE accesses fault even inside the normal world.
    """

    def __init__(
        self,
        dram_bytes: int,
        secure_bytes: int,
        protected_bytes: int,
    ) -> None:
        if secure_bytes + protected_bytes >= dram_bytes:
            raise ValueError("reserved regions exceed DRAM capacity")
        self.dram_bytes = dram_bytes
        self.secure_range = _Range(0, secure_bytes, MemoryRegion.SECURE, None)
        self.protected_range = _Range(
            secure_bytes, secure_bytes + protected_bytes, MemoryRegion.PROTECTED, None
        )
        self._normal_start = secure_bytes + protected_bytes
        self._allocations: List[_Range] = []
        self._alloc_cursor = self._normal_start
        self.faults = 0

    # -- allocation -----------------------------------------------------------

    def allocate(self, nbytes: int, owner: Optional[int] = None) -> _Range:
        """Carve a normal-region range (a TEE's preallocated memory)."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        start = self._alloc_cursor
        end = start + nbytes
        if end > self.dram_bytes:
            raise MemoryError(
                f"normal region exhausted ({end - self.dram_bytes} bytes over)"
            )
        rng = _Range(start, end, MemoryRegion.NORMAL, owner)
        self._allocations.append(rng)
        self._alloc_cursor = end
        return rng

    def free(self, rng: _Range) -> None:
        """Release a carve-out (naive free list; reuse only at the tail)."""
        self._allocations.remove(rng)
        if rng.end == self._alloc_cursor:
            self._alloc_cursor = rng.start

    def free_bytes(self) -> int:
        return self.dram_bytes - self._alloc_cursor

    # -- classification and checking ----------------------------------------

    def region_of(self, address: int) -> MemoryRegion:
        if not 0 <= address < self.dram_bytes:
            raise MMUFault(f"address {address:#x} outside DRAM")
        if address < self.secure_range.end:
            return MemoryRegion.SECURE
        if address < self.protected_range.end:
            return MemoryRegion.PROTECTED
        return MemoryRegion.NORMAL

    def owner_of(self, address: int) -> Optional[int]:
        for rng in self._allocations:
            if rng.start <= address < rng.end:
                return rng.owner
        return None

    def check(
        self,
        address: int,
        world: World,
        access: AccessType,
        tee_id: Optional[int] = None,
    ) -> MemoryRegion:
        """Full access check: region permissions plus per-TEE isolation.

        Returns the region on success; raises :class:`MMUFault` otherwise.
        """
        try:
            region = self.region_of(address)
            check_access(region, world, access)
            if region is MemoryRegion.NORMAL and world is World.NORMAL:
                owner = self.owner_of(address)
                if owner is not None and tee_id is not None and owner != tee_id:
                    raise MMUFault(
                        f"TEE {tee_id} touched memory of TEE {owner} at {address:#x}"
                    )
        except MMUFault:
            self.faults += 1
            raise
        return region
