"""Counter cache: the on-chip cache for MEE metadata (§5: 128 KB).

Caches encryption-counter blocks, MAC lines, and integrity-tree nodes.
Write-back with dirty tracking: evicting a dirty line costs a memory write,
which is part of the extra traffic Table 6 accounts. The victim's key is
returned so the MEE can attribute the write-back to encryption vs
verification traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class CounterCache:
    """Fully associative LRU cache over 64-byte metadata lines."""

    __slots__ = (
        "capacity_lines",
        "line_bytes",
        "_lru",
        "hits",
        "misses",
        "dirty_evictions",
        "clean_evictions",
    )

    def __init__(self, capacity_bytes: int, line_bytes: int = 64) -> None:
        if capacity_bytes < line_bytes:
            raise ValueError("cache smaller than one line")
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self._lru: OrderedDict[Hashable, bool] = OrderedDict()  # key -> dirty
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0
        self.clean_evictions = 0

    def access(self, key: Hashable, dirty: bool = False) -> Tuple[bool, Optional[Hashable]]:
        """Touch a metadata line.

        Returns ``(hit, dirty_victim_key)``: whether the line was resident,
        and — when the fill evicted a dirty line — that victim's key (the
        caller charges its write-back). ``dirty_victim_key`` is None when
        nothing dirty was evicted.
        """
        dirty_victim = None
        lru = self._lru
        if key in lru:
            self.hits += 1
            lru.move_to_end(key)
            if dirty:
                lru[key] = True
            return True, dirty_victim
        self.misses += 1
        if len(lru) >= self.capacity_lines:
            victim_key, victim_dirty = lru.popitem(last=False)
            if victim_dirty:
                self.dirty_evictions += 1
                dirty_victim = victim_key
            else:
                self.clean_evictions += 1
        lru[key] = dirty
        return False, dirty_victim

    def contains(self, key: Hashable) -> bool:
        return key in self._lru

    def flush(self) -> int:
        """Drop everything; returns how many dirty lines needed write-back."""
        dirty = sum(1 for d in self._lru.values() if d)
        self.dirty_evictions += dirty
        self._lru.clear()
        return dirty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0
        self.clean_evictions = 0

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """LRU contents as an item list: recency order is part of the state.

        Keys are already primitive (strings/ints/tuples), so they serialize
        as-is; capacity/line size are constructor configuration.
        """
        return {
            "lru": [(key, dirty) for key, dirty in self._lru.items()],
            "hits": self.hits,
            "misses": self.misses,
            "dirty_evictions": self.dirty_evictions,
            "clean_evictions": self.clean_evictions,
        }

    def restore_state(self, state: dict) -> None:
        self._lru = OrderedDict((key, dirty) for key, dirty in state["lru"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.dirty_evictions = state["dirty_evictions"]
        self.clean_evictions = state["clean_evictions"]
