"""Secure boot of the SSD controller firmware.

The threat model (§3) trusts the SSD vendor and the firmware it ships —
the FTL and IceClave runtime live in the secure world *because* the boot
ROM verified them. This module makes that root of trust explicit: a boot
ROM holding the vendor's verification key checks each firmware stage
(bootloader → FTL → IceClave runtime) before handing over control, and
records the boot measurements that attestation quotes can later report.

Signatures are modelled as keyed MACs (the vendor provisions the secret
into the ROM at manufacturing), which preserves exactly the property the
simulation needs: only vendor-endorsed images boot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.exceptions import IceClaveError
from repro.crypto.mac import Mac


class SecureBootError(IceClaveError):
    """A firmware stage failed verification; the controller halts."""


@dataclass(frozen=True)
class FirmwareImage:
    """One signed firmware stage."""

    name: str
    payload: bytes
    version: int
    signature: bytes

    def digest(self) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        h.update(self.name.encode())
        h.update(self.version.to_bytes(4, "big"))
        h.update(self.payload)
        return h.digest()


class VendorSigner:
    """The vendor's signing facility (manufacturing side)."""

    def __init__(self, vendor_secret: bytes) -> None:
        if len(vendor_secret) < 16:
            raise ValueError("vendor secret must be at least 128 bits")
        self._mac = Mac(vendor_secret)

    def sign(self, name: str, payload: bytes, version: int) -> FirmwareImage:
        unsigned = FirmwareImage(name=name, payload=payload, version=version,
                                 signature=b"")
        return FirmwareImage(
            name=name,
            payload=payload,
            version=version,
            signature=self._mac.digest(unsigned.digest()),
        )


@dataclass
class BootReport:
    """What booted, in order, with measurements (feeds attestation)."""

    stages: List[str] = field(default_factory=list)
    measurements: Dict[str, bytes] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)

    def chain_measurement(self) -> bytes:
        """A single digest binding the whole boot chain."""
        h = hashlib.blake2b(digest_size=16)
        for stage in self.stages:
            h.update(self.measurements[stage])
        return h.digest()


class BootRom:
    """The immutable first-stage verifier burned into the controller."""

    BOOT_ORDER = ("bootloader", "ftl", "iceclave-runtime")

    def __init__(self, vendor_secret: bytes) -> None:
        self._mac = Mac(vendor_secret)
        # anti-rollback: monotonic minimum version per stage
        self.min_versions: Dict[str, int] = {name: 0 for name in self.BOOT_ORDER}

    def verify(self, image: FirmwareImage) -> None:
        if image.name not in self.BOOT_ORDER:
            raise SecureBootError(f"unknown firmware stage '{image.name}'")
        if not self._mac.verify(image.signature, image.digest()):
            raise SecureBootError(f"{image.name}: signature verification failed")
        if image.version < self.min_versions[image.name]:
            raise SecureBootError(
                f"{image.name}: version {image.version} rolled back below "
                f"{self.min_versions[image.name]}"
            )

    def boot(self, images: List[FirmwareImage]) -> BootReport:
        """Verify and 'execute' the chain in order; halt on any failure.

        On success, anti-rollback floors advance to the booted versions.
        """
        by_name = {image.name: image for image in images}
        missing = [name for name in self.BOOT_ORDER if name not in by_name]
        if missing:
            raise SecureBootError(f"missing firmware stages: {', '.join(missing)}")
        report = BootReport()
        for name in self.BOOT_ORDER:
            image = by_name[name]
            self.verify(image)
            report.stages.append(name)
            report.measurements[name] = image.digest()
            report.versions[name] = image.version
        # commit rollback floors only after the whole chain verified
        for name in self.BOOT_ORDER:
            self.min_versions[name] = max(self.min_versions[name],
                                          by_name[name].version)
        return report
