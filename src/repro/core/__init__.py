"""IceClave core: the paper's primary contribution.

- TrustZone-extended memory protection with the third *protected* region
  (§4.2, Figures 4 and 6).
- TEE lifecycle runtime implementing the Table 2 API (§4.5).
- Memory encryption engine with the hybrid-counter scheme and two Bonsai
  Merkle trees (§4.4, Figure 7).
- Stream-cipher engine securing flash→DRAM transfers (§5, Figure 10).
"""

from repro.core.config import IceClaveConfig
from repro.core.exceptions import (
    IceClaveError,
    IntegrityError,
    MMUFault,
    TeeAbort,
    TeeCreationError,
)
from repro.core.memory_protection import (
    AccessType,
    AddressSpace,
    MemoryRegion,
    RegionDescriptor,
    World,
)
from repro.core.counter_cache import CounterCache
from repro.core.integrity import BonsaiMerkleTree
from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine, MeeAccessResult
from repro.core.cipher_engine import StreamCipherEngine
from repro.core.tee import Tee, TeeState
from repro.core.runtime import IceClaveRuntime
from repro.core.scheduler import TeeScheduler
from repro.core.attestation import AttestationDevice, AttestationVerifier, Quote
from repro.core.secure_boot import BootRom, VendorSigner
from repro.core.key_management import derive_kek, unwrap_key, wrap_key
from repro.core.fde import FdeEngine

__all__ = [
    "IceClaveConfig",
    "IceClaveError",
    "IntegrityError",
    "MMUFault",
    "TeeAbort",
    "TeeCreationError",
    "AccessType",
    "AddressSpace",
    "MemoryRegion",
    "RegionDescriptor",
    "World",
    "CounterCache",
    "BonsaiMerkleTree",
    "EncryptionScheme",
    "MemoryEncryptionEngine",
    "MeeAccessResult",
    "StreamCipherEngine",
    "Tee",
    "TeeState",
    "IceClaveRuntime",
    "TeeScheduler",
    "AttestationDevice",
    "AttestationVerifier",
    "Quote",
    "BootRom",
    "VendorSigner",
    "derive_kek",
    "unwrap_key",
    "wrap_key",
    "FdeEngine",
]
