"""Cooperative scheduler for concurrent in-storage TEEs (§4.6).

The IceClave runtime hosts several TEEs at once (§6.8) and "constantly
monitors the status of initiated TEEs". This scheduler runs offloaded
programs — written as Python generators that ``yield`` at their natural
I/O boundaries — round-robin with a bounded step budget per turn, and runs
the runtime's integrity monitor between turns:

- a program exception aborts only its own TEE (ThrowOutTEE case 3);
- a TEE whose metadata fails its integrity check is aborted (case 2);
- a program that exhausts its total step budget is aborted (runaway
  protection), keeping the shared controller cores available.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.runtime import IceClaveRuntime
from repro.core.tee import Tee, TeeState

TeeProgram = Generator[Any, None, bytes]  # yields at I/O points, returns result


@dataclass
class ScheduledTask:
    tee: Tee
    program: TeeProgram
    steps_taken: int = 0
    finished: bool = False


@dataclass
class ScheduleOutcome:
    """What one scheduling run produced."""

    completed: Dict[int, bytes] = field(default_factory=dict)  # eid -> result
    aborted: Dict[int, str] = field(default_factory=dict)  # eid -> reason
    rounds: int = 0


def _metadata_digest(tee: Tee) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    h.update(tee.eid.to_bytes(2, "big"))
    h.update(tee.measurement)
    h.update(len(tee.lpas).to_bytes(4, "big"))
    for lpa in tee.lpas:
        h.update(lpa.to_bytes(8, "big"))
    return h.digest()


class TeeScheduler:
    """Round-robin execution of TEE programs with integrity monitoring."""

    def __init__(
        self,
        runtime: IceClaveRuntime,
        steps_per_turn: int = 8,
        max_steps_per_tee: int = 100_000,
    ) -> None:
        if steps_per_turn < 1 or max_steps_per_tee < 1:
            raise ValueError("step budgets must be positive")
        self.runtime = runtime
        self.steps_per_turn = steps_per_turn
        self.max_steps_per_tee = max_steps_per_tee
        self._tasks: List[ScheduledTask] = []
        self._metadata: Dict[int, bytes] = {}  # eid -> expected digest

    def submit(self, tee: Tee, program_fn: Callable[[Tee], TeeProgram]) -> None:
        """Queue a program for a created TEE; records its metadata digest."""
        if not tee.is_live():
            raise ValueError(f"TEE {tee.eid} is not runnable ({tee.state.value})")
        tee.state = TeeState.RUNNING
        self._tasks.append(ScheduledTask(tee=tee, program=program_fn(tee)))
        self._metadata[tee.eid] = _metadata_digest(tee)

    def _monitor(self, task: ScheduledTask) -> Optional[str]:
        """The runtime's integrity guard; returns an abort reason or None."""
        expected = self._metadata.get(task.tee.eid)
        if expected is None:
            return "metadata record missing"
        if _metadata_digest(task.tee) != expected:
            return "TEE metadata corrupted"
        if task.steps_taken > self.max_steps_per_tee:
            return "step budget exhausted"
        return None

    def run(self) -> ScheduleOutcome:
        """Run all queued programs to completion (or abort)."""
        outcome = ScheduleOutcome()
        while any(not t.finished for t in self._tasks):
            outcome.rounds += 1
            for task in self._tasks:
                if task.finished:
                    continue
                reason = self._monitor(task)
                if reason is not None:
                    self._abort(task, reason, outcome)
                    continue
                self._step(task, outcome)
        self._tasks.clear()
        self._metadata.clear()
        return outcome

    def _step(self, task: ScheduledTask, outcome: ScheduleOutcome) -> None:
        for _ in range(self.steps_per_turn):
            try:
                next(task.program)
                task.steps_taken += 1
            except StopIteration as stop:
                result = stop.value if stop.value is not None else b""
                task.tee.result = result
                task.tee.state = TeeState.COMPLETED
                outcome.completed[task.tee.eid] = result
                task.finished = True
                return
            # repro: allow[sec-broad-except] -- §4.5 case 3: program fault -> ThrowOutTEE
            except Exception as exc:
                self._abort(task, f"in-storage program exception: {exc}", outcome)
                return
            if task.steps_taken > self.max_steps_per_tee:
                return  # the monitor aborts it next turn

    def _abort(self, task: ScheduledTask, reason: str, outcome: ScheduleOutcome) -> None:
        self.runtime.throw_out_tee(task.tee, reason)
        outcome.aborted[task.tee.eid] = reason
        task.finished = True

    @property
    def pending(self) -> int:
        return sum(1 for t in self._tasks if not t.finished)
