"""Memory encryption engine with the hybrid-counter scheme (§4.4, Fig. 7).

Counter organization (64-byte metadata lines):

- **Split-counter block** (SC-64): one 64-bit major counter plus 64 7-bit
  minor counters — covers the 64 cache lines of one 4 KB page. Used for all
  pages under ``SPLIT_COUNTER`` and for *writable* pages under ``HYBRID``.
- **Major-counter block**: eight 64-bit major counters — covers *eight*
  read-only pages per metadata line (``HYBRID`` only). Because read-only
  pages never bump minors, dropping them packs 8× more coverage per counter
  cache line, which is the entire Figure 8 win.

Each data line also carries an 8-byte MAC (8 MACs per metadata line), and
counter blocks are protected by a Bonsai Merkle tree per counter type; both
roots live on-chip. A counter-cache hit means the counter (and the tree
path that authenticated it) is already verified on-chip, so the OTP can be
precomputed and decryption is pipelined; a miss serializes the counter
fetch plus the uncached part of the tree walk.

This module is the *timing/traffic* engine. Functional encryption (real
AES OTPs, real MAC verification, real trees) lives in
:class:`FunctionalMee` at the bottom, built on the same counter state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Dict, List, Tuple

from repro.core.config import IceClaveConfig
from repro.core.counter_cache import CounterCache
from repro.core.exceptions import IntegrityError
from repro.core.integrity import BonsaiMerkleTree
from repro.crypto.aes import AES128
from repro.crypto.mac import Mac

LINES_PER_PAGE = 64  # 4 KB page / 64 B line
MAJOR_COUNTERS_PER_BLOCK = 8
MACS_PER_LINE = 8
TREE_ARITY = 8


class EncryptionScheme(Enum):
    NONE = "none"
    SPLIT_COUNTER = "sc64"
    HYBRID = "hybrid"


class MeeAccessResult:
    """Cost of one protected memory access.

    A slotted plain class (not a dataclass): one is allocated per protected
    DRAM access, which makes construction cost part of the simulator's
    innermost loop.
    """

    __slots__ = (
        "latency",
        "counter_hit",
        "counter_read_lines",
        "counter_write_lines",
        "reencrypt_lines",
        "mac_read_lines",
        "mac_write_lines",
        "tree_read_lines",
        "tree_write_lines",
        "reencrypted_page",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Re-initialize in place (slab/scratch reuse on the replay path)."""
        self.latency = 0.0
        self.counter_hit = True
        self.counter_read_lines = 0.0  # encryption traffic (reads)
        self.counter_write_lines = 0.0  # encryption traffic (write-backs)
        self.reencrypt_lines = 0.0  # encryption traffic (page re-encryption)
        self.mac_read_lines = 0.0  # verification traffic
        self.mac_write_lines = 0.0
        self.tree_read_lines = 0.0
        self.tree_write_lines = 0.0
        self.reencrypted_page = False

    @property
    def encryption_lines(self) -> float:
        return self.counter_read_lines + self.counter_write_lines + self.reencrypt_lines

    @property
    def verification_lines(self) -> float:
        return (
            self.mac_read_lines
            + self.mac_write_lines
            + self.tree_read_lines
            + self.tree_write_lines
        )


@dataclass
class _SplitBlock:
    major: int = 0
    minors: List[int] = field(default_factory=lambda: [0] * LINES_PER_PAGE)


@dataclass
class MeeStats:
    data_reads: int = 0
    data_writes: int = 0
    encryption_lines: float = 0.0
    verification_lines: float = 0.0
    encryption_latency_total: float = 0.0
    verification_latency_total: float = 0.0
    critical_latency_total: float = 0.0
    encryption_ops: int = 0
    verification_ops: int = 0
    reencryptions: int = 0
    minor_overflows: int = 0
    permission_promotions: int = 0

    @property
    def data_lines(self) -> int:
        return self.data_reads + self.data_writes

    def encryption_extra_traffic(self) -> float:
        """Extra memory traffic from encryption, as a fraction (Table 6)."""
        return self.encryption_lines / self.data_lines if self.data_lines else 0.0

    def verification_extra_traffic(self) -> float:
        """Extra memory traffic from integrity verification (Table 6)."""
        return self.verification_lines / self.data_lines if self.data_lines else 0.0

    def mean_encryption_latency(self) -> float:
        """Average per-op encryption latency (Table 5: 102.6 ns)."""
        return (
            self.encryption_latency_total / self.encryption_ops
            if self.encryption_ops
            else 0.0
        )

    def mean_verification_latency(self) -> float:
        """Average per-op verification latency (Table 5: 151.2 ns)."""
        return (
            self.verification_latency_total / self.verification_ops
            if self.verification_ops
            else 0.0
        )


class MemoryEncryptionEngine:
    """Counter management, counter-cache simulation, and cost accounting."""

    def __init__(
        self,
        config: IceClaveConfig = IceClaveConfig(),
        scheme: EncryptionScheme = EncryptionScheme.HYBRID,
        dram_latency: float = 90e-9,
        mac_compute_time: float = 80e-9,
    ) -> None:
        self.config = config
        self.scheme = scheme
        self.dram_latency = dram_latency
        self.mac_compute_time = mac_compute_time
        self.cache = CounterCache(config.counter_cache_bytes, config.cache_line_bytes)
        self._split: Dict[int, _SplitBlock] = {}
        self._major: Dict[int, int] = {}  # page -> major counter
        self.stats = MeeStats()
        # runtime invariant monitor (repro.recovery); None = disabled
        self.invariant_monitor = None  # repro: allow[recovery-unserialized-state] -- monitors are re-armed by their owner after restore, never serialized
        # tree depths are sized for the whole protected DRAM
        dram_pages = config.dram_bytes // config.page_bytes
        self.split_tree_depth = self._depth(dram_pages)
        self.major_tree_depth = self._depth(
            math.ceil(dram_pages / MAJOR_COUNTERS_PER_BLOCK)
        )

    @staticmethod
    def _depth(leaves: int) -> int:
        return max(1, math.ceil(math.log(max(2, leaves), TREE_ARITY)))

    # -- counter bookkeeping -------------------------------------------------

    def _uses_split_block(self, page: int, readonly: bool) -> bool:
        if self.scheme is EncryptionScheme.SPLIT_COUNTER:
            return True
        # HYBRID: read-only pages use major blocks unless already promoted
        return (not readonly) or page in self._split

    def _counter_key(self, page: int, readonly: bool) -> Tuple[str, int]:
        if self._uses_split_block(page, readonly):
            return ("ctr-s", page)
        return ("ctr-m", page // MAJOR_COUNTERS_PER_BLOCK)

    def counter_of(self, page: int, line: int, readonly: bool) -> Tuple[int, int]:
        """(major, minor) encryption counter for one cache line."""
        if self._uses_split_block(page, readonly):
            block = self._split.setdefault(page, _SplitBlock())
            return block.major, block.minors[line]
        return self._major.get(page, 0), 0

    # -- tree walk simulation ----------------------------------------------------

    def _tree_walk(
        self, kind: str, leaf_index: int, depth: int, dirty: bool
    ) -> Tuple[float, float, float]:
        """Walk a counter's tree path through the cache.

        Returns (read_lines, writeback_lines, serialized_levels). The walk
        stops at the first cached (already verified) node on reads; updates
        touch the whole path and dirty it.
        """
        reads = 0.0
        writebacks = 0.0
        serialized = 0.0
        index = leaf_index
        cache_access = self.cache.access
        for level in range(1, depth + 1):
            index //= TREE_ARITY
            hit, victim = cache_access((kind, level, index), dirty=dirty)
            if victim is not None:
                writebacks += 1
            if hit and not dirty:
                break
            if not hit:
                reads += 1
                serialized += 1
        return reads, writebacks, serialized

    def _is_counter_key(self, key) -> bool:
        return isinstance(key, tuple) and isinstance(key[0], str) and key[0].startswith("ctr")

    def _charge_victim(self, victim, result: MeeAccessResult) -> None:
        if victim is None:
            return
        if self._is_counter_key(victim):
            result.counter_write_lines += 1
        elif victim[0] == "mac":
            result.mac_write_lines += 1
        else:
            result.tree_write_lines += 1

    # -- the two access paths ------------------------------------------------------

    def read(self, page: int, line: int = 0, readonly: bool = True) -> MeeAccessResult:
        """Account one protected cache-line read from DRAM.

        On a counter-cache hit the OTP is precomputed and the MAC check is
        pipelined with data use, so nothing lands on the critical path; a
        miss serializes the counter fetch, the uncached tree walk, and the
        OTP generation.
        """
        if not 0 <= line < LINES_PER_PAGE:
            raise ValueError(f"line {line} out of range [0, {LINES_PER_PAGE})")
        result = MeeAccessResult()
        stats = self.stats
        stats.data_reads += 1
        scheme = self.scheme
        if scheme is EncryptionScheme.NONE:
            return result

        # Inlined _counter_key/_uses_split_block/_book: this method runs once
        # per protected DRAM access and dominates MEE replay time, so the
        # common (hybrid, read-only, counter-hit) path avoids helper calls.
        if scheme is EncryptionScheme.SPLIT_COUNTER:
            use_split = True
        else:
            # HYBRID: read-only pages use major blocks unless already promoted
            use_split = (not readonly) or page in self._split
        if use_split:
            key = ("ctr-s", page)
        else:
            key = ("ctr-m", page // MAJOR_COUNTERS_PER_BLOCK)
        hit, victim = self.cache.access(key)
        if victim is not None:
            self._charge_victim(victim, result)
        result.counter_hit = hit
        enc_latency = self.config.aes_delay  # OTP generation (pipelined on hits)
        # §4.4: under the hybrid scheme, read-only pages never change, so
        # their reads skip per-line MAC verification (the counter path is
        # still authenticated on a miss). SC-64 verifies every access.
        # ``use_split`` is False exactly on that skip path (NONE returned
        # early, and SPLIT_COUNTER always splits).
        verify_latency = self.mac_compute_time if use_split else 0.0
        if hit:
            critical = 0.0
        else:
            # serialized: fetch counter, authenticate the uncached tree path,
            # then generate the OTP before the data can be decrypted
            result.counter_read_lines += 1
            if use_split:
                depth = self.split_tree_depth
            else:
                depth = self.major_tree_depth
            t_reads, t_wb, serialized = self._tree_walk(key[0], key[1], depth, dirty=False)
            result.tree_read_lines += t_reads
            result.tree_write_lines += t_wb
            enc_latency += self.dram_latency * (1 + serialized) + self.config.aes_delay
            verify_latency += self.mac_compute_time * serialized
            critical = enc_latency
        # The per-line data MAC rides in the DRAM spare area alongside the
        # data burst, so reads pay MAC *compute* but no extra fetch traffic
        # (this is what keeps read-side verification traffic at the ~2%
        # Table 6 reports).
        result.latency = enc_latency + verify_latency
        stats.encryption_lines += (
            result.counter_read_lines + result.counter_write_lines + result.reencrypt_lines
        )
        stats.verification_lines += (
            result.mac_read_lines
            + result.mac_write_lines
            + result.tree_read_lines
            + result.tree_write_lines
        )
        stats.encryption_latency_total += enc_latency
        stats.encryption_ops += 1
        if use_split:
            stats.verification_latency_total += verify_latency
            stats.verification_ops += 1
        stats.critical_latency_total += critical
        return result

    def write(self, page: int, line: int = 0, readonly: bool = False) -> MeeAccessResult:
        """Account one protected cache-line write back to DRAM.

        ``readonly`` describes the page's *current* permission: writing a
        read-only page under HYBRID triggers the dynamic permission change
        of §4.4 (major counter promoted into the split tree, page
        re-encrypted).
        """
        if not 0 <= line < LINES_PER_PAGE:
            raise ValueError(f"line {line} out of range [0, {LINES_PER_PAGE})")
        result = MeeAccessResult()
        stats = self.stats
        stats.data_writes += 1
        scheme = self.scheme
        if scheme is EncryptionScheme.NONE:
            return result

        enc_latency = self.config.aes_delay  # encrypt the outgoing line
        verify_latency = self.mac_compute_time  # fresh MAC over the line

        split = self._split
        if scheme is EncryptionScheme.HYBRID and readonly and page not in split:
            enc_latency += self._promote_page(page, result)

        block = split.get(page)
        if block is None:
            block = split[page] = _SplitBlock()
        minors = block.minors
        minors[line] += 1
        if minors[line] >= self.config.minor_counter_limit:
            # minor overflow: bump major, reset minors, re-encrypt the page
            block.major += 1
            block.minors = [0] * LINES_PER_PAGE
            stats.minor_overflows += 1
            enc_latency += self._reencrypt_page(result)

        cache_access = self.cache.access
        hit, victim = cache_access(("ctr-s", page), dirty=True)
        if victim is not None:
            self._charge_victim(victim, result)
        result.counter_hit = hit
        if not hit:
            result.counter_read_lines += 1  # fetch-for-ownership of the block
            enc_latency += self.dram_latency

        # the write dirties the tree path (BMT update) and the MAC line
        t_reads, t_wb, _ = self._tree_walk("ctr-s", page, self.split_tree_depth, dirty=True)
        result.tree_read_lines += t_reads
        result.tree_write_lines += t_wb
        mac_hit, mac_victim = cache_access(("mac", page, line // MACS_PER_LINE), dirty=True)
        if mac_victim is not None:
            self._charge_victim(mac_victim, result)
        if not mac_hit:
            result.mac_read_lines += 1

        result.latency = enc_latency + verify_latency
        # writes drain through the write buffer; only page re-encryption
        # storms stall the pipeline (inlined _book, as in ``read``)
        critical = self._reencrypt_stall if result.reencrypted_page else 0.0
        stats.encryption_lines += (
            result.counter_read_lines + result.counter_write_lines + result.reencrypt_lines
        )
        stats.verification_lines += (
            result.mac_read_lines
            + result.mac_write_lines
            + result.tree_read_lines
            + result.tree_write_lines
        )
        stats.encryption_latency_total += enc_latency
        stats.encryption_ops += 1
        stats.verification_latency_total += verify_latency
        stats.verification_ops += 1
        stats.critical_latency_total += critical
        monitor = self.invariant_monitor
        if monitor is not None:
            monitor.after_timing_mee_write(self, page, line)
        return result

    def replay(self, events: "List[Tuple[int, int, bool, bool]]") -> None:
        """Replay ``(page, line, is_write, readonly)`` events in bulk.

        Bit-identical in stats to calling :meth:`read`/:meth:`write` per
        event, but the dominant case — a counter-cache *hit* on a read —
        runs without allocating a :class:`MeeAccessResult` at all. That is
        sound because a hit never evicts (the cache only returns victims on
        fills), so every per-access traffic field would be 0.0, and adding
        0.0 to the non-negative stats accumulators is a bitwise no-op.
        """
        stats = self.stats
        scheme = self.scheme
        if scheme is EncryptionScheme.NONE:
            for _page, _line, is_write, _readonly in events:
                if is_write:
                    stats.data_writes += 1
                else:
                    stats.data_reads += 1
            return
        split = self._split
        cache_access = self.cache.access
        config = self.config
        mac_time = self.mac_compute_time
        hybrid = scheme is EncryptionScheme.HYBRID
        # scratch record for the miss path: hoisted out of the loop and
        # reset in place, so even misses stop allocating. It never escapes
        # (its fields are folded into the run stats below).
        scratch = MeeAccessResult()
        for page, line, is_write, readonly in events:
            if is_write:
                self.write(page, line, readonly=readonly)
                continue
            if not 0 <= line < LINES_PER_PAGE:
                raise ValueError(f"line {line} out of range [0, {LINES_PER_PAGE})")
            stats.data_reads += 1
            if hybrid:
                use_split = (not readonly) or page in split
            else:
                use_split = True
            if use_split:
                key = ("ctr-s", page)
            else:
                key = ("ctr-m", page // MAJOR_COUNTERS_PER_BLOCK)
            hit, victim = cache_access(key)
            if hit:
                # fast path: no traffic, nothing serialized, no allocation
                stats.encryption_latency_total += config.aes_delay
                stats.encryption_ops += 1
                if use_split:
                    stats.verification_latency_total += mac_time
                    stats.verification_ops += 1
                continue
            # miss path: mirror read()'s accounting exactly
            result = scratch
            result.reset()
            if victim is not None:
                self._charge_victim(victim, result)
            result.counter_hit = False
            enc_latency = config.aes_delay
            verify_latency = mac_time if use_split else 0.0
            result.counter_read_lines += 1
            depth = self.split_tree_depth if use_split else self.major_tree_depth
            t_reads, t_wb, serialized = self._tree_walk(key[0], key[1], depth, dirty=False)
            result.tree_read_lines += t_reads
            result.tree_write_lines += t_wb
            enc_latency += self.dram_latency * (1 + serialized) + config.aes_delay
            verify_latency += mac_time * serialized
            result.latency = enc_latency + verify_latency
            stats.encryption_lines += (
                result.counter_read_lines
                + result.counter_write_lines
                + result.reencrypt_lines
            )
            stats.verification_lines += (
                result.mac_read_lines
                + result.mac_write_lines
                + result.tree_read_lines
                + result.tree_write_lines
            )
            stats.encryption_latency_total += enc_latency
            stats.encryption_ops += 1
            if use_split:
                stats.verification_latency_total += verify_latency
                stats.verification_ops += 1
            stats.critical_latency_total += enc_latency

    def make_readonly(self, page: int) -> None:
        """Dynamic permission change back to read-only (§4.4).

        The major counter is incremented and copied back to the major tree;
        split state is dropped.
        """
        if self.scheme is not EncryptionScheme.HYBRID:
            return
        block = self._split.pop(page, None)
        if block is not None:
            self._major[page] = block.major + 1

    # -- helpers ----------------------------------------------------------------

    def _promote_page(self, page: int, result: MeeAccessResult) -> float:
        """Read-only → writable: seed split state and re-encrypt the page."""
        major = self._major.pop(page, 0)
        self._split[page] = _SplitBlock(major=major + 1)
        self.stats.permission_promotions += 1
        return self._reencrypt_page(result)

    @property
    def _reencrypt_stall(self) -> float:
        return LINES_PER_PAGE * (self.config.aes_delay + self.dram_latency)

    def _reencrypt_page(self, result: MeeAccessResult) -> float:
        """Re-encrypt all 64 lines of a page under a fresh counter."""
        result.reencrypt_lines += 2 * LINES_PER_PAGE  # read + write every line
        result.reencrypted_page = True
        self.stats.reencryptions += 1
        # the re-encryption streams through the AES pipeline
        return LINES_PER_PAGE * self.config.aes_delay

    def _book(
        self,
        result: MeeAccessResult,
        enc_latency: float,
        verify_latency: float,
        critical: float,
        performed_verify: bool = True,
    ) -> None:
        self.stats.encryption_lines += result.encryption_lines
        self.stats.verification_lines += result.verification_lines
        self.stats.encryption_latency_total += enc_latency
        self.stats.encryption_ops += 1
        if performed_verify:
            self.stats.verification_latency_total += verify_latency
            self.stats.verification_ops += 1
        self.stats.critical_latency_total += critical

    @staticmethod
    def _check_line(line: int) -> None:
        if not 0 <= line < LINES_PER_PAGE:
            raise ValueError(f"line {line} out of range [0, {LINES_PER_PAGE})")

    # -- aggregates -----------------------------------------------------------------

    def mean_access_overhead(self) -> float:
        """Average *critical-path* latency added per data access.

        Hit-path encryption/verification pipelines with data use; only the
        serialized miss paths and re-encryption storms slow the program.
        The full per-op latencies (Table 5) are in ``stats``.
        """
        ops = self.stats.data_lines
        if not ops:
            return 0.0
        return self.stats.critical_latency_total / ops

    def metadata_storage_bytes(self) -> int:
        """Current counter storage footprint."""
        line = self.config.cache_line_bytes
        split = len(self._split) * line
        major = math.ceil(len(self._major) / MAJOR_COUNTERS_PER_BLOCK) * line
        return split + major

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counter state, cache contents and cost accounting.

        Config/scheme/latencies and the derived tree depths
        (``split_tree_depth``/``major_tree_depth``) are constructor-owned.
        """
        return {
            "cache": self.cache.snapshot_state(),
            "split": [
                (page, block.major, list(block.minors))
                for page, block in self._split.items()
            ],
            "major": [(page, major) for page, major in self._major.items()],
            "stats": {
                f.name: getattr(self.stats, f.name) for f in fields(self.stats)
            },
        }

    def restore_state(self, state: dict) -> None:
        self.cache.restore_state(state["cache"])
        self._split = {
            page: _SplitBlock(major=major, minors=list(minors))
            for page, major, minors in state["split"]
        }
        self._major = {page: major for page, major in state["major"]}
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)


class FunctionalMee:
    """Real encryption/MAC/tree machinery over a small page range.

    Used by tests and the attack demo to show that ciphertext in DRAM is
    unintelligible, tampering is caught by MACs, and replay is caught by
    the Bonsai Merkle tree.
    """

    def __init__(self, pages: int, aes_key: bytes, mac_key: bytes) -> None:
        if pages < 1:
            raise ValueError("need at least one page")
        self.pages = pages
        self._aes = AES128(aes_key)
        self._mac = Mac(mac_key)
        self._counters: Dict[int, _SplitBlock] = {
            p: _SplitBlock() for p in range(pages)
        }
        # serialized-counter cache: read_line re-serializes the page counter
        # for every tree verification, but counters only change in write_line
        self._ser_cache: Dict[int, bytes] = {}
        self.tree = BonsaiMerkleTree(mac_key, arity=TREE_ARITY)
        self.tree.build([self._serialize_counter(p) for p in range(pages)])
        # attacker-visible stores: ciphertext and MACs live in "DRAM"
        self.dram_ciphertext: Dict[Tuple[int, int], bytes] = {}
        self.dram_macs: Dict[Tuple[int, int], bytes] = {}
        # runtime invariant monitor (repro.recovery); None = disabled
        self.invariant_monitor = None  # repro: allow[recovery-unserialized-state] -- monitors are re-armed by their owner after restore, never serialized

    def _serialize_counter(self, page: int) -> bytes:
        cached = self._ser_cache.get(page)
        if cached is None:
            block = self._counters[page]
            cached = block.major.to_bytes(8, "big") + bytes(
                m & 0x7F for m in block.minors
            )
            self._ser_cache[page] = cached
        return cached

    def _line_counter(self, page: int, line: int) -> bytes:
        """The counter material a line's MAC binds: major + its own minor.

        Binding the whole counter block would invalidate every sibling
        line's MAC on each write to the page; binding only this line's
        minor keeps MACs independent while replay of a stale pair still
        fails (the minor has moved on).
        """
        block = self._counters[page]
        return block.major.to_bytes(8, "big") + bytes([block.minors[line] & 0x7F])

    def _otp(self, page: int, line: int, nbytes: int) -> bytes:
        major, minor = (
            self._counters[page].major,
            self._counters[page].minors[line],
        )
        seed = (major << 40) ^ (minor << 24) ^ (page << 8) ^ line
        return self._aes.otp(seed, nbytes)

    def write_line(self, page: int, line: int, plaintext: bytes) -> None:
        """Encrypt + MAC a line into DRAM, bumping its minor counter."""
        self._check(page, line)
        block = self._counters[page]
        block.minors[line] += 1
        self._ser_cache.pop(page, None)  # counter changed; drop stale serialization
        pad = self._otp(page, line, len(plaintext))
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, pad))
        self.dram_ciphertext[(page, line)] = ciphertext
        self.dram_macs[(page, line)] = self._mac.digest(
            ciphertext, self._line_counter(page, line), bytes([line])
        )
        self.tree.update(page, self._serialize_counter(page))
        monitor = self.invariant_monitor
        if monitor is not None:
            monitor.after_mee_commit(self, page, line)

    def write_lines(self, items: "List[Tuple[int, int, bytes]]") -> None:
        """Batched :meth:`write_line`: one tree pass for many commits.

        Encrypts and MACs every ``(page, line, plaintext)`` in order, then
        updates the Bonsai tree once per *page* (final counter state) via
        :meth:`BonsaiMerkleTree.update_batch` — the tree nodes, root, and
        counters end up byte-identical to per-line calls, with the shared
        dirty paths recomputed once. Journal replay after a crash is the
        heavy consumer. With an armed invariant monitor the per-line path
        runs instead (monitors check tree consistency after every commit).
        """
        if self.invariant_monitor is not None:
            for page, line, plaintext in items:
                self.write_line(page, line, plaintext)
            return
        touched: Dict[int, None] = {}
        for page, line, plaintext in items:
            self._check(page, line)
            block = self._counters[page]
            block.minors[line] += 1
            self._ser_cache.pop(page, None)
            pad = self._otp(page, line, len(plaintext))
            ciphertext = bytes(p ^ k for p, k in zip(plaintext, pad))
            self.dram_ciphertext[(page, line)] = ciphertext
            self.dram_macs[(page, line)] = self._mac.digest(
                ciphertext, self._line_counter(page, line), bytes([line])
            )
            touched[page] = None
        # tree.updates must advance by len(items) (snapshots pin it), while
        # each touched page's leaf is written once with its final counters
        per_page = [(page, self._serialize_counter(page)) for page in touched]
        if per_page:
            self.tree.update_batch(per_page)
            self.tree.updates += len(items) - len(per_page)

    def read_line(self, page: int, line: int) -> bytes:
        """Verify (MAC + tree) and decrypt a line from DRAM."""
        self._check(page, line)
        ciphertext = self.dram_ciphertext.get((page, line))
        stored_mac = self.dram_macs.get((page, line))
        if ciphertext is None or stored_mac is None:
            raise KeyError(f"page {page} line {line} was never written")
        self.tree.verify(page, self._serialize_counter(page))
        expected = self._mac.digest(
            ciphertext, self._line_counter(page, line), bytes([line])
        )
        if expected != stored_mac:
            raise IntegrityError(f"MAC mismatch on page {page} line {line}")
        pad = self._otp(page, line, len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, pad))

    def _check(self, page: int, line: int) -> None:
        if not 0 <= page < self.pages:
            raise ValueError(f"page {page} out of range")
        if not 0 <= line < LINES_PER_PAGE:
            raise ValueError(f"line {line} out of range")

    # -- invariant-monitor surface (repro.recovery) --------------------------------

    def verify_counter_block(self, page: int) -> None:
        """Merkle-root consistency check for one page's counter block.

        Raises :class:`IntegrityError` when the serialized counter no longer
        authenticates against the on-chip root — i.e. the counter state and
        the tree have diverged.
        """
        self.tree.verify(page, self._serialize_counter(page))

    def counter_pair(self, page: int, line: int) -> Tuple[int, int]:
        """(major, minor) for a line, for counter-monotonicity monitoring."""
        block = self._counters[page]
        return block.major, block.minors[line]

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters, tree, and the attacker-visible DRAM stores.

        ``_ser_cache`` is a derived memo and is dropped instead of captured;
        the DRAM stores keep insertion order (``written_lines()`` reports
        write order, and journal replay depends on it). Keys never leave the
        constructor: the snapshot holds ciphertext and MACs only.
        """
        return {
            "counters": [
                (page, block.major, list(block.minors))
                for page, block in self._counters.items()
            ],
            "tree": self.tree.snapshot_state(),
            "dram_ciphertext": [
                (key, value) for key, value in self.dram_ciphertext.items()
            ],
            "dram_macs": [(key, value) for key, value in self.dram_macs.items()],
        }

    def restore_state(self, state: dict) -> None:
        self._counters = {
            page: _SplitBlock(major=major, minors=list(minors))
            for page, major, minors in state["counters"]
        }
        self._ser_cache = {}  # derived; repopulated lazily
        self.tree.restore_state(state["tree"])
        self.dram_ciphertext = {
            tuple(key): value for key, value in state["dram_ciphertext"]
        }
        self.dram_macs = {tuple(key): value for key, value in state["dram_macs"]}

    # -- adversarial surface (fault injection / attack demos) ---------------------

    def written_lines(self) -> List[Tuple[int, int]]:
        """(page, line) pairs currently resident in DRAM, in write order."""
        return list(self.dram_ciphertext)

    def tamper_ciphertext(self, page: int, line: int, xor_mask: int = 0x01) -> None:
        """Corrupt a data line in DRAM (caught by its per-line MAC)."""
        ct = self.dram_ciphertext.get((page, line))
        if ct is None:
            raise KeyError(f"page {page} line {line} was never written")
        self.dram_ciphertext[(page, line)] = bytes([ct[0] ^ xor_mask]) + ct[1:]

    def tamper_mac(self, page: int, line: int, xor_mask: int = 0x01) -> None:
        """Corrupt a stored MAC in DRAM (verification then fails closed)."""
        mac = self.dram_macs.get((page, line))
        if mac is None:
            raise KeyError(f"page {page} line {line} was never written")
        self.dram_macs[(page, line)] = bytes([mac[0] ^ xor_mask]) + mac[1:]

    def tamper_counter_tree(self, page: int, xor_mask: int = 0x01) -> None:
        """Corrupt the Merkle path guarding a page's counter block.

        ``verify`` recomputes the target leaf itself, so the attack lands on
        a stored *sibling* node of the page's path — replaying or flipping
        any sibling changes the recomputed root and is detected on the next
        read of ``page``.
        """
        if self.pages < 2:
            raise ValueError("tree corruption needs at least two counter blocks")
        parent = page // TREE_ARITY
        for c in range(TREE_ARITY):
            sibling = parent * TREE_ARITY + c
            if sibling != page and (0, sibling) in self.tree.dram_nodes:
                self.tree.corrupt_node(0, sibling, xor_mask)
                return
        raise KeyError(f"page {page} has no stored sibling node to corrupt")
