"""Exception hierarchy for IceClave's protection machinery."""

from __future__ import annotations


class IceClaveError(Exception):
    """Base class for all IceClave faults."""


class MMUFault(IceClaveError):
    """A memory access violated the region permission encoding (Fig. 6)."""


class IntegrityError(IceClaveError):
    """Memory integrity verification failed (tamper or replay detected)."""


class TeeAbort(IceClaveError):
    """A TEE was aborted via ThrowOutTEE (§4.5)."""

    def __init__(self, tee_id: int, reason: str) -> None:
        super().__init__(f"TEE {tee_id} aborted: {reason}")
        self.tee_id = tee_id
        self.reason = reason


class TeeCreationError(IceClaveError):
    """CreateTEE failed (e.g. program larger than available SSD DRAM)."""
