"""In-storage TEE state (§4.5).

A TEE hosts one offloaded program: its machine code, the logical pages it
declared at offload time, a preallocated contiguous memory region in the
normal world, and metadata (identity, measurement, results) kept in the
secure region.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional


class TeeState(Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    ABORTED = "aborted"
    TERMINATED = "terminated"


@dataclass
class TeeMessage:
    """The exception record ThrowOutTEE returns to the host (Table 2)."""

    tee_id: int
    reason: str


@dataclass
class Tee:
    """One in-storage trusted execution environment."""

    eid: int  # the 4-bit ID stamped into mapping entries
    tid: int  # host-side task id from OffloadCode
    code: bytes
    lpas: List[int]
    args: Any = None
    decryption_key: Optional[bytes] = None
    state: TeeState = TeeState.CREATED
    memory_range: Any = None  # AddressSpace carve-out
    measurement: bytes = b""
    result: Optional[bytes] = None
    exception: Optional[TeeMessage] = None
    context_switches: int = 0
    translations: int = 0
    translation_misses: int = 0
    _heap_used: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError("a TEE needs program code")
        self.measurement = hashlib.blake2b(self.code, digest_size=16).digest()

    @property
    def code_size(self) -> int:
        return len(self.code)

    def is_live(self) -> bool:
        return self.state in (TeeState.CREATED, TeeState.READY, TeeState.RUNNING)

    # -- dynamic allocation within the preallocated region (§4.5) ----------

    def malloc(self, nbytes: int) -> int:
        """Bump-allocate from the TEE's preallocated region.

        Returns the offset within the region; raises MemoryError when the
        16 MB preallocation is exhausted.
        """
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        if self.memory_range is None:
            raise RuntimeError("TEE has no memory region (not created yet?)")
        region_size = self.memory_range.end - self.memory_range.start
        if self._heap_used + nbytes > region_size:
            raise MemoryError(
                f"TEE {self.eid} heap exhausted "
                f"({self._heap_used + nbytes} > {region_size})"
            )
        offset = self._heap_used
        self._heap_used += nbytes
        return offset

    def heap_used(self) -> int:
        return self._heap_used
