"""Key management for the user → TEE secure channel (§3, §4.6).

The paper: "users are encouraged to encrypt their data … they will send
their decryption key to the TEE along with the offloaded program." This
module implements how that key actually travels safely across an
untrusted host and platform operator:

1. attestation (see :mod:`repro.core.attestation`) convinces the user the
   device is genuine and runs their binary;
2. both sides derive a per-session *key-encryption key* (KEK) from the
   shared device secret, the TEE measurement, and the session nonce —
   so the KEK is bound to *this* TEE running *this* code in *this*
   session;
3. the user wraps the data key under the KEK (encrypt-then-MAC); only
   the attested TEE can unwrap it, and any tampering in transit is
   detected.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.core.exceptions import IceClaveError

KEK_BYTES = 16
WRAP_MAC_BYTES = 8


class KeyWrapError(IceClaveError):
    """Unwrapping failed: wrong session binding or tampered blob."""


def derive_kek(device_secret: bytes, measurement: bytes, nonce: bytes) -> bytes:
    """HKDF-style derivation of the session key-encryption key.

    Binding the measurement means a trojaned TEE (different code) derives
    a *different* KEK and cannot unwrap the user's data key even on a
    genuine device.
    """
    if len(device_secret) < 16:
        raise ValueError("device secret must be at least 128 bits")
    if len(nonce) < 8:
        raise ValueError("nonce must be at least 64 bits")
    prk = hmac.new(device_secret, b"iceclave-kek" + measurement + nonce,
                   hashlib.blake2b).digest()
    return prk[:KEK_BYTES]


@dataclass(frozen=True)
class WrappedKey:
    """An encrypt-then-MAC'd data key in transit."""

    ciphertext: bytes
    tag: bytes


def _stream(kek: bytes, nbytes: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(hashlib.blake2b(kek + counter.to_bytes(4, "big"),
                                   digest_size=32).digest())
        counter += 1
    return bytes(out[:nbytes])


def wrap_key(kek: bytes, data_key: bytes) -> WrappedKey:
    """User side: protect the data key under the session KEK."""
    if not data_key:
        raise ValueError("data key must be non-empty")
    pad = _stream(kek, len(data_key))
    ciphertext = bytes(a ^ b for a, b in zip(data_key, pad))
    tag = hmac.new(kek, b"wrap" + ciphertext, hashlib.blake2b).digest()[:WRAP_MAC_BYTES]
    return WrappedKey(ciphertext=ciphertext, tag=tag)


def unwrap_key(kek: bytes, wrapped: WrappedKey) -> bytes:
    """TEE side: verify and recover the data key."""
    expected = hmac.new(kek, b"wrap" + wrapped.ciphertext,
                        hashlib.blake2b).digest()[:WRAP_MAC_BYTES]
    if not hmac.compare_digest(expected, wrapped.tag):
        raise KeyWrapError("wrapped key failed authentication")
    pad = _stream(kek, len(wrapped.ciphertext))
    return bytes(a ^ b for a, b in zip(wrapped.ciphertext, pad))
