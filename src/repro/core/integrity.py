"""Bonsai Merkle Tree (Rogers et al., MICRO'07) for memory integrity (§4.4).

The BMT hashes *counter blocks* (not data blocks) at its first level; data
blocks are covered by per-block MACs keyed with their counters. IceClave
maintains two trees — one over split-counter blocks (writable pages), one
over major-counter blocks (read-only pages) — with both roots in on-chip
registers.

This implementation is functional: node digests live in an
attacker-visible store (``dram_nodes``) while the root is private, so tests
and the attack demo can demonstrate tamper and replay detection.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.core.exceptions import IntegrityError
from repro.crypto.mac import Mac

NodeKey = Tuple[int, int]  # (level, index); level 0 = leaves

# Bounded node-hash memo: beyond this many distinct child combinations the
# memo is cleared wholesale (deterministic, state-independent policy).
_MEMO_MAX = 1 << 14


class BonsaiMerkleTree:
    """An arity-N hash tree over counter blocks with an on-chip root."""

    def __init__(self, key: bytes, arity: int = 8) -> None:
        if arity < 2:
            raise ValueError("tree arity must be >= 2")
        self._mac = Mac(key)
        self.arity = arity
        self.leaf_count = 0
        self.depth = 0  # number of levels above the leaves
        # The "DRAM-resident" node store: (level, index) -> digest.
        # Level 0 holds leaf digests; higher levels hold parents.
        self.dram_nodes: Dict[NodeKey, bytes] = {}
        self._root: bytes = b""
        self.updates = 0
        self.verifications = 0
        # node-hash memo keyed on the tuple of child digests. The parent
        # MAC is a pure function of its children (the b"node" domain does
        # not bind level or index), so memo lookups are *exactly* the MAC —
        # including under tampering: a corrupted child changes the key,
        # misses, and recomputes. Derived state: never snapshotted.
        self._memo: Dict[Tuple[bytes, ...], bytes] = {}
        self.memo_hits = 0  # repro: allow[recovery-unserialized-state] -- derived perf counter, resets with the memo
        self.memo_misses = 0  # repro: allow[recovery-unserialized-state] -- derived perf counter, resets with the memo

    # -- construction ----------------------------------------------------------

    def build(self, leaves: List[bytes]) -> None:
        """Build the tree over ``leaves`` (counter-block serializations)."""
        if not leaves:
            raise ValueError("cannot build a tree over zero leaves")
        self.leaf_count = len(leaves)
        self.depth = max(1, math.ceil(math.log(len(leaves), self.arity)))
        self.dram_nodes.clear()
        for i, leaf in enumerate(leaves):
            self.dram_nodes[(0, i)] = self._leaf_digest(leaf)
        width = self.leaf_count
        for level in range(1, self.depth + 1):
            width = math.ceil(width / self.arity)
            for i in range(width):
                self.dram_nodes[(level, i)] = self._parent_digest(level, i)
        self._root = self.dram_nodes[(self.depth, 0)]

    def _leaf_digest(self, leaf: bytes) -> bytes:
        return self._mac.digest(b"leaf", leaf)

    def _children(self, level: int, index: int) -> List[bytes]:
        children = []
        for c in range(self.arity):
            child = self.dram_nodes.get((level - 1, index * self.arity + c))
            if child is not None:
                children.append(child)
        return children

    def _parent_digest(self, level: int, index: int) -> bytes:
        return self._node_digest(tuple(self._children(level, index)))

    def _node_digest(self, children: Tuple[bytes, ...]) -> bytes:
        memo = self._memo
        digest = memo.get(children)
        if digest is not None:
            self.memo_hits += 1
            return digest
        self.memo_misses += 1
        digest = self._mac.digest(b"node", *children)
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[children] = digest
        return digest

    # -- root management ---------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The on-chip root MAC (not part of ``dram_nodes``)."""
        return self._root

    # -- operations ----------------------------------------------------------------

    def update(self, index: int, leaf: bytes) -> int:
        """Re-hash the path from leaf ``index`` to the root.

        Returns the number of node writes (for traffic accounting).
        """
        self._check_index(index)
        self.dram_nodes[(0, index)] = self._leaf_digest(leaf)
        writes = 1
        node = index
        for level in range(1, self.depth + 1):
            node //= self.arity
            self.dram_nodes[(level, node)] = self._parent_digest(level, node)
            writes += 1
        self._root = self.dram_nodes[(self.depth, 0)]
        self.updates += 1
        return writes

    def update_batch(self, updates: Iterable[Tuple[int, bytes]]) -> int:
        """Apply many leaf updates with one dirty-path recomputation.

        ``updates`` may repeat an index (the last write wins, exactly as a
        sequence of :meth:`update` calls). Each shared interior node on the
        dirty paths is recomputed *once* over final child values instead of
        once per touching leaf — and because every node digest is a pure
        function of its children, the resulting ``dram_nodes`` and root are
        identical to the sequential path (the differential test pins this).

        The ``updates`` counter advances by the number of items, matching
        what per-leaf calls would record (snapshots stay byte-identical);
        the return value counts *actual* node writes, which is the traffic
        the batch saved.
        """
        dirty: Dict[int, None] = {}
        count = 0
        for index, leaf in updates:
            self._check_index(index)
            self.dram_nodes[(0, index)] = self._leaf_digest(leaf)
            dirty[index] = None
            count += 1
        if count == 0:
            return 0
        writes = len(dirty)
        nodes = self.dram_nodes
        level_dirty = dirty
        for level in range(1, self.depth + 1):
            parents: Dict[int, None] = {}
            for node in level_dirty:
                parents[node // self.arity] = None
            for parent in parents:
                nodes[(level, parent)] = self._parent_digest(level, parent)
            writes += len(parents)
            level_dirty = parents
        self._root = nodes[(self.depth, 0)]
        self.updates += count
        return writes

    def verify(self, index: int, leaf: bytes) -> int:
        """Verify leaf ``index`` against the on-chip root.

        Recomputes the path using the (untrusted) stored siblings; any
        tampering with the leaf, a sibling, or a rolled-back (replayed)
        combination changes the recomputed root and is detected.

        Returns the number of node reads performed.
        """
        self._check_index(index)
        self.verifications += 1
        digest = self._leaf_digest(leaf)
        reads = 1
        node = index
        for level in range(1, self.depth + 1):
            parent = node // self.arity
            children = []
            for c in range(self.arity):
                child_idx = parent * self.arity + c
                key = (level - 1, child_idx)
                if child_idx == node:
                    children.append(digest)
                elif key in self.dram_nodes:
                    children.append(self.dram_nodes[key])
                    reads += 1
            digest = self._node_digest(tuple(children))
            node = parent
        if digest != self._root:
            raise IntegrityError(
                f"integrity verification failed for counter block {index}"
            )
        return reads

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf {index} out of range [0, {self.leaf_count})")

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Node store (keyed by (level, index) tuples), root and counters.

        The MAC key and arity are constructor configuration; restoring into a
        tree built with a different key makes every verify fail, which is the
        behaviour we want — a snapshot never smuggles key material.
        """
        return {
            "leaf_count": self.leaf_count,
            "depth": self.depth,
            "dram_nodes": [(key, node) for key, node in self.dram_nodes.items()],
            "root": self._root,
            "updates": self.updates,
            "verifications": self.verifications,
        }

    def restore_state(self, state: dict) -> None:
        self.leaf_count = state["leaf_count"]
        self.depth = state["depth"]
        self.dram_nodes = {tuple(key): node for key, node in state["dram_nodes"]}
        self._root = state["root"]
        self.updates = state["updates"]
        self.verifications = state["verifications"]

    # -- adversarial surface (fault injection / attack demos) ---------------------

    def corrupt_node(self, level: int, index: int, xor_mask: int = 0x01) -> None:
        """Flip bits in a DRAM-resident tree node (attacker / DRAM fault).

        The root is on-chip and out of reach; any corrupted path node makes
        the next :meth:`verify` of a leaf under it raise IntegrityError.
        """
        key = (level, index)
        node = self.dram_nodes.get(key)
        if node is None:
            raise KeyError(f"no tree node at level {level} index {index}")
        self.dram_nodes[key] = bytes([node[0] ^ xor_mask]) + node[1:]

    # -- sizing (the paper's footnote: 0.5 MB + 4 MB for 4 GB DRAM) ---------------

    def node_count(self) -> int:
        return len(self.dram_nodes)

    def storage_bytes(self, mac_bytes: int = 8) -> int:
        """DRAM footprint of all tree nodes."""
        return self.node_count() * mac_bytes

    @staticmethod
    def storage_estimate(leaves: int, arity: int = 8, mac_bytes: int = 8) -> int:
        """Closed-form footprint estimate without building the tree."""
        total = leaves
        width = leaves
        while width > 1:
            width = math.ceil(width / arity)
            total += width
        return total * mac_bytes
