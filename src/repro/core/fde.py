"""Full-disk encryption engine (the baseline IceClave contrasts with).

§4.4: "Modern SSDs have employed dedicated encryption engine, however, it
is a cryptography co-processor mainly used for full-disk encryption."
FDE protects data *at rest* in the flash array — everything is encrypted
under one device key, keyed per page by its physical address (XTS-style
tweak). It does **not** protect data in flight on the internal buses or in
SSD DRAM, which is exactly the gap IceClave's stream cipher + MEE close.

The implementation is an XEX construction over the project's AES-128:
tweak = AES(key2, ppa); each 16-byte block is XORed with the (shifted)
tweak before and after AES(key1). Enough fidelity to demonstrate the
security properties (same plaintext at different PPAs yields different
ciphertext; at-rest confidentiality) and the *limitation* (re-reading the
same page produces identical bus bytes — snoopable, unlike the stream
cipher's fresh IVs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128

BLOCK = 16
_GF_POLY = 0x87  # x^128 + x^7 + x^2 + x + 1 feedback for tweak doubling


def _double_tweak(tweak: int) -> int:
    tweak <<= 1
    if tweak >> 128:
        tweak = (tweak & ((1 << 128) - 1)) ^ _GF_POLY
    return tweak


@dataclass
class FdeStats:
    pages_encrypted: int = 0
    pages_decrypted: int = 0


class FdeEngine:
    """XTS-style page encryption keyed by physical page address."""

    def __init__(self, data_key: bytes, tweak_key: bytes) -> None:
        self._cipher = AES128(data_key)
        self._tweak_cipher = AES128(tweak_key)
        self.stats = FdeStats()

    def _tweaks(self, ppa: int, nblocks: int):
        seed = self._tweak_cipher.encrypt_block(ppa.to_bytes(16, "big"))
        tweak = int.from_bytes(seed, "big")
        for _ in range(nblocks):
            yield tweak.to_bytes(16, "big")
            tweak = _double_tweak(tweak)

    def _process(self, ppa: int, data: bytes, encrypt: bool) -> bytes:
        if len(data) % BLOCK:
            raise ValueError("FDE operates on whole 16-byte blocks")
        out = bytearray()
        blocks = [data[i:i + BLOCK] for i in range(0, len(data), BLOCK)]
        for block, tweak in zip(blocks, self._tweaks(ppa, len(blocks))):
            masked = bytes(b ^ t for b, t in zip(block, tweak))
            core = (self._cipher.encrypt_block(masked) if encrypt
                    else self._cipher.decrypt_block(masked))
            out.extend(b ^ t for b, t in zip(core, tweak))
        return bytes(out)

    def encrypt_page(self, ppa: int, plaintext: bytes) -> bytes:
        """Encrypt a page for programming into flash."""
        self.stats.pages_encrypted += 1
        return self._process(ppa, plaintext, encrypt=True)

    def decrypt_page(self, ppa: int, ciphertext: bytes) -> bytes:
        """Decrypt a page read from flash."""
        self.stats.pages_decrypted += 1
        return self._process(ppa, ciphertext, encrypt=False)
