"""Stream-cipher engine securing flash→DRAM transfers (§5, Figure 10).

Sits in the SSD controller between the flash controllers and SSD DRAM.
The symmetric key lives in a secure register; the IV is public and is
composed of the flash physical page address (spatial uniqueness)
concatenated with PRNG output (temporal uniqueness), so no IV repeats for
different pages or for reuses of the same page. The keystream is XORed
with the data; the word-parallel Trivium (64 bits per step, matching the
64 keystream bits/cycle of Figure 10) generates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import IceClaveConfig
from repro.crypto.prng import XorShift64
from repro.crypto.trivium import IV_BYTES, KEY_BYTES
from repro.crypto.trivium_fast import TriviumFast


@dataclass
class CipherStats:
    pages_encrypted: int = 0
    pages_decrypted: int = 0
    bytes_processed: int = 0


class StreamCipherEngine:
    """Trivium-based page cipher with PPA-||-PRNG IV construction."""

    def __init__(
        self,
        key: bytes,
        config: IceClaveConfig = IceClaveConfig(),
        prng_seed: int = 0xC0FFEE,
    ) -> None:
        if len(key) != KEY_BYTES:
            raise ValueError(f"stream cipher key must be {KEY_BYTES} bytes")
        self._key = key  # held in a secure register; never leaves the engine
        self.config = config
        self._prng = XorShift64(prng_seed)
        self.stats = CipherStats()
        self._seen_ivs: Dict[bytes, int] = {}

    def make_iv(self, ppa: int) -> bytes:
        """IV = PPA (8 bytes) ‖ PRNG output (2 bytes) — 80 bits total.

        The PPA gives spatial uniqueness across pages; the PRNG component
        gives temporal uniqueness across re-reads of the same page.
        """
        ppa_part = (ppa & ((1 << 64) - 1)).to_bytes(8, "little")
        rand_part = self._prng.next_bytes(IV_BYTES - 8)
        iv = ppa_part + rand_part
        self._seen_ivs[iv] = self._seen_ivs.get(iv, 0) + 1
        return iv

    def encrypt_page(self, ppa: int, data: bytes) -> Tuple[bytes, bytes]:
        """Cipher a page leaving the flash controller; returns (iv, ciphertext)."""
        iv = self.make_iv(ppa)
        ciphertext = TriviumFast(self._key, iv).process(data)
        self.stats.pages_encrypted += 1
        self.stats.bytes_processed += len(data)
        return iv, ciphertext

    def decrypt_page(self, iv: bytes, ciphertext: bytes) -> bytes:
        """Decipher a page on arrival (same keystream, XOR symmetric)."""
        if len(iv) != IV_BYTES:
            raise ValueError(f"IV must be {IV_BYTES} bytes")
        plaintext = TriviumFast(self._key, iv).process(ciphertext)
        self.stats.pages_decrypted += 1
        self.stats.bytes_processed += len(ciphertext)
        return plaintext

    def page_latency(self) -> float:
        """Time to cover one flash page with keystream (pipelined)."""
        return self.config.cipher_page_latency()

    def iv_reuse_count(self) -> int:
        """Number of IV values handed out more than once (should be 0)."""
        return sum(1 for count in self._seen_ivs.values() if count > 1)
