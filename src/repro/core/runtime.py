"""IceClave runtime: TEE lifecycle and secure-world interaction (§4.5, §4.6).

Implements the runtime half of Table 2:

- ``CreateTEE``   — :meth:`IceClaveRuntime.create_tee`
- ``SetIDBits``   — performed inside ``create_tee``
- ``TerminateTEE``— :meth:`IceClaveRuntime.terminate_tee`
- ``ThrowOutTEE`` — :meth:`IceClaveRuntime.throw_out_tee`
- ``ReadMappingEntry`` — :meth:`IceClaveRuntime.read_mapping_entry`

The runtime executes in the secure world. Address translation normally hits
the cached mapping table in the protected region (no world switch); a miss
redirects to the secure-world FTL, which costs a context switch and a flash
read of the translation page (Figure 9, step 4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.config import IceClaveConfig
from repro.core.exceptions import TeeAbort, TeeCreationError
from repro.core.memory_protection import AddressSpace
from repro.core.tee import Tee, TeeMessage, TeeState
from repro.ftl.ftl import Ftl
from repro.ftl.mapping import MAX_TEE_ID
from repro.ftl.mapping_cache import MappingCache


class IceClaveRuntime:
    """Manages in-storage TEEs on top of the FTL and the protection regions."""

    def __init__(
        self,
        ftl: Ftl,
        config: IceClaveConfig = IceClaveConfig(),
        mapping_cache: Optional[MappingCache] = None,
        address_space: Optional[AddressSpace] = None,
    ) -> None:
        self.ftl = ftl
        self.config = config
        self.mapping_cache = mapping_cache or MappingCache(
            cache_bytes=config.protected_region_bytes, page_bytes=config.page_bytes
        )
        self.address_space = address_space or AddressSpace(
            dram_bytes=config.dram_bytes,
            secure_bytes=config.secure_region_bytes,
            protected_bytes=config.protected_region_bytes,
        )
        self._free_ids: List[int] = list(range(1, MAX_TEE_ID + 1))
        self.tees: Dict[int, Tee] = {}
        # accumulated simulated time spent in runtime services
        self.charged_time = 0.0
        self.context_switches = 0
        self.created = 0
        self.terminated = 0
        self.aborted = 0

    # -- lifecycle ---------------------------------------------------------

    def create_tee(
        self,
        code: bytes,
        lpas: List[int],
        args: Any = None,
        tid: int = 0,
        decryption_key: Optional[bytes] = None,
    ) -> Tee:
        """CreateTEE + SetIDBits: admit an offloaded program (Figure 9 ②).

        Fails when no TEE ID is free, the program exceeds the size bound, or
        the normal region cannot host the 16 MB preallocation (the paper:
        creation fails when the program exceeds available SSD DRAM).
        """
        if len(code) > self.config.max_tee_code_bytes:
            raise TeeCreationError(
                f"program of {len(code)} bytes exceeds the "
                f"{self.config.max_tee_code_bytes}-byte bound"
            )
        if not self._free_ids:
            raise TeeCreationError("all TEE IDs are in use (IDs are recycled)")
        needed = self.config.tee_preallocation_bytes + len(code)
        if self.address_space.free_bytes() < needed:
            raise TeeCreationError(
                f"normal region cannot host TEE ({needed} bytes needed, "
                f"{self.address_space.free_bytes()} free)"
            )
        eid = self._free_ids.pop(0)
        tee = Tee(eid=eid, tid=tid, code=code, lpas=list(lpas), args=args,
                  decryption_key=decryption_key)
        tee.memory_range = self.address_space.allocate(needed, owner=eid)
        # SetIDBits: stamp ownership on the mapping entries of the declared LPAs
        for lpa in tee.lpas:
            self.ftl.mapping.set_id_bits(lpa, eid)
        tee.state = TeeState.READY
        self.tees[eid] = tee
        self.charged_time += self.config.tee_create_time
        self.created += 1
        return tee

    def terminate_tee(self, tee: Tee) -> Optional[bytes]:
        """TerminateTEE: reclaim resources and recycle the ID (Figure 9 ⑧).

        Returns the TEE's result (copied to the metadata region before
        teardown, as §4.6 describes).
        """
        if tee.eid not in self.tees:
            raise KeyError(f"TEE {tee.eid} is not managed by this runtime")
        result = tee.result
        self._release(tee)
        tee.state = TeeState.TERMINATED
        self.charged_time += self.config.tee_delete_time
        self.terminated += 1
        return result

    def throw_out_tee(self, tee: Tee, reason: str) -> TeeMessage:
        """ThrowOutTEE: abort on a violation or program exception (§4.5)."""
        message = TeeMessage(tee_id=tee.eid, reason=reason)
        tee.exception = message
        if tee.eid in self.tees:
            self._release(tee)
        tee.state = TeeState.ABORTED
        self.charged_time += self.config.tee_delete_time
        self.aborted += 1
        return message

    def _release(self, tee: Tee) -> None:
        self.ftl.mapping.clear_id_bits(tee.eid)
        if tee.memory_range is not None:
            self.address_space.free(tee.memory_range)
            tee.memory_range = None
        self.tees.pop(tee.eid, None)
        self._free_ids.append(tee.eid)
        self._free_ids.sort()

    # -- address translation (Figure 9 ③/④) ---------------------------------

    def read_mapping_entry(self, tee: Tee, lpa: int) -> int:
        """Translate an LPA for a TEE.

        Fast path: the translation page is cached in the protected region —
        a plain read, no world switch. Slow path: redirect to the secure
        FTL (context switch), which loads the translation page from flash
        and refills the protected-region cache.

        The ID-bit permission check runs on both paths; a denial aborts the
        TEE via ThrowOutTEE and re-raises as :class:`TeeAbort`.
        """
        if not tee.is_live():
            raise TeeAbort(tee.eid, f"translation from {tee.state.value} TEE")
        tee.translations += 1
        hit = self.mapping_cache.access(lpa)
        if not hit:
            tee.translation_misses += 1
            tee.context_switches += 1
            self.context_switches += 1
            # world switch + the FTL's flash read of the translation page
            self.charged_time += (
                self.config.context_switch_time
                + self.ftl.geometry.page_bytes / 600e6  # transfer
            )
            if self.ftl.translation_store is not None:
                # DFTL mode: really fetch the translation page from flash
                self.ftl.translation_store.fetch(
                    self.ftl.translation_store.translation_page_of(lpa)
                )
        try:
            return self.ftl.translate(lpa, tee_id=tee.eid)
        # repro: allow[sec-broad-except] -- §4.5 ThrowOutTEE: every translation failure aborts the TEE
        except Exception as exc:
            self.throw_out_tee(tee, f"access control violated: {exc}")
            raise TeeAbort(tee.eid, str(exc)) from exc

    # -- introspection --------------------------------------------------------

    def live_tees(self) -> List[Tee]:
        return [tee for tee in self.tees.values() if tee.is_live()]

    def translation_miss_rate(self) -> float:
        """Global mapping-cache miss rate (paper: 0.17%)."""
        return self.mapping_cache.miss_rate
