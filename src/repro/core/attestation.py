"""Remote attestation for in-storage TEEs.

The threat model (§3) assumes a secure channel for offloading, which in
practice is bootstrapped by attestation: before shipping a decryption key
to an in-storage TEE, the user verifies a *quote* proving (a) the SSD is a
genuine IceClave device (device key provisioned by the trusted vendor) and
(b) the TEE runs exactly the offloaded binary (code measurement).

The scheme mirrors SGX-style local attestation, scaled down to the SSD:

- the vendor provisions a per-device secret; its MAC-derived public
  *device identity* is registered with the verifier out of band;
- ``quote(tee, nonce)`` binds the TEE's measurement, its ID, and the
  verifier's fresh nonce under the device secret;
- the verifier checks the MAC, the expected measurement, and nonce
  freshness (replayed quotes are rejected).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

from repro.core.exceptions import IceClaveError
from repro.core.tee import Tee
from repro.crypto.mac import Mac


class AttestationError(IceClaveError):
    """Quote verification failed."""


@dataclass(frozen=True)
class Quote:
    """An attestation quote for one in-storage TEE."""

    device_id: bytes
    tee_eid: int
    measurement: bytes
    nonce: bytes
    signature: bytes

    def body(self) -> bytes:
        return b"|".join(
            [
                self.device_id,
                self.tee_eid.to_bytes(2, "big"),
                self.measurement,
                self.nonce,
            ]
        )


def measure_code(code: bytes) -> bytes:
    """The measurement CreateTEE records (matches Tee.measurement)."""
    return hashlib.blake2b(code, digest_size=16).digest()


class AttestationDevice:
    """The SSD-side quoting facility, keyed by the vendor-provisioned secret."""

    def __init__(self, device_secret: bytes) -> None:
        if len(device_secret) < 16:
            raise ValueError("device secret must be at least 128 bits")
        self._mac = Mac(device_secret)
        # the public identity the vendor registers with verifiers
        self.device_id = hashlib.blake2b(
            b"iceclave-device-id" + device_secret, digest_size=8
        ).digest()

    def quote(self, tee: Tee, nonce: bytes) -> Quote:
        """Produce a quote binding the TEE's measurement to ``nonce``."""
        if len(nonce) < 8:
            raise ValueError("nonce must be at least 64 bits")
        unsigned = Quote(
            device_id=self.device_id,
            tee_eid=tee.eid,
            measurement=tee.measurement,
            nonce=nonce,
            signature=b"",
        )
        signature = self._mac.digest(unsigned.body())
        return Quote(
            device_id=unsigned.device_id,
            tee_eid=unsigned.tee_eid,
            measurement=unsigned.measurement,
            nonce=unsigned.nonce,
            signature=signature,
        )


class AttestationVerifier:
    """User-side verifier sharing the device secret via vendor provisioning.

    The verifier is the replay anchor of the protocol: a quote is accepted
    only against a challenge *this verifier issued* that has not been
    consumed yet. Both the issued and the consumed nonce sets are bounded to
    ``nonce_window`` entries (oldest evicted first); a quote whose challenge
    aged out of the window is refused as unissued, so the window doubles as
    the session-freshness horizon.
    """

    def __init__(
        self,
        device_secret: bytes,
        expected_device_id: bytes,
        nonce_window: int = 4096,
    ) -> None:
        if nonce_window < 1:
            raise ValueError("nonce window must hold at least one challenge")
        self._mac = Mac(device_secret)
        self.expected_device_id = expected_device_id
        self.nonce_window = nonce_window
        # insertion-ordered: the first key is always the oldest entry
        self._issued_nonces: Dict[bytes, None] = {}
        self._used_nonces: Dict[bytes, None] = {}

    def fresh_nonce(self, seed: bytes) -> bytes:
        """Derive and register a fresh challenge nonce (callers supply entropy).

        Re-deriving a nonce that is still inside the session window — the
        same entropy offered twice — is rejected instead of silently handed
        out again: a duplicated challenge is exactly what makes a recorded
        quote replayable.
        """
        nonce = hashlib.blake2b(b"nonce" + seed, digest_size=16).digest()
        if nonce in self._issued_nonces or nonce in self._used_nonces:
            raise AttestationError(
                "nonce reuse within the session window: supply fresh "
                "entropy for every challenge"
            )
        self._issued_nonces[nonce] = None
        self._trim(self._issued_nonces)
        return nonce

    def _trim(self, window: Dict[bytes, None]) -> None:
        while len(window) > self.nonce_window:
            window.pop(next(iter(window)))

    def verify(self, quote: Quote, expected_code: bytes, nonce: bytes) -> None:
        """Verify a quote; raises :class:`AttestationError` on any mismatch.

        Checks, in order: device identity, signature, measurement against
        the binary the user believes it offloaded, and nonce freshness
        (the challenge must have been issued here and never consumed).
        A successful verification consumes the challenge.
        """
        if quote.device_id != self.expected_device_id:
            raise AttestationError("quote from an unknown device")
        if not self._mac.verify(quote.signature, quote.body()):
            raise AttestationError("quote signature invalid")
        if quote.measurement != measure_code(expected_code):
            raise AttestationError(
                "measurement mismatch: the SSD is not running the offloaded binary"
            )
        if quote.nonce != nonce:
            raise AttestationError("quote answers a different challenge")
        if nonce in self._used_nonces:
            raise AttestationError("nonce reuse: possible quote replay")
        if nonce not in self._issued_nonces:
            raise AttestationError(
                "challenge was not issued by this verifier (or aged out of "
                "the session window): possible quote replay"
            )
        self._issued_nonces.pop(nonce)
        self._used_nonces[nonce] = None
        self._trim(self._used_nonces)
