"""DRAM bank state machine: open row, activation/precharge timing."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming, bank_cycles


class Bank:
    """One DRAM bank with an open-row policy.

    Tracks the open row, the cycle the bank is next free, and the earliest
    cycle a precharge may issue (tRAS). ``access`` returns the request's
    completion cycle and classifies it as hit/miss/conflict.
    """

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_cycle: float = 0.0  # bank free for the next command
        self.activate_cycle: float = 0.0  # when the current row was opened
        self.hits = 0
        self.misses = 0
        self.conflicts = 0
        # per-access latencies as plain ints (memoized across banks sharing
        # one timing config; controllers create total_banks of these)
        (
            self._hit_cycles,
            self._miss_cycles,
            self._conflict_cycles,
            self._write_penalty,
        ) = bank_cycles(timing)
        self._t_ras = timing.t_ras
        self._t_rp = timing.t_rp

    def access(self, row: int, now: float, is_write: bool) -> float:
        """Issue an access to ``row`` at cycle ``now``; returns finish cycle."""
        start = max(now, self.ready_cycle)
        if self.open_row == row:
            self.hits += 1
            finish = start + self._hit_cycles
        elif self.open_row is None:
            self.misses += 1
            finish = start + self._miss_cycles
            self.activate_cycle = start
            self.open_row = row
        else:
            self.conflicts += 1
            # respect tRAS before precharging the old row
            pre_start = max(start, self.activate_cycle + self._t_ras)
            finish = pre_start + self._conflict_cycles
            self.activate_cycle = pre_start + self._t_rp
            self.open_row = row
        if is_write:
            finish += self._write_penalty
        self.ready_cycle = finish
        return finish

    def classification_counts(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "conflicts": self.conflicts}
