"""DRAM bank state machine: open row, activation/precharge timing."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming


class Bank:
    """One DRAM bank with an open-row policy.

    Tracks the open row, the cycle the bank is next free, and the earliest
    cycle a precharge may issue (tRAS). ``access`` returns the request's
    completion cycle and classifies it as hit/miss/conflict.
    """

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_cycle: float = 0.0  # bank free for the next command
        self.activate_cycle: float = 0.0  # when the current row was opened
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    def access(self, row: int, now: float, is_write: bool) -> float:
        """Issue an access to ``row`` at cycle ``now``; returns finish cycle."""
        t = self.timing
        start = max(now, self.ready_cycle)
        if self.open_row == row:
            self.hits += 1
            finish = start + t.row_hit_cycles
        elif self.open_row is None:
            self.misses += 1
            finish = start + t.row_miss_cycles
            self.activate_cycle = start
            self.open_row = row
        else:
            self.conflicts += 1
            # respect tRAS before precharging the old row
            pre_start = max(start, self.activate_cycle + t.t_ras)
            finish = pre_start + t.row_conflict_cycles
            self.activate_cycle = pre_start + t.t_rp
            self.open_row = row
        if is_write:
            finish += t.t_wr - t.t_cl if t.t_wr > t.t_cl else 0
        self.ready_cycle = finish
        return finish

    def classification_counts(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "conflicts": self.conflicts}
