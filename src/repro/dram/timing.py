"""DDR3 timing parameters (Table 3 of the paper).

DDR3-1600 runs the command clock at 800 MHz (1.25 ns cycles) and transfers
on both edges, so a 64-byte burst over a 64-bit bus takes 4 cycles (8 beats).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.sim.stats import register_memo


@dataclass(frozen=True)
class DramTiming:
    """DDR3-1600 timing; values in command-clock cycles unless noted."""

    clock_hz: float = 800e6
    t_rcd: int = 11  # ACT -> RD/WR
    t_ras: int = 28  # ACT -> PRE (minimum row-open time)
    t_rp: int = 11  # PRE -> ACT
    t_cl: int = 11  # RD -> first data
    t_wr: int = 12  # write recovery
    burst_cycles: int = 4  # 64B over a 64-bit DDR bus
    t_refi: int = 6240  # average refresh interval (7.8 us at 800 MHz)
    t_rfc: int = 208  # refresh cycle time (260 ns, 4 Gb-class devices)
    channels: int = 1
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 8192  # row buffer size
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_ras", "t_rp", "t_cl", "t_wr", "burst_cycles"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles * self.cycle_time

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def row_hit_cycles(self) -> int:
        """Row-buffer hit: CAS latency plus burst."""
        return self.t_cl + self.burst_cycles

    @property
    def row_miss_cycles(self) -> int:
        """Closed bank: activate, then CAS plus burst."""
        return self.t_rcd + self.t_cl + self.burst_cycles

    @property
    def row_conflict_cycles(self) -> int:
        """Open wrong row: precharge, activate, CAS, burst."""
        return self.t_rp + self.t_rcd + self.t_cl + self.burst_cycles

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the banks are unavailable due to refresh."""
        return self.t_rfc / self.t_refi

    @property
    def peak_bandwidth(self) -> float:
        """Bytes/second across all channels at full burst utilization."""
        bursts_per_second = self.clock_hz / self.burst_cycles
        return bursts_per_second * self.line_bytes * self.channels


@lru_cache(maxsize=None)
def bank_cycles(timing: DramTiming) -> Tuple[int, int, int, int]:
    """(hit, miss, conflict, write-penalty) cycles for one timing config.

    Pure in the frozen ``timing``; banks call this once at construction so
    per-access latencies are plain ints instead of property chains.
    """
    write_penalty = timing.t_wr - timing.t_cl if timing.t_wr > timing.t_cl else 0
    return (
        timing.row_hit_cycles,
        timing.row_miss_cycles,
        timing.row_conflict_cycles,
        write_penalty,
    )


register_memo("dram.timing.bank_cycles", bank_cycles)
