"""SSD DRAM model (the USIMM substitute).

DDR3-1600 bank timing per Table 3 (tRCD-tRAS-tRP-tCL-tWR = 11-28-11-11-12),
an open-row FR-FCFS-style controller, and measured average access latency
(AMAT) that the platform-level models consume.
"""

from repro.dram.timing import DramTiming
from repro.dram.bank import Bank
from repro.dram.controller import DramController

__all__ = ["DramTiming", "Bank", "DramController"]
