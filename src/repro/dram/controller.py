"""DRAM controller: address interleaving, bank scheduling, AMAT measurement.

Requests are processed in arrival order with an open-row policy per bank
(first-ready behaviour emerges because independent banks overlap). The
controller's job in this reproduction is to turn an access stream into a
measured average latency and row-hit profile that the MEE and platform
timing models consume.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.dram.bank import Bank
from repro.dram.timing import DramTiming


class DramController:
    """Bank-interleaved DRAM with open-row scheduling."""

    def __init__(self, timing: DramTiming = DramTiming(), refresh: bool = True) -> None:
        self.timing = timing
        self.refresh = refresh
        self.banks = [Bank(timing) for _ in range(timing.total_banks)]
        self.accesses = 0
        self.total_latency_cycles = 0.0
        self.refreshes = 0
        self._clock = 0.0  # arrival clock in cycles
        self._next_refresh = float(timing.t_refi)

    def _map(self, address: int) -> Tuple[int, int]:
        """Address → (bank, row). Line-interleaved across banks."""
        line = address // self.timing.line_bytes
        bank = line % self.timing.total_banks
        row = (line // self.timing.total_banks) // (
            self.timing.row_bytes // self.timing.line_bytes
        )
        return bank, row

    def access(self, address: int, is_write: bool = False, arrival_gap: float = 0.0) -> float:
        """Access one cache line; returns latency in seconds.

        ``arrival_gap`` advances the arrival clock before issuing, modelling
        the spacing between requests (0 = back-to-back).
        """
        if arrival_gap < 0:
            raise ValueError("arrival_gap must be non-negative")
        self._clock += arrival_gap / self.timing.cycle_time if arrival_gap else 0.0
        if self.refresh:
            self._maybe_refresh()
        bank_idx, row = self._map(address)
        finish = self.banks[bank_idx].access(row, self._clock, is_write)
        latency = finish - self._clock
        self.accesses += 1
        self.total_latency_cycles += latency
        return self.timing.cycles_to_seconds(latency)

    def _maybe_refresh(self) -> None:
        """All-bank refresh: every tREFI the banks close and stall tRFC."""
        while self._clock >= self._next_refresh:
            start = self._next_refresh
            for bank in self.banks:
                bank.ready_cycle = max(bank.ready_cycle, start) + self.timing.t_rfc
                bank.open_row = None  # refresh precharges all banks
            self.refreshes += 1
            self._next_refresh += self.timing.t_refi

    def run_trace(self, trace: Iterable[Tuple[int, bool]], gap: float = 0.0) -> float:
        """Run (address, is_write) pairs; returns mean latency in seconds."""
        count = 0
        for address, is_write in trace:
            self.access(address, is_write, arrival_gap=gap)
            count += 1
        if count == 0:
            return 0.0
        return self.amat()

    def amat(self) -> float:
        """Average memory access time in seconds over all accesses so far."""
        if self.accesses == 0:
            return 0.0
        return self.timing.cycles_to_seconds(self.total_latency_cycles / self.accesses)

    def row_hit_rate(self) -> float:
        hits = sum(b.hits for b in self.banks)
        total = hits + sum(b.misses + b.conflicts for b in self.banks)
        return hits / total if total else 0.0
