"""TPC-B: bank transactions against branches/tellers/accounts (Table 4).

Each transaction reads an account record (page-resident lookup), updates
the account, its teller and branch balances, and appends a history row.
Functionally executed over numpy balance arrays; the access trace reflects
the record lookups inside loaded pages plus the four update writes,
yielding the ~5% write ratio of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.query.trace import LINE_BYTES, TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register

ACCOUNT_ROW_BYTES = 100  # per the TPC-B spec
BRANCHES = 16
TELLERS_PER_BRANCH = 10
ACCOUNTS_PER_BRANCH = 10_000
INSTR_PER_TXN = 450

# DRAM lines touched to locate and read the records of one transaction
# (index walk + record page): calibrated to the paper's 5.2% write ratio
READ_LINES_PER_TXN = 72
WRITE_LINES_PER_TXN = 4  # account, teller, branch, history append


@register
class TpcB(Workload):
    name = "tpcb"
    description = "Queries in a large bank with multiple branches"

    @staticmethod
    def default_rows() -> int:
        return 20_000  # transactions

    def run(self) -> WorkloadProfile:
        rng = np.random.default_rng(self.seed)
        n_accounts = BRANCHES * ACCOUNTS_PER_BRANCH
        accounts = np.zeros(n_accounts, dtype=np.int64)
        tellers = np.zeros(BRANCHES * TELLERS_PER_BRANCH, dtype=np.int64)
        branches = np.zeros(BRANCHES, dtype=np.int64)
        history_len = 0

        txns = self.scale_rows
        account_ids = rng.integers(0, n_accounts, size=txns)
        teller_ids = rng.integers(0, len(tellers), size=txns)
        deltas = rng.integers(-999_999, 1_000_000, size=txns)

        # the actual transaction processing (vectorized equivalent)
        np.add.at(accounts, account_ids, deltas)
        np.add.at(tellers, teller_ids, deltas)
        np.add.at(branches, teller_ids // TELLERS_PER_BRANCH, deltas)
        history_len += txns

        recorder = TraceRecorder(seed=self.seed, sample_every=32)
        table_bytes = n_accounts * ACCOUNT_ROW_BYTES
        recorder.read_input(txns * READ_LINES_PER_TXN * LINE_BYTES)
        recorder.write_workset(table_bytes, txns * WRITE_LINES_PER_TXN)
        result_bytes = 64
        recorder.write_output(result_bytes)

        input_bytes = txns * READ_LINES_PER_TXN * LINE_BYTES
        return WorkloadProfile(
            name=self.name,
            rows=txns,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=INSTR_PER_TXN * txns,
            trace=recorder.finish(),
            answer=int(branches.sum()),  # conservation check: equals sum(deltas)
        )
