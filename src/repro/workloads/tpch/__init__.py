"""Scaled-down TPC-H: data generation and the five queries of Table 4."""

from repro.workloads.tpch.datagen import TpchData, generate
from repro.workloads.tpch.queries import TpchQ1, TpchQ3, TpchQ12, TpchQ14, TpchQ19

__all__ = [
    "TpchData",
    "generate",
    "TpchQ1",
    "TpchQ3",
    "TpchQ12",
    "TpchQ14",
    "TpchQ19",
]
