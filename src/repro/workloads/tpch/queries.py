"""The five TPC-H queries of Table 4, built on the query operators.

Each query genuinely computes its answer over generated data and reports
the work profile. Plans pipeline filters into joins/aggregations, matching
the Table 1 observation that these queries barely write memory.
"""

from __future__ import annotations

import numpy as np

from repro.query.operators import OpStats, aggregate, filter_rows, hash_join, positional_join, sort_limit
from repro.query.table import Table
from repro.query.trace import TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register
from repro.workloads.tpch import datagen
from repro.workloads.tpch.datagen import TpchData, generate

RESULT_ROW_BYTES = 48


class TpchQuery(Workload):
    """Shared scaffolding: generate data, run the plan, package the profile."""

    name = "tpch-base"

    @staticmethod
    def default_rows() -> int:
        return 60_000  # lineitem rows

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        raise NotImplementedError

    def input_tables(self, data: TpchData):
        """Tables this query streams from flash (affects input_bytes)."""
        return [data.lineitem]

    def run(self) -> WorkloadProfile:
        data = generate(self.scale_rows, seed=self.seed)
        stats = OpStats()
        recorder = TraceRecorder(seed=self.seed)
        result = self.plan(data, stats, recorder)
        result_bytes = max(64, result.num_rows * RESULT_ROW_BYTES)
        recorder.write_output(result_bytes)
        input_bytes = sum(t.total_bytes() for t in self.input_tables(data))
        return WorkloadProfile(
            name=self.name,
            rows=data.lineitem.num_rows,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=stats.instructions,
            trace=recorder.finish(),
            answer=result,
        )


@register
class TpchQ1(TpchQuery):
    """Q1: pricing summary report — scan + filter + group-by aggregate."""

    name = "tpch-q1"
    description = "Query pricing summary involving scan"

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        cutoff = datagen.DAY_1998_12_01 - 90
        li = filter_rows(
            data.lineitem, lambda t: t.column("shipdate") <= cutoff, stats, recorder
        )
        # group by (returnflag, linestatus): 6 groups max
        group = Table(
            "q1_input",
            {
                "grp": (li.column("returnflag") * 2 + li.column("linestatus")).astype(np.int8),
                "quantity": li.column("quantity"),
                "extendedprice": li.column("extendedprice"),
                "disc_price": li.column("extendedprice") * (1 - li.column("discount")),
                "charge": li.column("extendedprice")
                * (1 - li.column("discount"))
                * (1 + li.column("tax")),
            },
        )
        stats.instructions += 6 * li.num_rows  # the derived-column arithmetic
        return aggregate(
            group,
            group_by="grp",
            aggregations={
                "quantity": np.sum,
                "extendedprice": np.sum,
                "disc_price": np.sum,
                "charge": np.sum,
            },
            stats=stats,
            recorder=recorder,
        )


@register
class TpchQ3(TpchQuery):
    """Q3: shipping priority — two joins, then revenue per order."""

    name = "tpch-q3"
    description = "Query shipping priority involving join"

    def input_tables(self, data: TpchData):
        return [data.lineitem, data.orders, data.customer]

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        cutoff = datagen.DAY_1995_03_15
        building = filter_rows(
            data.customer,
            lambda t: t.column("mktsegment") == datagen.SEGMENT_BUILDING,
            stats,
            recorder,
        )
        open_orders = filter_rows(
            data.orders, lambda t: t.column("orderdate") < cutoff, stats, recorder
        )
        late_items = filter_rows(
            data.lineitem, lambda t: t.column("shipdate") > cutoff, stats, recorder
        )
        cust_orders = hash_join(
            building, open_orders, "custkey", "custkey", stats, recorder
        )
        joined = hash_join(
            cust_orders, late_items, "orderkey", "orderkey", stats, recorder
        )
        revenue_in = Table(
            "q3_input",
            {
                "orderkey": joined.column("orderkey"),
                "revenue": joined.column("extendedprice") * (1 - joined.column("discount")),
            },
        )
        stats.instructions += 3 * joined.num_rows
        per_order = aggregate(
            revenue_in,
            group_by="orderkey",
            aggregations={"revenue": np.sum},
            stats=stats,
            recorder=recorder,
        )
        # the spec's ORDER BY revenue DESC LIMIT 10
        return sort_limit(per_order, "revenue_sum", stats, recorder,
                          descending=True, limit=10)


@register
class TpchQ12(TpchQuery):
    """Q12: shipping modes and order priority — join + conditional counts."""

    name = "tpch-q12"
    description = "Query shipping modes and order priority with join"

    def input_tables(self, data: TpchData):
        return [data.lineitem, data.orders]

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        year_start = datagen.DAY_1994_01_01
        year_end = year_start + 365

        def predicate(t: Table) -> np.ndarray:
            return (
                np.isin(t.column("shipmode"), [datagen.SHIPMODE_MAIL, datagen.SHIPMODE_SHIP])
                & (t.column("commitdate") < t.column("receiptdate"))
                & (t.column("shipdate") < t.column("commitdate"))
                & (t.column("receiptdate") >= year_start)
                & (t.column("receiptdate") < year_end)
            )

        items = filter_rows(data.lineitem, predicate, stats, recorder)
        joined = positional_join(items, data.orders, "orderkey", "orderkey", stats, recorder)
        high = np.isin(joined.column("orderpriority"), [0, 1]).astype(np.int64)
        counts_in = Table(
            "q12_input",
            {
                "shipmode": joined.column("shipmode"),
                "high_line_count": high,
                "low_line_count": 1 - high,
            },
        )
        stats.instructions += 4 * joined.num_rows
        return aggregate(
            counts_in,
            group_by="shipmode",
            aggregations={"high_line_count": np.sum, "low_line_count": np.sum},
            stats=stats,
            recorder=recorder,
        )


@register
class TpchQ14(TpchQuery):
    """Q14: promotion effect — join lineitem with part over one month."""

    name = "tpch-q14"
    description = "Query market response to promotion with join"

    def input_tables(self, data: TpchData):
        return [data.lineitem, data.part]

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        month_start = datagen.DAY_1995_09_01
        items = filter_rows(
            data.lineitem,
            lambda t: (t.column("shipdate") >= month_start)
            & (t.column("shipdate") < month_start + 30),
            stats,
            recorder,
        )
        joined = positional_join(items, data.part, "partkey", "partkey", stats, recorder)
        revenue = joined.column("extendedprice") * (1 - joined.column("discount"))
        promo = np.where(joined.column("type") < 5, revenue, 0.0)
        stats.instructions += 5 * joined.num_rows
        total = float(revenue.sum())
        ratio = 100.0 * float(promo.sum()) / total if total else 0.0
        return Table("q14_result", {"promo_revenue": np.array([ratio])})


@register
class TpchQ19(TpchQuery):
    """Q19: discounted revenue — join + disjunctive brand/container/qty terms."""

    name = "tpch-q19"
    description = "Query discounted revenue with join and aggregate"

    def input_tables(self, data: TpchData):
        return [data.lineitem, data.part]

    def plan(self, data: TpchData, stats: OpStats, recorder: TraceRecorder) -> Table:
        items = filter_rows(
            data.lineitem,
            lambda t: (
                np.isin(t.column("shipmode"), [datagen.SHIPMODE_AIR, datagen.SHIPMODE_AIR_REG])
                & (t.column("shipinstruct") == datagen.SHIPINSTRUCT_DELIVER_IN_PERSON)
                & (t.column("quantity") >= 1)
                & (t.column("quantity") <= 30)
            ),
            stats,
            recorder,
        )
        # part is a dense-key dimension: gather its attributes positionally
        # and evaluate the disjunction on the joined stream (no hash table,
        # so the query stays write-free as Table 1 shows)
        joined = positional_join(items, data.part, "partkey", "partkey", stats, recorder)
        qty = joined.column("quantity")
        size = joined.column("size")
        brand = joined.column("brand")
        container = joined.column("container")
        clause1 = (brand == 12) & (container < 2) & (qty >= 1) & (qty <= 11) & (size <= 5)
        clause2 = (brand == 23) & (container == 2) & (qty >= 10) & (qty <= 20) & (size <= 10)
        clause3 = (brand == 34) & (container >= 3) & (qty >= 20) & (qty <= 30) & (size <= 15)
        mask = clause1 | clause2 | clause3
        revenue = joined.column("extendedprice") * (1 - joined.column("discount"))
        stats.instructions += 16 * joined.num_rows  # the disjunctive predicate
        total = float(revenue[mask].sum())
        return Table("q19_result", {"revenue": np.array([total])})
