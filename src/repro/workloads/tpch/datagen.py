"""TPC-H data generator (scaled down, numpy columnar).

Follows the dbgen value distributions closely enough for the five queries
the paper runs: date ranges over 1992-1998, uniform quantities/discounts,
categorical flags encoded as small integers. Row ratios match the spec:
lineitem ≈ 4 x orders, customer = orders / 10, part = lineitem / 7.5 (we
keep part ≥ 1/5 of lineitem for join selectivity).

Dates are integer day offsets from 1992-01-01 (day 0); 1998-12-01 is day
~2526. String-typed spec columns (shipmode, brand, container…) are integer
codes, with named constants in this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.table import Table

# day offsets from 1992-01-01
DAY_1995_01_01 = 1096
DAY_1995_03_15 = 1169
DAY_1994_01_01 = 731
DAY_1995_09_01 = 1339
DAY_1995_10_01 = 1369
DAY_1998_12_01 = 2526
DAYS_TOTAL = 2557  # 7 years

# categorical encodings
RETURNFLAG_R, RETURNFLAG_A, RETURNFLAG_N = 0, 1, 2
LINESTATUS_O, LINESTATUS_F = 0, 1
SHIPMODE_MAIL, SHIPMODE_SHIP, SHIPMODE_AIR, SHIPMODE_AIR_REG, SHIPMODE_TRUCK = range(5)
SHIPMODES = 5
SEGMENT_BUILDING = 0
SEGMENTS = 5
PROMO_TYPE_BASE = 0  # part types [0, 25); types < 5 are "PROMO%"
PART_TYPES = 25
BRANDS = 25
CONTAINERS = 8
SHIPINSTRUCT_DELIVER_IN_PERSON = 0
SHIPINSTRUCTS = 4


@dataclass
class TpchData:
    lineitem: Table
    orders: Table
    customer: Table
    part: Table

    def total_bytes(self) -> int:
        return (
            self.lineitem.total_bytes()
            + self.orders.total_bytes()
            + self.customer.total_bytes()
            + self.part.total_bytes()
        )


def generate(lineitem_rows: int = 60_000, seed: int = 7) -> TpchData:
    """Generate the four tables the paper's queries touch."""
    if lineitem_rows < 100:
        raise ValueError("need at least 100 lineitem rows")
    rng = np.random.default_rng(seed)
    n_orders = max(1, lineitem_rows // 4)
    n_customers = max(1, n_orders // 10)
    n_parts = max(1, lineitem_rows // 5)

    orderkeys = np.arange(n_orders, dtype=np.int64)
    orderdates = rng.integers(0, DAYS_TOTAL - 200, size=n_orders)
    orders = Table(
        "orders",
        {
            "orderkey": orderkeys,
            "custkey": rng.integers(0, n_customers, size=n_orders, dtype=np.int64),
            "orderdate": orderdates.astype(np.int32),
            "orderpriority": rng.integers(0, 5, size=n_orders, dtype=np.int8),
            "shippriority": np.zeros(n_orders, dtype=np.int8),
            "totalprice": rng.uniform(1_000, 400_000, size=n_orders).astype(np.float32),
        },
    )

    li_order = rng.integers(0, n_orders, size=lineitem_rows, dtype=np.int64)
    li_orderdate = orderdates[li_order]
    shipdate = li_orderdate + rng.integers(1, 121, size=lineitem_rows)
    commitdate = li_orderdate + rng.integers(30, 91, size=lineitem_rows)
    receiptdate = shipdate + rng.integers(1, 31, size=lineitem_rows)
    quantity = rng.integers(1, 51, size=lineitem_rows).astype(np.float32)
    extendedprice = (quantity * rng.uniform(900, 2_000, size=lineitem_rows)).astype(
        np.float32
    )
    lineitem = Table(
        "lineitem",
        {
            "orderkey": li_order,
            "partkey": rng.integers(0, n_parts, size=lineitem_rows, dtype=np.int64),
            "quantity": quantity,
            "extendedprice": extendedprice,
            "discount": rng.integers(0, 11, size=lineitem_rows).astype(np.float32) / 100.0,
            "tax": rng.integers(0, 9, size=lineitem_rows).astype(np.float32) / 100.0,
            "returnflag": rng.integers(0, 3, size=lineitem_rows, dtype=np.int8),
            "linestatus": (shipdate > DAY_1995_01_01).astype(np.int8),
            "shipdate": shipdate.astype(np.int32),
            "commitdate": commitdate.astype(np.int32),
            "receiptdate": receiptdate.astype(np.int32),
            "shipmode": rng.integers(0, SHIPMODES, size=lineitem_rows, dtype=np.int8),
            "shipinstruct": rng.integers(0, SHIPINSTRUCTS, size=lineitem_rows, dtype=np.int8),
        },
    )

    customer = Table(
        "customer",
        {
            "custkey": np.arange(n_customers, dtype=np.int64),
            "mktsegment": rng.integers(0, SEGMENTS, size=n_customers, dtype=np.int8),
        },
    )

    part = Table(
        "part",
        {
            "partkey": np.arange(n_parts, dtype=np.int64),
            "brand": rng.integers(0, BRANDS, size=n_parts, dtype=np.int8),
            "container": rng.integers(0, CONTAINERS, size=n_parts, dtype=np.int8),
            "size": rng.integers(1, 51, size=n_parts, dtype=np.int32),
            "type": rng.integers(0, PART_TYPES, size=n_parts, dtype=np.int8),
        },
    )

    return TpchData(lineitem=lineitem, orders=orders, customer=customer, part=part)
