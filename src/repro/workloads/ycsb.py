"""YCSB-style key-value workload (the ROADMAP's first new workload class).

A seeded KV store driven by a configurable operation mix — reads, updates,
inserts and short scans — with Zipf-distributed key popularity, the shape
the YCSB core workloads (A-E) interpolate between. The store genuinely
executes: a dict of key -> value bytes is probed and mutated per operation
and the answer is a checksum over the surviving store, so correctness
tests can pin the result.

Besides running standalone (``python -m repro run ycsb``), the mix weights
and Zipf skew are one dimension of a :mod:`repro.search` scenario genome:
the search engine mutates them to reshape the I/O stream it throws at the
chaos and resilience stacks.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.query.trace import TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register

# canonical mix: YCSB-A-leaning with a scan tail (exercises all four ops)
DEFAULT_MIX: Dict[str, float] = {
    "reads": 0.50,
    "updates": 0.25,
    "inserts": 0.15,
    "scans": 0.10,
}
DEFAULT_ZIPF_THETA = 0.9  # YCSB's "zipfian" request distribution skew
VALUE_BYTES = 100  # YCSB default: 10 fields x 10 bytes
KEY_ENTRY_BYTES = 32  # hash-table slot: key, pointer, metadata
SCAN_SPAN = 16  # records touched per scan op
INSTR_PER_OP = 45  # hash + probe + (de)serialize


def zipf_weights(population: int, theta: float) -> np.ndarray:
    """Bounded-Zipf popularity weights over ``population`` ranked keys."""
    if population < 1:
        raise ValueError("population must be >= 1")
    if theta < 0:
        raise ValueError("zipf theta must be >= 0")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks ** -theta
    return weights / weights.sum()


def normalized_mix(mix: Dict[str, float]) -> Dict[str, float]:
    """Validate and normalize a raw mix-weight dict to fractions."""
    unknown = sorted(set(mix) - set(DEFAULT_MIX))
    if unknown:
        raise ValueError(f"unknown mix keys: {', '.join(unknown)}")
    full = {op: float(mix.get(op, 0.0)) for op in sorted(DEFAULT_MIX)}
    for op, weight in sorted(full.items()):
        if weight < 0:
            raise ValueError(f"mix weight {op} must be >= 0, got {weight}")
    total = sum(full.values())
    if total <= 0:
        raise ValueError("mix weights must not all be zero")
    return {op: weight / total for op, weight in sorted(full.items())}


def mix_write_fraction(mix: Dict[str, float]) -> float:
    """Fraction of operations that mutate the store (updates + inserts)."""
    full = normalized_mix(mix)
    return full["updates"] + full["inserts"]


@register
class Ycsb(Workload):
    name = "ycsb"
    description = "YCSB-style KV mix: reads/updates/inserts/scans, Zipf keys"

    def __init__(
        self,
        scale_rows: int | None = None,
        seed: int = 7,
        mix: Dict[str, float] | None = None,
        zipf_theta: float = DEFAULT_ZIPF_THETA,
    ) -> None:
        super().__init__(scale_rows, seed)
        self.mix = normalized_mix(mix if mix is not None else DEFAULT_MIX)
        self.zipf_theta = zipf_theta

    @staticmethod
    def default_rows() -> int:
        return 60_000  # operations against a 20k-record store

    def run(self) -> WorkloadProfile:
        ops = self.scale_rows
        population = max(1024, ops // 3)  # preloaded record count
        rng = np.random.default_rng(self.seed)

        store: Dict[int, int] = {
            key: (key * 0x9E3779B1) & 0xFFFFFFFF for key in range(population)
        }
        next_key = population

        # draw the whole op stream up front: kinds from the mix, targets
        # from the bounded-Zipf popularity over the current keyspace rank
        kinds = rng.choice(
            len(DEFAULT_MIX),
            size=ops,
            p=[self.mix[op] for op in sorted(DEFAULT_MIX)],
        )
        targets = rng.choice(population, size=ops, p=zipf_weights(population, self.zipf_theta))

        recorder = TraceRecorder(seed=self.seed, sample_every=16)
        kind_names = sorted(DEFAULT_MIX)  # inserts, reads, scans, updates
        counts = {op: 0 for op in kind_names}
        checksum = 0
        table_bytes = population * KEY_ENTRY_BYTES
        value_region_bytes = population * VALUE_BYTES

        for kind_idx, target in zip(kinds.tolist(), targets.tolist()):
            op = kind_names[kind_idx]
            counts[op] += 1
            if op == "reads":
                checksum = (checksum + store.get(target, 0)) & 0xFFFFFFFF
                recorder.read_workset(table_bytes, 1, hot_fraction=0.8)
                recorder.read_workset(value_region_bytes, 1, hot_fraction=0.6)
            elif op == "updates":
                if target in store:
                    store[target] = (store[target] * 31 + 7) & 0xFFFFFFFF
                recorder.read_workset(table_bytes, 1, hot_fraction=0.8)
                recorder.write_workset(value_region_bytes, 1, hot_fraction=0.6)
            elif op == "inserts":
                store[next_key] = (next_key * 0x85EBCA6B) & 0xFFFFFFFF
                next_key += 1
                recorder.read_workset(table_bytes, 1, hot_fraction=0.8)
                recorder.write_workset(table_bytes, 1, hot_fraction=0.8)
                recorder.write_workset(value_region_bytes, 1, hot_fraction=0.6)
            else:  # scans: short ordered range from the target key
                span_sum = 0
                for probe in range(target, min(target + SCAN_SPAN, next_key)):
                    span_sum += store.get(probe, 0)
                checksum = (checksum + span_sum) & 0xFFFFFFFF
                recorder.read_workset(table_bytes, 1, hot_fraction=0.8)
                recorder.read_workset(
                    value_region_bytes, SCAN_SPAN, hot_fraction=0.3
                )

        input_bytes = ops * (KEY_ENTRY_BYTES + VALUE_BYTES)
        result_bytes = 64
        recorder.write_output(result_bytes)
        answer: Tuple[int, int, int] = (checksum, len(store), next_key)
        return WorkloadProfile(
            name=self.name,
            rows=ops,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=float(INSTR_PER_OP * ops + SCAN_SPAN * counts["scans"]),
            trace=recorder.finish(),
            answer=answer,
        )


__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_ZIPF_THETA",
    "Ycsb",
    "mix_write_fraction",
    "normalized_mix",
    "zipf_weights",
]
