"""In-storage workloads (Table 4 of the paper).

Synthetic database operators (Arithmetic, Aggregate, Filter), five TPC-H
queries (1, 3, 12, 14, 19), the TPC-B and TPC-C transaction mixes, and
Wordcount. Every workload genuinely executes over generated data and
reports a :class:`~repro.workloads.base.WorkloadProfile` with exact work
counters and a sampled DRAM access trace.
"""

from repro.workloads.base import (
    ALL_WORKLOADS,
    READ_INTENSIVE,
    WRITE_INTENSIVE,
    Workload,
    WorkloadProfile,
    workload_by_name,
)
from repro.workloads.synthetic import Aggregate, Arithmetic, Filter
from repro.workloads.wordcount import Wordcount
from repro.workloads.tpcb import TpcB
from repro.workloads.tpcc import TpcC
from repro.workloads.tpch.queries import TpchQ1, TpchQ3, TpchQ12, TpchQ14, TpchQ19
from repro.workloads.ycsb import Ycsb

__all__ = [
    "ALL_WORKLOADS",
    "READ_INTENSIVE",
    "WRITE_INTENSIVE",
    "Workload",
    "WorkloadProfile",
    "workload_by_name",
    "Arithmetic",
    "Aggregate",
    "Filter",
    "Wordcount",
    "TpcB",
    "TpcC",
    "TpchQ1",
    "TpchQ3",
    "TpchQ12",
    "TpchQ14",
    "TpchQ19",
    "Ycsb",
]
