"""Workload abstraction and profiles.

A workload runs at a configurable (small) scale and produces a
:class:`WorkloadProfile`; the platform layer linearly extrapolates the
profile to the paper's 32 GB dataset via :meth:`WorkloadProfile.scaled`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Type

from repro.query.trace import AccessTrace


@dataclass
class WorkloadProfile:
    """Measured behaviour of one workload execution."""

    name: str
    rows: int
    input_bytes: int  # bytes the program streams from flash
    result_bytes: int  # final result returned to the host
    instructions: float
    trace: AccessTrace
    answer: object = None  # the actual query result (for correctness tests)

    @property
    def mem_reads(self) -> int:
        return self.trace.cpu_reads

    @property
    def mem_writes(self) -> int:
        return self.trace.cpu_writes

    @property
    def dram_accesses(self) -> int:
        return self.trace.dram_accesses

    @property
    def write_ratio(self) -> float:
        """Table 1: fraction of memory accesses that are writes."""
        return self.trace.write_ratio

    @property
    def instructions_per_byte(self) -> float:
        return self.instructions / self.input_bytes if self.input_bytes else 0.0

    def scaled(self, target_input_bytes: int) -> "WorkloadProfile":
        """Extrapolate counts to a larger dataset (same trace sample).

        Work per input byte is constant to first order for these streaming
        workloads, so counts scale linearly; the sampled trace keeps its
        statistical shape and is replayed as-is by the simulators.
        """
        if self.input_bytes <= 0:
            return self
        factor = target_input_bytes / self.input_bytes
        scaled_trace = AccessTrace(
            events=self.trace.events,
            cpu_reads=int(self.trace.cpu_reads * factor),
            cpu_writes=int(self.trace.cpu_writes * factor),
            dram_reads=int(self.trace.dram_reads * factor),
            dram_writes=int(self.trace.dram_writes * factor),
            fixed_dram_reads=self.trace.fixed_dram_reads,  # one-time costs
            fixed_dram_writes=self.trace.fixed_dram_writes,
        )
        return replace(
            self,
            rows=int(self.rows * factor),
            input_bytes=target_input_bytes,
            result_bytes=self.result_bytes,  # results do not grow with input
            instructions=self.instructions * factor,
            trace=scaled_trace,
        )


class Workload(ABC):
    """Base class: run at a given scale, return a profile."""

    name: str = "abstract"
    description: str = ""

    def __init__(self, scale_rows: Optional[int] = None, seed: int = 7) -> None:
        self.scale_rows = scale_rows or self.default_rows()
        self.seed = seed

    @staticmethod
    def default_rows() -> int:
        return 50_000

    @abstractmethod
    def run(self) -> WorkloadProfile:
        """Execute the workload and measure it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={self.scale_rows})"


# populated by repro.workloads.__init__ imports via register()
ALL_WORKLOADS: Dict[str, Type[Workload]] = {}

# the paper's read- vs write-intensive split (§6.1)
READ_INTENSIVE: List[str] = [
    "arithmetic",
    "aggregate",
    "filter",
    "tpch-q1",
    "tpch-q3",
    "tpch-q12",
    "tpch-q14",
    "tpch-q19",
]
# ycsb is not in the paper's Table 4 — it is the KV mix the scenario-search
# genome reshapes — but with updates+inserts at 40% of ops it sits firmly
# on the write-intensive side of the §6.1 split
WRITE_INTENSIVE: List[str] = ["tpcb", "tpcc", "wordcount", "ycsb"]


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    ALL_WORKLOADS[cls.name] = cls
    return cls


def workload_by_name(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by its Table 4 name."""
    try:
        cls = ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise KeyError(f"unknown workload '{name}'; known: {known}") from None
    return cls(**kwargs)
