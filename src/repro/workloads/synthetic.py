"""Synthetic database-operator workloads (Table 4).

- **Arithmetic** — mathematical operations against data records.
- **Aggregate** — average over a set of values.
- **Filter** — select records matching a feature.

Each streams a generated record table and reduces to a small result, which
is why their memory write ratios sit around 1e-4 (Table 1): the only writes
are accumulator spills and the final result.
"""

from __future__ import annotations

import numpy as np

from repro.query.operators import OpStats, aggregate, arithmetic, filter_rows
from repro.query.table import Table
from repro.query.trace import TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register

RECORD_COLUMNS = 4  # id, key, value, payload
RESULT_BYTES = 64


def make_records(rows: int, seed: int) -> Table:
    """A generic record table: 4 x 8-byte columns per row."""
    rng = np.random.default_rng(seed)
    return Table(
        "records",
        {
            "id": np.arange(rows, dtype=np.int64),
            "key": rng.integers(0, max(1, rows // 16), size=rows, dtype=np.int64),
            "value": rng.uniform(0.0, 1000.0, size=rows),
            "payload": rng.integers(0, 1 << 40, size=rows, dtype=np.int64),
        },
    )


@register
class Arithmetic(Workload):
    name = "arithmetic"
    description = "Mathematical operations against data records"

    def run(self) -> WorkloadProfile:
        table = make_records(self.scale_rows, self.seed)
        stats = OpStats()
        recorder = TraceRecorder(seed=self.seed)
        computed = arithmetic(
            table,
            lambda t: t.column("value") * 1.07 + np.sqrt(np.abs(t.column("payload") % 997)),
            stats,
            recorder,
        )
        # reduce to a checksum so only the tiny result is materialized
        checksum = float(np.sum(computed.column("value")))
        stats.instructions += 2 * table.num_rows  # the reduction adds
        recorder.write_output(RESULT_BYTES)
        return WorkloadProfile(
            name=self.name,
            rows=table.num_rows,
            input_bytes=table.total_bytes(),
            result_bytes=RESULT_BYTES,
            instructions=stats.instructions,
            trace=recorder.finish(),
            answer=checksum,
        )


@register
class Aggregate(Workload):
    name = "aggregate"
    description = "Aggregate a set of values with average operation"

    def run(self) -> WorkloadProfile:
        table = make_records(self.scale_rows, self.seed)
        stats = OpStats()
        recorder = TraceRecorder(seed=self.seed)
        result = aggregate(
            table,
            group_by=None,
            aggregations={"value": np.mean},
            stats=stats,
            recorder=recorder,
        )
        recorder.write_output(RESULT_BYTES)
        return WorkloadProfile(
            name=self.name,
            rows=table.num_rows,
            input_bytes=table.total_bytes(),
            result_bytes=RESULT_BYTES,
            instructions=stats.instructions,
            trace=recorder.finish(),
            answer=float(result.column("value_mean")[0]),
        )


@register
class Filter(Workload):
    name = "filter"
    description = "Filter a set of data that matches a certain feature"

    selectivity = 0.001

    def run(self) -> WorkloadProfile:
        table = make_records(self.scale_rows, self.seed)
        stats = OpStats()
        recorder = TraceRecorder(seed=self.seed)
        threshold = 1000.0 * self.selectivity
        matches = filter_rows(
            table, lambda t: t.column("value") < threshold, stats, recorder
        )
        # matched records are the result returned to the host
        result_bytes = max(RESULT_BYTES, matches.total_bytes())
        recorder.write_output(result_bytes)
        return WorkloadProfile(
            name=self.name,
            rows=table.num_rows,
            input_bytes=table.total_bytes(),
            result_bytes=result_bytes,
            instructions=stats.instructions,
            trace=recorder.finish(),
            answer=matches.num_rows,
        )
