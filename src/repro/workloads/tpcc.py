"""TPC-C: online transaction processing in a warehouse center (Table 4).

A simplified New-Order / Payment mix over warehouse, district, customer,
stock, and order-line arrays. New-Order inserts ~10 order lines and updates
stock levels, which makes TPC-C the more write-heavy of the two
transactional workloads (Table 1: 9.05e-2 vs TPC-B's 5.19e-2).
"""

from __future__ import annotations

import numpy as np

from repro.query.trace import LINE_BYTES, TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register

WAREHOUSES = 8
DISTRICTS_PER_WH = 10
CUSTOMERS_PER_DISTRICT = 3_000
ITEMS = 100_000
STOCK_ROW_BYTES = 320
ORDER_LINES_PER_ORDER = 10
NEW_ORDER_FRACTION = 0.45
INSTR_NEW_ORDER = 2_200
INSTR_PAYMENT = 600

READ_LINES_NEW_ORDER = 110  # item+stock+customer lookups
WRITE_LINES_NEW_ORDER = 13  # order, new-order, 10 order lines, district
READ_LINES_PAYMENT = 48
WRITE_LINES_PAYMENT = 4  # warehouse, district, customer, history


@register
class TpcC(Workload):
    name = "tpcc"
    description = "Online transaction queries in a warehouse center"

    @staticmethod
    def default_rows() -> int:
        return 10_000  # transactions

    def run(self) -> WorkloadProfile:
        rng = np.random.default_rng(self.seed)
        stock = np.full(WAREHOUSES * ITEMS, 100, dtype=np.int32)
        district_next_oid = np.zeros(WAREHOUSES * DISTRICTS_PER_WH, dtype=np.int64)
        customer_balance = np.zeros(
            WAREHOUSES * DISTRICTS_PER_WH * CUSTOMERS_PER_DISTRICT, dtype=np.int64
        )

        txns = self.scale_rows
        is_new_order = rng.random(txns) < NEW_ORDER_FRACTION
        n_new_order = int(is_new_order.sum())
        n_payment = txns - n_new_order

        # New-Order: decrement stock for ~10 random items each, bump district
        items = rng.integers(0, len(stock), size=n_new_order * ORDER_LINES_PER_ORDER)
        quantities = rng.integers(1, 10, size=len(items))
        np.subtract.at(stock, items, quantities)
        stock[stock < 10] += 91  # restock rule from the spec
        districts = rng.integers(0, len(district_next_oid), size=n_new_order)
        np.add.at(district_next_oid, districts, 1)

        # Payment: adjust customer balances
        customers = rng.integers(0, len(customer_balance), size=n_payment)
        amounts = rng.integers(1, 5_000, size=n_payment)
        np.subtract.at(customer_balance, customers, amounts)

        recorder = TraceRecorder(seed=self.seed, sample_every=32)
        stock_bytes = len(stock) * STOCK_ROW_BYTES
        read_lines = (
            n_new_order * READ_LINES_NEW_ORDER + n_payment * READ_LINES_PAYMENT
        )
        write_lines = (
            n_new_order * WRITE_LINES_NEW_ORDER + n_payment * WRITE_LINES_PAYMENT
        )
        recorder.read_input(read_lines * LINE_BYTES)
        recorder.write_workset(stock_bytes, write_lines)
        result_bytes = 64
        recorder.write_output(result_bytes)

        input_bytes = read_lines * LINE_BYTES
        instructions = n_new_order * INSTR_NEW_ORDER + n_payment * INSTR_PAYMENT
        return WorkloadProfile(
            name=self.name,
            rows=txns,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=instructions,
            trace=recorder.finish(),
            answer=(int(district_next_oid.sum()), int(customer_balance.sum())),
        )
