"""Wordcount (Table 4, from Biscuit): count words in a long text.

The most write-intensive workload of the paper (write ratio 0.461): every
word probes and updates a vocabulary hash table far bigger than the on-chip
caches, so nearly half of all DRAM accesses are writes.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.query.trace import TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register

VOCABULARY = 50_000
HASH_ENTRY_BYTES = 32
MEAN_WORD_BYTES = 6
INSTR_PER_WORD = 30  # tokenize + hash + increment


def generate_word_ids(nwords: int, seed: int) -> np.ndarray:
    """Zipf-distributed word identifiers (natural-language frequency)."""
    rng = np.random.default_rng(seed)
    ids = rng.zipf(1.3, size=nwords)
    return np.minimum(ids - 1, VOCABULARY - 1).astype(np.int64)


@register
class Wordcount(Workload):
    name = "wordcount"
    description = "Count the number of words in a long text"

    @staticmethod
    def default_rows() -> int:
        return 200_000  # words

    def run(self) -> WorkloadProfile:
        words = generate_word_ids(self.scale_rows, self.seed)
        counts = Counter(words.tolist())  # the actual wordcount

        recorder = TraceRecorder(seed=self.seed, sample_every=16)
        input_bytes = self.scale_rows * MEAN_WORD_BYTES
        table_bytes = VOCABULARY * HASH_ENTRY_BYTES  # 1.6 MB > cache filter
        recorder.read_input(input_bytes)
        # Zipf skew keeps the hot words cache-resident; only the cold tail
        # of the vocabulary reaches DRAM
        recorder.read_workset(table_bytes, self.scale_rows, hot_fraction=0.85)
        recorder.write_workset(table_bytes, self.scale_rows, hot_fraction=0.85)
        result_bytes = len(counts) * 12  # (word id, count) pairs
        recorder.write_output(result_bytes)

        return WorkloadProfile(
            name=self.name,
            rows=self.scale_rows,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=INSTR_PER_WORD * self.scale_rows,
            trace=recorder.finish(),
            answer=counts.most_common(1)[0] if counts else None,
        )
