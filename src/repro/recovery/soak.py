"""Resumable soak campaigns: crash the host, keep the run.

``python -m repro soak <workload>`` drives a long chaos campaign that
checkpoints itself every ``checkpoint_every`` operations. If the host
process dies — OOM-killed, machine rebooted, or deliberately via
``--kill-at`` — rerunning the same command finds the newest valid snapshot
in the state directory, restores the whole stack from it and continues from
the last checkpoint; work since that checkpoint is recomputed, which is
safe because the campaign is a pure function of its seed. ``--verify``
additionally runs the same campaign uninterrupted in memory and requires
the two final fingerprints to be byte-identical — the soak-shaped version
of the crash-point oracle.

Snapshot files that fail their content fingerprint (a crash mid-write, a
corrupted disk) are skipped with a warning; the newest *valid* snapshot
wins. Completed campaigns are recorded in ``results.json`` so a multi-seed
soak resumed after a crash does not repeat finished seeds.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.chaos import ChaosRunner
from repro.faults.plan import FaultPlanConfig
from repro.recovery.checkpoint import (
    CHAOS_SNAPSHOT_KIND,
    restore_chaos_runner,
    snapshot_chaos_runner,
)
from repro.recovery.monitors import MonitorSuite
from repro.recovery.oracle import _digest
from repro.recovery.snapshot import Snapshot, SnapshotError, load_snapshot, save_snapshot
from repro.sim.stats import RecoveryStats

# EX_TEMPFAIL: the campaign is checkpointed, rerun the same command to resume
SOAK_KILLED_EXIT = 75

_SNAPSHOT_RE = re.compile(r"^(?P<workload>.+)-seed(?P<seed>\d+)-op(?P<op>\d+)\.snap$")


@dataclass
class SoakResult:
    """Outcome of one completed soak campaign."""

    workload: str
    seed: int
    ops: int
    fingerprint_digest: str
    resumed_from_op: Optional[int]
    invariant_violations: int
    verified: Optional[bool]  # None when --verify was not requested


def _snapshot_path(state_dir: str, workload: str, seed: int, op: int) -> str:
    return os.path.join(state_dir, f"{workload}-seed{seed}-op{op:06d}.snap")


def find_latest_snapshot(
    state_dir: str,
    workload: str,
    seed: int,
    ops: int,
    warn: Optional[Callable[[str], None]] = None,
) -> Optional[Tuple[str, Snapshot]]:
    """Newest snapshot in ``state_dir`` matching this campaign, if any.

    Files that fail to load (version mismatch, corrupt content fingerprint)
    or whose metadata names a different campaign are skipped — newest valid
    wins, which is exactly the guarantee a crash mid-checkpoint needs.
    """
    if not os.path.isdir(state_dir):
        return None
    candidates: List[Tuple[int, str]] = []
    for name in os.listdir(state_dir):
        match = _SNAPSHOT_RE.match(name)
        if match and match.group("workload") == workload and int(match.group("seed")) == seed:
            candidates.append((int(match.group("op")), os.path.join(state_dir, name)))
    for _op, path in sorted(candidates, reverse=True):
        try:
            snapshot = load_snapshot(path, expect_kind=CHAOS_SNAPSHOT_KIND)
        except SnapshotError as exc:
            if warn is not None:
                warn(f"skipping unusable snapshot {path}: {exc}")
            continue
        meta = snapshot.meta
        if meta.get("workload") == workload and meta.get("seed") == seed and meta.get("ops") == ops:
            return path, snapshot
        if warn is not None:
            warn(f"skipping snapshot {path}: metadata names a different campaign")
    return None


def run_soak(
    workload: str,
    write_ratio: float,
    seed: int,
    ops: int,
    state_dir: str,
    checkpoint_every: int = 200,
    kill_at: Optional[int] = None,
    monitors: bool = True,
    verify: bool = False,
    stats: Optional[RecoveryStats] = None,
    plan_config: Optional[FaultPlanConfig] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[int, Optional[SoakResult]]:
    """One resumable campaign; returns (exit_code, result-or-None).

    Exit codes: 0 success, 1 verification mismatch,
    :data:`SOAK_KILLED_EXIT` (75) when ``kill_at`` triggered the simulated
    host crash — the campaign is resumable by calling again.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    stats = stats if stats is not None else RecoveryStats()
    say = log if log is not None else (lambda _msg: None)
    os.makedirs(state_dir, exist_ok=True)

    resumed_from_op: Optional[int] = None
    latest = find_latest_snapshot(state_dir, workload, seed, ops, warn=say)
    if latest is not None:
        path, snapshot = latest
        runner = restore_chaos_runner(snapshot, plan_config=plan_config)
        stats.restores += 1
        resumed_from_op = runner.ops_executed
        say(f"resumed from {path} at op {resumed_from_op}/{ops}")
    else:
        runner = ChaosRunner(
            workload, write_ratio, seed=seed, ops=ops, plan_config=plan_config
        )
        say(f"fresh campaign: {workload} seed={seed} ops={ops}")

    if monitors:
        runner.arm_monitors(MonitorSuite(stats))

    while runner.ops_executed < ops:
        next_stop = min(ops, (runner.ops_executed // checkpoint_every + 1) * checkpoint_every)
        if kill_at is not None and runner.ops_executed < kill_at <= next_stop:
            # the simulated host crash: advance to the kill point and exit
            # WITHOUT checkpointing, so resume recomputes from the last one
            runner.run_until(kill_at)
            say(f"kill switch at op {runner.ops_executed}; no checkpoint written")
            return SOAK_KILLED_EXIT, None
        runner.run_until(next_stop)
        path = _snapshot_path(state_dir, workload, seed, runner.ops_executed)
        fingerprint = save_snapshot(snapshot_chaos_runner(runner), path)
        stats.snapshots_taken += 1
        say(f"checkpoint op {runner.ops_executed}/{ops} -> {path} [{fingerprint[:12]}]")

    report = runner.finalize()
    digest = _digest(report.fingerprint())
    verified: Optional[bool] = None
    if verify:
        golden = ChaosRunner(
            workload, write_ratio, seed=seed, ops=ops, plan_config=plan_config
        ).run()
        verified = golden.fingerprint() == report.fingerprint()
        say(
            "verify vs uninterrupted run: "
            + ("byte-identical" if verified else "MISMATCH")
        )
    result = SoakResult(
        workload=workload,
        seed=seed,
        ops=ops,
        fingerprint_digest=digest,
        resumed_from_op=resumed_from_op,
        invariant_violations=report.invariant_violations,
        verified=verified,
    )
    exit_code = 1 if verified is False else 0
    return exit_code, result


def _results_path(state_dir: str) -> str:
    return os.path.join(state_dir, "results.json")


def load_results(state_dir: str) -> Dict[str, str]:
    """seed (as str) -> final fingerprint digest for completed campaigns."""
    path = _results_path(state_dir)
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    completed = payload.get("completed", {})
    return completed if isinstance(completed, dict) else {}


def _write_results(state_dir: str, completed: Dict[str, str]) -> None:
    path = _results_path(state_dir)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump({"completed": completed}, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def run_soak_campaigns(
    workload: str,
    write_ratio: float,
    seed: int,
    ops: int,
    state_dir: str,
    campaigns: int = 1,
    checkpoint_every: int = 200,
    kill_at: Optional[int] = None,
    monitors: bool = True,
    verify: bool = False,
    stats: Optional[RecoveryStats] = None,
    plan_config: Optional[FaultPlanConfig] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[int, List[SoakResult]]:
    """Run ``campaigns`` consecutive seeds, skipping already-finished ones.

    ``results.json`` in the state directory records each completed seed's
    final fingerprint digest; a rerun after a crash (or a kill) fast-skips
    those and resumes the interrupted campaign from its newest snapshot.
    ``kill_at`` applies to the first campaign that actually runs.
    """
    stats = stats if stats is not None else RecoveryStats()
    say = log if log is not None else (lambda _msg: None)
    os.makedirs(state_dir, exist_ok=True)
    completed = load_results(state_dir)
    results: List[SoakResult] = []
    for campaign_seed in range(seed, seed + campaigns):
        if str(campaign_seed) in completed:
            say(f"seed {campaign_seed} already completed; skipping")
            continue
        exit_code, result = run_soak(
            workload,
            write_ratio,
            campaign_seed,
            ops,
            state_dir,
            checkpoint_every=checkpoint_every,
            kill_at=kill_at,
            monitors=monitors,
            verify=verify,
            stats=stats,
            plan_config=plan_config,
            log=log,
        )
        if exit_code == SOAK_KILLED_EXIT:
            return exit_code, results
        kill_at = None  # the kill switch fires at most once per invocation
        if result is not None:
            results.append(result)
            completed[str(result.seed)] = result.fingerprint_digest
            _write_results(state_dir, completed)
        if exit_code != 0:
            return exit_code, results
    return 0, results


def recovery_csv_rows(
    results: List[SoakResult], stats: RecoveryStats
) -> List[List[str]]:
    """CSV view of a soak's recovery counters (one row per campaign)."""
    counter_names = sorted(stats.as_dict())
    # chaos_violations is the harness's data-loss count; the `violations`
    # counter column is the invariant monitors' ledger — different things
    header = ["workload", "seed", "ops", "fingerprint", "chaos_violations"] + counter_names
    rows = [header]
    for result in results:
        rows.append(
            [
                result.workload,
                str(result.seed),
                str(result.ops),
                result.fingerprint_digest[:16],
                str(result.invariant_violations),
            ]
            + [str(int(stats.as_dict()[name])) for name in counter_names]
        )
    return rows


__all__ = [
    "SOAK_KILLED_EXIT",
    "SoakResult",
    "find_latest_snapshot",
    "load_results",
    "recovery_csv_rows",
    "run_soak",
    "run_soak_campaigns",
]
