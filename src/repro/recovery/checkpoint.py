"""Whole-stack checkpoints of a running chaos campaign.

The chaos harness is the integration surface that exercises every stateful
component at once — flash array, FTL, ECC, tenant enclaves, fault injector,
PRNG — so its checkpoint *is* the whole-stack checkpoint: one
:class:`~repro.recovery.snapshot.Snapshot` composed from each component's
``snapshot_state()``. Restoring builds a fresh runner from the snapshot's
metadata (re-running all constructors, which rewires derived state and
hooks) and then overlays the saved state.

Checkpoints are only taken between operations (the harness is functional,
so between-ops *is* the quiescent point); a resumed run draws the same PRNG
bytes and produces a byte-identical final report, which
:mod:`repro.recovery.oracle` proves crash point by crash point.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.chaos import ChaosRunner
from repro.faults.plan import FaultPlanConfig
from repro.recovery.snapshot import Snapshot, SnapshotError

CHAOS_SNAPSHOT_KIND = "chaos-run"


def snapshot_chaos_runner(runner: ChaosRunner) -> Snapshot:
    """Capture a quiescent chaos runner as a versioned snapshot."""
    meta = {
        "workload": runner.workload,
        "write_ratio": runner.write_fraction,
        "seed": runner.seed,
        "ops": runner.ops,
        "ops_executed": runner.ops_executed,
    }
    return Snapshot(kind=CHAOS_SNAPSHOT_KIND, meta=meta, state=runner.snapshot_state())


def restore_chaos_runner(
    snapshot: Snapshot,
    plan_config: Optional[FaultPlanConfig] = None,
) -> ChaosRunner:
    """Rebuild a runner from a snapshot (constructors first, then state).

    ``plan_config`` must match the one the snapshotted run was built with
    (the default config for every CLI path); the fault plan itself is a pure
    function of (seed, ops, config), so it is regenerated, not stored.
    Monitors are never part of a snapshot — re-arm with
    :meth:`~repro.faults.chaos.ChaosRunner.arm_monitors` after restoring.
    """
    if snapshot.kind != CHAOS_SNAPSHOT_KIND:
        raise SnapshotError(
            f"expected a {CHAOS_SNAPSHOT_KIND!r} snapshot, got {snapshot.kind!r}"
        )
    meta = snapshot.meta
    runner = ChaosRunner(
        meta["workload"],
        meta["write_ratio"],
        seed=meta["seed"],
        ops=meta["ops"],
        plan_config=plan_config,
    )
    runner.restore_state(snapshot.state)
    return runner


__all__ = ["CHAOS_SNAPSHOT_KIND", "restore_chaos_runner", "snapshot_chaos_runner"]
