"""Crash-point differential oracle: prove restore is byte-identical.

For each seed the oracle runs one *golden* uninterrupted chaos campaign and
records its report fingerprint. Then, for every crash point T in a sweep,
it runs a fresh campaign to T, checkpoints it, round-trips the checkpoint
through disk (so serialization itself is under test), hard-kills the live
runner by discarding it, restores a brand-new runner from the file, runs it
to completion and demands the final fingerprint equal the golden one —
byte-identical, event log and all. Any state a component forgot to
serialize, any RNG draw that happens in a different order, any derived
structure rebuilt wrong shows up as a mismatch at some crash point.

The oracle also proves the *negative* path: a snapshot file with one
flipped byte must be rejected by the content fingerprint before any state
reaches the simulator.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.faults.chaos import ChaosRunner
from repro.faults.plan import FaultPlanConfig
from repro.recovery.checkpoint import (
    CHAOS_SNAPSHOT_KIND,
    restore_chaos_runner,
    snapshot_chaos_runner,
)
from repro.recovery.snapshot import (
    SnapshotCorruptError,
    load_snapshot,
    save_snapshot,
)
from repro.sim.stats import RecoveryStats


@dataclass(frozen=True)
class OraclePoint:
    """One crash point's verdict."""

    seed: int
    crash_op: int
    matched: bool
    golden_digest: str
    resumed_digest: str


@dataclass
class OracleReport:
    """Outcome of a full crash-point sweep."""

    workload: str
    write_ratio: float
    ops: int
    points: List[OraclePoint] = field(default_factory=list)
    corruption_rejected: bool = False

    @property
    def passed(self) -> int:
        return sum(1 for p in self.points if p.matched)

    @property
    def failed(self) -> int:
        return len(self.points) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0 and self.corruption_rejected and bool(self.points)

    def format(self) -> str:
        seeds = sorted({p.seed for p in self.points})
        lines = [
            f"oracle {self.workload}: {len(self.points)} crash points over "
            f"{len(seeds)} seeds, {self.ops} ops each",
            f"  byte-identical  : {self.passed}/{len(self.points)}",
            "  corrupt snapshot: "
            + ("rejected (content fingerprint)" if self.corruption_rejected else "NOT REJECTED"),
        ]
        for point in self.points:
            if not point.matched:
                lines.append(
                    f"  MISMATCH seed={point.seed} crash_op={point.crash_op}: "
                    f"{point.resumed_digest[:16]} != {point.golden_digest[:16]}"
                )
        return "\n".join(lines)


def crash_points(ops: int, count: int) -> List[int]:
    """``count`` evenly spaced interior operation indices in (0, ops)."""
    if ops < 2 or count < 1:
        raise ValueError("need ops >= 2 and count >= 1")
    step = ops / (count + 1)
    return sorted({min(ops - 1, max(1, round(step * (i + 1)))) for i in range(count)})


def _digest(fingerprint: str) -> str:
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()


def _probe_corruption(path: str) -> bool:
    """Flip one byte of a saved snapshot; loading must refuse it."""
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[len(blob) // 2] ^= 0x01
    corrupt_path = path + ".corrupt"
    with open(corrupt_path, "wb") as fh:
        fh.write(bytes(blob))
    try:
        load_snapshot(corrupt_path, expect_kind=CHAOS_SNAPSHOT_KIND)
    except SnapshotCorruptError:
        return True
    finally:
        os.unlink(corrupt_path)
    return False


def run_oracle(
    workload: str,
    write_ratio: float,
    base_seed: int = 42,
    seeds: int = 3,
    points: int = 9,
    ops: int = 1200,
    plan_config: Optional[FaultPlanConfig] = None,
    stats: Optional[RecoveryStats] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> OracleReport:
    """Sweep ``points`` crash points across ``seeds`` consecutive seeds."""
    report = OracleReport(workload=workload, write_ratio=write_ratio, ops=ops)
    stats = stats if stats is not None else RecoveryStats()
    sweep = crash_points(ops, points)
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        for seed in range(base_seed, base_seed + seeds):
            golden = ChaosRunner(
                workload, write_ratio, seed=seed, ops=ops, plan_config=plan_config
            ).run()
            golden_fp = golden.fingerprint()
            golden_digest = _digest(golden_fp)
            for crash_op in sweep:
                runner = ChaosRunner(
                    workload, write_ratio, seed=seed, ops=ops, plan_config=plan_config
                )
                runner.run_until(crash_op)
                path = os.path.join(tmp, f"seed{seed}-op{crash_op}.snap")
                save_snapshot(snapshot_chaos_runner(runner), path)
                stats.snapshots_taken += 1
                del runner  # the hard kill: only the file survives
                loaded = load_snapshot(path, expect_kind=CHAOS_SNAPSHOT_KIND)
                if not report.corruption_rejected:
                    report.corruption_rejected = _probe_corruption(path)
                resumed = restore_chaos_runner(loaded, plan_config=plan_config)
                stats.restores += 1
                resumed.run_until(ops)
                resumed_fp = resumed.finalize().fingerprint()
                matched = resumed_fp == golden_fp
                if matched:
                    stats.oracle_points_passed += 1
                report.points.append(
                    OraclePoint(
                        seed=seed,
                        crash_op=crash_op,
                        matched=matched,
                        golden_digest=golden_digest,
                        resumed_digest=_digest(resumed_fp),
                    )
                )
                if progress is not None:
                    status = "ok" if matched else "MISMATCH"
                    progress(f"seed={seed} crash_op={crash_op}: {status}")
    return report


__all__ = ["OraclePoint", "OracleReport", "crash_points", "run_oracle"]
