"""Versioned, content-fingerprinted whole-stack snapshots.

A snapshot is a plain-primitive tree (``None``/``bool``/``int``/``float``/
``str``/``bytes``/``list``/``tuple``/``dict``) produced by a component's
``snapshot_state()`` and consumed by its ``restore_state()``. Keeping the
payload primitive does three things at once:

- the state is *inspectable* (no opaque object graphs inside a snapshot);
- it can be canonically encoded, so every snapshot carries a ``sha256``
  content fingerprint — the same discipline as
  :meth:`repro.platform.metrics.RunResult.fingerprint` — and a corrupted
  file is rejected at load time rather than restored into a subtly wrong
  simulator;
- restore cannot resurrect stale code: classes are rebuilt by the current
  constructors and only their *state* comes from the file.

Order-sensitive mappings (LRU ``OrderedDict``s, journals replayed in
insertion order) are snapshotted as item *lists* via :func:`dict_items` so
the fingerprint captures their iteration order, not just their contents.

Format compatibility policy: ``SNAPSHOT_VERSION`` bumps whenever any
participating ``snapshot_state()`` changes shape. Loaders reject other
versions outright (:class:`SnapshotVersionError`) — snapshots are
checkpoint/resume artifacts for a single code version, not an archival
format, so there is no migration machinery to get wrong.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

#: Bump on any change to a participating ``snapshot_state()`` payload shape.
SNAPSHOT_VERSION = 1

_FORMAT_MARKER = "repro-snapshot"


class SnapshotError(Exception):
    """Base class for snapshot save/load failures."""


class SnapshotCorruptError(SnapshotError):
    """The file does not decode, or its content fingerprint disagrees."""


class SnapshotVersionError(SnapshotError):
    """The file's format version is not the one this code writes."""


# -- canonical encoding --------------------------------------------------------


def _encode(value: Any, out: List[bytes]) -> None:
    """Append a type-tagged, unambiguous encoding of ``value`` to ``out``.

    Only snapshot-legal primitives are accepted; anything else raises
    ``TypeError`` *at save time*, which is what keeps object graphs out of
    the format. ``bool`` is checked before ``int`` (it is a subclass), and
    floats go through ``repr`` (shortest round-trip text, stable across
    supported CPython versions).
    """
    if value is None:
        out.append(b"N;")
    elif value is True:
        out.append(b"T;")
    elif value is False:
        out.append(b"F;")
    elif isinstance(value, int):
        out.append(b"I%d;" % value)
    elif isinstance(value, float):
        out.append(b"D" + repr(value).encode("ascii") + b";")
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"S%d:" % len(data))
        out.append(data)
    elif isinstance(value, bytes):
        out.append(b"B%d:" % len(value))
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(b"L%d[" % len(value) if isinstance(value, list) else b"U%d[" % len(value))
        for item in value:
            _encode(item, out)
        out.append(b"]")
    elif isinstance(value, dict):
        pairs = []
        for key, val in value.items():
            key_parts: List[bytes] = []
            _encode(key, key_parts)
            val_parts: List[bytes] = []
            _encode(val, val_parts)
            pairs.append((b"".join(key_parts), b"".join(val_parts)))
        pairs.sort()
        out.append(b"M%d{" % len(pairs))
        for key_bytes, val_bytes in pairs:
            out.append(key_bytes)
            out.append(val_bytes)
        out.append(b"}")
    else:
        raise TypeError(
            f"snapshot state must be primitive; got {type(value).__name__!r}"
        )


def canonical_fingerprint(value: Any) -> str:
    """sha256 hex digest of the canonical encoding of ``value``."""
    parts: List[bytes] = []
    _encode(value, parts)
    return hashlib.sha256(b"".join(parts)).hexdigest()


def dict_items(mapping: Dict[Any, Any]) -> List[Tuple[Any, Any]]:
    """Snapshot an order-sensitive mapping as an insertion-ordered item list."""
    return [(key, value) for key, value in mapping.items()]


def items_dict(items: Iterable[Iterable[Any]]) -> Dict[Any, Any]:
    """Rebuild a mapping from :func:`dict_items` output, preserving order."""
    rebuilt: Dict[Any, Any] = {}
    for key, value in items:
        rebuilt[key] = value
    return rebuilt


# -- the snapshot object -------------------------------------------------------


@dataclass
class Snapshot:
    """One versioned, fingerprinted state capture.

    ``kind`` names the producer (e.g. ``"chaos-runner"``), ``meta`` carries
    the constructor arguments needed to rebuild it, and ``state`` is the
    primitive tree from ``snapshot_state()``.
    """

    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    def fingerprint(self) -> str:
        """Content fingerprint over format marker, version, kind, meta, state."""
        return canonical_fingerprint(
            [_FORMAT_MARKER, self.version, self.kind, self.meta, self.state]
        )


def save_snapshot(snapshot: Snapshot, path: pathlib.Path) -> str:
    """Atomically write ``snapshot`` (tmp + rename); returns the fingerprint.

    The fingerprint is computed over the *state being written* and stored in
    the file, so :func:`load_snapshot` can detect any post-write corruption.
    """
    path = pathlib.Path(path)
    fingerprint = snapshot.fingerprint()  # also validates primitives-only
    payload = {
        "format": _FORMAT_MARKER,
        "version": snapshot.version,
        "kind": snapshot.kind,
        "meta": snapshot.meta,
        "state": snapshot.state,
        "fingerprint": fingerprint,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return fingerprint


def load_snapshot(path: pathlib.Path, expect_kind: str = "") -> Snapshot:
    """Load and verify a snapshot file.

    Raises :class:`SnapshotCorruptError` when the bytes do not decode or the
    recomputed content fingerprint disagrees with the stored one, and
    :class:`SnapshotVersionError` for any other format version.
    """
    path = pathlib.Path(path)
    raw = path.read_bytes()
    try:
        payload = pickle.loads(raw)
    except Exception as exc:  # repro: allow[sec-broad-except] -- corrupt pickle bytes raise arbitrary decode errors; mapped to the structured SnapshotCorruptError
        raise SnapshotCorruptError(f"{path}: undecodable snapshot: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT_MARKER:
        raise SnapshotCorruptError(f"{path}: not a repro snapshot file")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{path}: snapshot version {version!r} != {SNAPSHOT_VERSION}"
        )
    snapshot = Snapshot(
        kind=payload.get("kind", ""),
        meta=payload.get("meta", {}),
        state=payload.get("state", {}),
        version=version,
    )
    if expect_kind and snapshot.kind != expect_kind:
        raise SnapshotCorruptError(
            f"{path}: snapshot kind {snapshot.kind!r}, expected {expect_kind!r}"
        )
    try:
        recomputed = snapshot.fingerprint()
    except TypeError as exc:
        raise SnapshotCorruptError(f"{path}: non-primitive state: {exc}") from exc
    stored = payload.get("fingerprint")
    if recomputed != stored:
        raise SnapshotCorruptError(
            f"{path}: content fingerprint mismatch "
            f"(stored {str(stored)[:12]}…, recomputed {recomputed[:12]}…)"
        )
    return snapshot


__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "canonical_fingerprint",
    "dict_items",
    "items_dict",
    "load_snapshot",
    "save_snapshot",
]
