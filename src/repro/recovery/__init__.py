"""Checkpoint/restore, crash-point differential oracle, invariant monitors.

The recovery subsystem makes the simulated SSD stack *restartable* and
*self-checking*:

- :mod:`repro.recovery.snapshot` — versioned, content-fingerprinted
  snapshots over a primitive state tree (components expose
  ``snapshot_state()``/``restore_state()``);
- :mod:`repro.recovery.checkpoint` — whole-stack checkpoints of a chaos
  campaign (flash, FTL, enclaves, injector, PRNG in one snapshot);
- :mod:`repro.recovery.oracle` — the crash-point differential oracle:
  kill-and-restore at swept points must reproduce the uninterrupted run's
  fingerprint byte for byte;
- :mod:`repro.recovery.monitors` — runtime invariant monitors (Merkle-root
  consistency, mapping bijectivity, counter and sim-clock monotonicity)
  that are free when disabled and loud when armed;
- :mod:`repro.recovery.soak` — resumable soak campaigns that survive host
  crashes by restarting from their newest valid snapshot.

See docs/RECOVERY.md for the design and the snapshot format contract.
"""

from repro.recovery.checkpoint import (
    CHAOS_SNAPSHOT_KIND,
    restore_chaos_runner,
    snapshot_chaos_runner,
)
from repro.recovery.monitors import InvariantViolation, MonitorSuite
from repro.recovery.oracle import OracleReport, crash_points, run_oracle
from repro.recovery.snapshot import (
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    canonical_fingerprint,
    load_snapshot,
    save_snapshot,
)
from repro.recovery.soak import (
    SOAK_KILLED_EXIT,
    SoakResult,
    find_latest_snapshot,
    recovery_csv_rows,
    run_soak,
    run_soak_campaigns,
)
from repro.sim.stats import RecoveryStats

__all__ = [
    "CHAOS_SNAPSHOT_KIND",
    "InvariantViolation",
    "MonitorSuite",
    "OracleReport",
    "RecoveryStats",
    "SNAPSHOT_VERSION",
    "SOAK_KILLED_EXIT",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "SoakResult",
    "canonical_fingerprint",
    "crash_points",
    "find_latest_snapshot",
    "load_snapshot",
    "recovery_csv_rows",
    "restore_chaos_runner",
    "run_oracle",
    "run_soak",
    "run_soak_campaigns",
    "save_snapshot",
    "snapshot_chaos_runner",
]
