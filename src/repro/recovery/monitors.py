"""Runtime invariant monitors: pluggable, zero-cost when disabled.

Components carry an ``invariant_monitor`` attribute that defaults to
``None``; their hot paths guard every check behind ``if monitor is not
None``, so a disabled monitor costs one attribute load. Arming a
:class:`MonitorSuite` turns the guards into live checks that raise a
structured :class:`InvariantViolation` the moment simulated state stops
making sense — instead of letting corruption propagate into a fingerprint
mismatch thousands of events later.

The monitor catalog (see docs/RECOVERY.md):

- **sim-clock** — the discrete-event clock never moves backwards
  (:meth:`MonitorSuite.after_engine_event`, hooked into the engine's run
  loop);
- **merkle-root** — after every functional-MEE commit, the page's counter
  block still verifies against the on-chip Merkle root
  (:meth:`MonitorSuite.after_mee_commit`);
- **counter-monotonic** — encryption counters only move forward, checked
  against a shadow copy per (enclave, page, line) on both the functional
  and the timing MEE;
- **ftl-mapping** — mapping bijectivity, media state, OOB agreement and
  valid-page accounting after every GC pass, wear-level migration and
  power-loss rebuild (:meth:`MonitorSuite.after_ftl_step`, delegating to
  :meth:`repro.ftl.ftl.Ftl.check_mapping_integrity`).

Checks never mutate fingerprint-visible state, so an armed run produces
the same :class:`~repro.faults.chaos.ChaosReport` fingerprint as a
disabled one — the crash-point oracle relies on that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import IntegrityError
from repro.sim.stats import RecoveryStats


class InvariantViolation(Exception):
    """A runtime invariant monitor caught the simulation lying to itself."""

    def __init__(self, monitor: str, component: str, detail: str) -> None:
        super().__init__(f"invariant[{monitor}] violated by {component}: {detail}")
        self.monitor = monitor
        self.component = component
        self.detail = detail


class MonitorSuite:
    """The full monitor set, sharing one :class:`RecoveryStats` ledger.

    Shadow state (last-seen counters, last clock reading) is rebuilt from
    observations, never serialized: after a restore the first check per key
    only primes the shadow. That skip is deterministic — it happens at the
    same operation on every resumed run — and shadow priming touches nothing
    a report fingerprints.

    With ``raise_on_violation=False`` the suite *collects* instead of
    raising: each violation is appended to :attr:`records` (and counted in
    ``stats.violations``) while the run continues. That is the mode the
    chaos CLI's ``--monitors`` flag and the search objectives use — the run
    finishes, violations become structured counters, and because records
    live on the suite rather than the report, an armed run keeps the exact
    fingerprint of a disabled one.
    """

    def __init__(
        self,
        stats: Optional[RecoveryStats] = None,
        raise_on_violation: bool = True,
    ) -> None:
        self.stats = stats if stats is not None else RecoveryStats()
        self.raise_on_violation = raise_on_violation
        self.records: List[Dict[str, str]] = []
        self._counter_shadow: Dict[Tuple[str, int, int], Tuple[int, int]] = {}
        self._last_now: Optional[float] = None

    # -- attachment ------------------------------------------------------------

    def attach_engine(self, engine: Any) -> None:
        """Arm the sim-clock monitor (bound by ``Engine.run`` at entry)."""
        engine.invariant_monitor = self

    def attach_ftl(self, ftl: Any) -> None:
        """Arm the mapping-integrity monitor on an FTL."""
        ftl.invariant_monitor = self

    def attach_mee(self, mee: Any, label: str) -> None:
        """Arm the Merkle/counter monitors on an MEE (functional or timing).

        Re-attaching under the same label — e.g. after a tenant restart
        provisions a fresh enclave generation — resets that label's counter
        shadows, because the new MEE legitimately starts counting from zero.
        """
        mee.invariant_monitor = self
        mee.invariant_label = label
        for key in [k for k in self._counter_shadow if k[0] == label]:
            del self._counter_shadow[key]

    def reset_shadows(self) -> None:
        """Forget all shadow state (call after restoring from a snapshot)."""
        self._counter_shadow.clear()
        self._last_now = None

    # -- engine ----------------------------------------------------------------

    def after_engine_event(self, now: float) -> None:
        """Sim-clock monotonicity, checked after every executed event."""
        self.stats.invariant_checks += 1
        last = self._last_now
        if last is not None and now < last:
            self._fail("sim-clock", "engine", f"clock moved backwards: {now!r} < {last!r}")
        self._last_now = now

    # -- FTL -------------------------------------------------------------------

    def after_ftl_step(self, ftl: Any, where: str) -> None:
        """Run the full mapping-integrity check after a structural FTL step."""
        self.note_ftl_check(ftl, ftl.check_mapping_integrity(where))

    def note_ftl_check(self, ftl: Any, problems: List[str]) -> None:
        """Account for a mapping check the FTL already ran itself."""
        self.stats.invariant_checks += 1
        if problems:
            shown = "; ".join(problems[:3])
            more = f" (+{len(problems) - 3} more)" if len(problems) > 3 else ""
            self._fail("ftl-mapping", "ftl", shown + more)

    # -- MEE -------------------------------------------------------------------

    def after_mee_commit(self, mee: Any, page: int, line: int) -> None:
        """Functional MEE: root consistency + counter monotonicity per commit."""
        label = getattr(mee, "invariant_label", "mee")
        self.stats.invariant_checks += 1
        try:
            mee.verify_counter_block(page)
        except IntegrityError as exc:
            self._fail("merkle-root", label, str(exc))
        self._check_counter(label, page, line, mee.counter_pair(page, line))

    def after_timing_mee_write(self, mee: Any, page: int, line: int) -> None:
        """Timing MEE: (major, minor) counters only move forward."""
        label = getattr(mee, "invariant_label", "mee-timing")
        self.stats.invariant_checks += 1
        self._check_counter(label, page, line, mee.counter_of(page, line, readonly=False))

    def _check_counter(
        self, label: str, page: int, line: int, pair: Tuple[int, int]
    ) -> None:
        key = (label, page, line)
        prev = self._counter_shadow.get(key)
        if prev is not None and pair <= prev:
            self._fail(
                "counter-monotonic",
                label,
                f"page={page} line={line}: counter {pair} did not advance past {prev}",
            )
        self._counter_shadow[key] = pair

    # -- internals -------------------------------------------------------------

    def _fail(self, monitor: str, component: str, detail: str) -> None:
        self.stats.violations += 1
        if self.raise_on_violation:
            raise InvariantViolation(monitor, component, detail)
        self.records.append(
            {"monitor": monitor, "component": component, "detail": detail}
        )

    def violation_counts(self) -> Dict[str, int]:
        """Collected violations bucketed per monitor (collect mode only)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            name = record["monitor"]
            counts[name] = counts.get(name, 0) + 1
        return counts


__all__ = ["InvariantViolation", "MonitorSuite"]
