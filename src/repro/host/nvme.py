"""NVMe host interface model: queues, doorbells, interrupts.

The host talks to the SSD through NVMe submission/completion queue pairs;
IceClave's result path (Figure 9 step ⑧) raises an NVMe interrupt and DMAs
results to host memory. This model captures the per-command costs that
bound the host baseline's small-transfer behaviour:

- submission: doorbell write (MMIO) + controller fetch of the 64 B command
- data transfer over PCIe
- completion: 16 B CQ entry + MSI-X interrupt + host handler

Commands on different queues proceed concurrently up to the configured
queue depth; the model exposes both per-command latency and sustained
throughput, and is used by tests to sanity-check the PCIe-level numbers
the platform layer assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.host.pcie import PcieLink
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.sim.stats import Histogram

SQ_ENTRY_BYTES = 64
CQ_ENTRY_BYTES = 16


@dataclass(frozen=True)
class NvmeTiming:
    doorbell_write: float = 300e-9  # posted MMIO write
    command_fetch: float = 500e-9  # controller pulls the SQ entry
    interrupt_latency: float = 2e-6  # MSI-X delivery + host ISR entry
    completion_handling: float = 1e-6  # host-side CQ processing


@dataclass
class NvmeCommand:
    opcode: str  # "read" | "write"
    nbytes: int
    submitted_at: float = 0.0
    completed_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class NvmeQueuePair:
    """One submission/completion queue pair with bounded depth."""

    def __init__(
        self,
        engine: Engine,
        link: PcieLink,
        timing: NvmeTiming = NvmeTiming(),
        queue_depth: int = 64,
        device_latency: float = 80e-6,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.engine = engine
        self.link = link
        self.timing = timing
        self.queue_depth = queue_depth
        self.device_latency = device_latency  # media time per command
        self._link_res = Resource(engine, "pcie", servers=1)
        self._in_flight = 0
        self._waiting: List = []
        self.completed: List[NvmeCommand] = []
        self.latency = Histogram("nvme-latency", keep_samples=True)

    def submit(self, opcode: str, nbytes: int, on_done=None) -> NvmeCommand:
        """Submit one command; completion recorded on the command object."""
        if opcode not in ("read", "write"):
            raise ValueError(f"unsupported opcode {opcode}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        command = NvmeCommand(opcode=opcode, nbytes=nbytes, submitted_at=self.engine.now)

        def run_command() -> None:
            t = self.timing
            setup = t.doorbell_write + t.command_fetch
            transfer = self.link.transfer_time(nbytes + SQ_ENTRY_BYTES + CQ_ENTRY_BYTES)

            def media_done() -> None:
                # data moves over the shared link, then the CQ/interrupt path
                def link_done() -> None:
                    self.engine.schedule(
                        t.interrupt_latency + t.completion_handling,
                        lambda: self._complete(command, on_done),
                    )

                self._link_res.acquire(transfer, on_done=link_done)

            self.engine.schedule(setup + self.device_latency, media_done)

        # a free queue slot gates command issue; the slot is held until the
        # completion entry is consumed
        if self._in_flight < self.queue_depth:
            self._in_flight += 1
            run_command()
        else:
            self._waiting.append(run_command)
        return command

    def _complete(self, command: NvmeCommand, on_done) -> None:
        command.completed_at = self.engine.now
        self.completed.append(command)
        self.latency.record(command.latency)
        if self._waiting:
            self._waiting.pop(0)()
        else:
            self._in_flight -= 1
        if on_done is not None:
            on_done(command)

    def run(self) -> float:
        return self.engine.run()

    def throughput_bytes_per_s(self) -> float:
        """Sustained data throughput over the finished run."""
        if not self.completed or self.engine.now <= 0:
            return 0.0
        total = sum(c.nbytes for c in self.completed)
        return total / self.engine.now
