"""NVMe host interface model: queues, doorbells, interrupts.

The host talks to the SSD through NVMe submission/completion queue pairs;
IceClave's result path (Figure 9 step ⑧) raises an NVMe interrupt and DMAs
results to host memory. This model captures the per-command costs that
bound the host baseline's small-transfer behaviour:

- submission: doorbell write (MMIO) + controller fetch of the 64 B command
- data transfer over PCIe
- completion: 16 B CQ entry + MSI-X interrupt + host handler

Commands on different queues proceed concurrently up to the configured
queue depth; the model exposes both per-command latency and sustained
throughput, and is used by tests to sanity-check the PCIe-level numbers
the platform layer assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, List, Optional

from repro.flash.chip import DieFailureError
from repro.flash.ecc import EccUncorrectableError
from repro.ftl.ftl import UncorrectableReadError, WritesSuspendedError
from repro.ftl.mapping import AccessDeniedError
from repro.host.pcie import PcieLink
from repro.sim.engine import Engine, Event
from repro.sim.resource import Resource
from repro.sim.slab import Slab
from repro.sim.stats import Histogram

SQ_ENTRY_BYTES = 64
CQ_ENTRY_BYTES = 16


class NvmeStatus(IntEnum):
    """Completion status codes (NVMe-style SCT/SC encodings).

    Media errors use the spec's media/data-integrity status code type
    (SCT=2h): 81h Unrecovered Read Error, 80h Write Fault, 86h Access
    Denied. 06h is the generic Internal Error; 07h Command Abort Requested
    is what a sim-time timeout completes a hung command with; 21h Command
    Interrupted is the spec's "transient, retry me" status and is how
    admission control and degraded-mode write refusal surface.
    """

    SUCCESS = 0x000
    INTERNAL_ERROR = 0x006
    COMMAND_ABORTED = 0x007
    COMMAND_INTERRUPTED = 0x021
    WRITE_FAULT = 0x280
    UNRECOVERED_READ_ERROR = 0x281
    ACCESS_DENIED = 0x286
    LBA_OUT_OF_RANGE = 0x080

    @property
    def is_error(self) -> bool:
        return self is not NvmeStatus.SUCCESS

    @property
    def is_retryable(self) -> bool:
        """Statuses a client may retry without risking data corruption."""
        return self in (
            NvmeStatus.COMMAND_ABORTED,
            NvmeStatus.COMMAND_INTERRUPTED,
        )


def status_for_exception(exc: BaseException) -> NvmeStatus:
    """Map a storage-stack exception onto the NVMe status the host sees.

    Anything the flash→FTL path can legitimately raise at runtime becomes a
    per-command error status instead of crashing the device model; truly
    unexpected exceptions should not be fed through here.
    """
    if isinstance(exc, (EccUncorrectableError, UncorrectableReadError, DieFailureError)):
        return NvmeStatus.UNRECOVERED_READ_ERROR
    if isinstance(exc, AccessDeniedError):
        return NvmeStatus.ACCESS_DENIED
    if isinstance(exc, WritesSuspendedError):
        return NvmeStatus.COMMAND_INTERRUPTED  # degraded mode: retry later
    if isinstance(exc, KeyError):
        return NvmeStatus.LBA_OUT_OF_RANGE  # read of an unmapped LPA
    return NvmeStatus.INTERNAL_ERROR

# device_op exceptions submit() converts into per-command error statuses
DEVICE_OP_ERRORS = (
    EccUncorrectableError,
    UncorrectableReadError,
    DieFailureError,
    AccessDeniedError,
    WritesSuspendedError,
    KeyError,
)


@dataclass(frozen=True)
class NvmeTiming:
    doorbell_write: float = 300e-9  # posted MMIO write
    command_fetch: float = 500e-9  # controller pulls the SQ entry
    interrupt_latency: float = 2e-6  # MSI-X delivery + host ISR entry
    completion_handling: float = 1e-6  # host-side CQ processing


@dataclass
class NvmeCommand:
    opcode: str  # "read" | "write"
    nbytes: int
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    status: NvmeStatus = NvmeStatus.SUCCESS
    timeout_event: Optional[Event] = None  # armed sim-time abort timer

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def failed(self) -> bool:
        return self.status.is_error

    @property
    def timed_out(self) -> bool:
        return self.status is NvmeStatus.COMMAND_ABORTED

    def reinit(self, opcode: str, nbytes: int, submitted_at: float) -> None:
        """Re-initialize a slab-recycled command record in place."""
        self.opcode = opcode
        self.nbytes = nbytes
        self.submitted_at = submitted_at
        self.completed_at = None
        self.status = NvmeStatus.SUCCESS
        self.timeout_event = None


class NvmeQueuePair:
    """One submission/completion queue pair with bounded depth."""

    def __init__(
        self,
        engine: Engine,
        link: PcieLink,
        timing: NvmeTiming = NvmeTiming(),
        queue_depth: int = 64,
        device_latency: float = 80e-6,
        admission=None,  # duck-typed AdmissionController: admit(now, queued)
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.engine = engine
        self.link = link
        self.timing = timing
        self.queue_depth = queue_depth
        self.device_latency = device_latency  # media time per command
        self.admission = admission
        self._link_res = Resource(engine, "pcie", servers=1)
        self._in_flight = 0
        self._waiting: List = []  # (command, thunk) pairs awaiting a slot
        self.completed: List[NvmeCommand] = []
        self.latency = Histogram("nvme-latency", keep_samples=True)
        self.error_completions = 0
        self.timeouts = 0
        self.admission_rejections = 0
        # slab-recycled command records: long soak workloads drain the
        # completion list back into the slab instead of allocating a fresh
        # NvmeCommand per I/O. Aggregates survive draining.
        self._command_slab: Slab[NvmeCommand] = Slab(
            lambda: NvmeCommand(opcode="read", nbytes=0), max_size=queue_depth * 4
        )
        self.completed_count = 0
        self.completed_bytes = 0

    def submit(
        self,
        opcode: str,
        nbytes: int,
        on_done=None,
        device_op: Optional[Callable[[], None]] = None,
        device_latency: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> NvmeCommand:
        """Submit one command; completion recorded on the command object.

        ``device_op`` models the storage-side work behind the command (an
        FTL read, say). If it raises one of the storage stack's runtime
        errors — uncorrectable ECC, a failed die, a permission denial — the
        command completes with the corresponding NVMe error status rather
        than crashing the simulation; the host sees a failed CQ entry,
        exactly as a real controller reports media errors.

        ``device_latency`` overrides the queue pair's default media time for
        this command (a fault-injected die can be slow — or hung, via
        ``math.inf``). ``timeout`` arms a sim-time abort: if the command has
        not completed after that long it completes with COMMAND_ABORTED and
        releases its queue slot, so a hung die cannot wedge the event loop.

        If an admission controller is attached and refuses the command, it
        completes immediately with the retryable COMMAND_INTERRUPTED status
        instead of queueing unboundedly.
        """
        if opcode not in ("read", "write"):
            raise ValueError(f"unsupported opcode {opcode}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        command = self._command_slab.acquire()
        command.reinit(opcode, nbytes, self.engine.now)

        if self.admission is not None and not self.admission.admit(
            self.engine.now, self._in_flight + len(self._waiting)
        ):
            # shed at the doorbell: no slot, no device work, retryable status
            command.status = NvmeStatus.COMMAND_INTERRUPTED
            self.admission_rejections += 1
            self._finalize(command, on_done)
            return command

        media_time = self.device_latency if device_latency is None else device_latency

        def run_command() -> None:
            t = self.timing
            setup = t.doorbell_write + t.command_fetch
            transfer = self.link.transfer_time(nbytes + SQ_ENTRY_BYTES + CQ_ENTRY_BYTES)

            def media_done() -> None:
                if command.completed_at is not None:
                    return  # timed out while the die was grinding
                if device_op is not None:
                    try:
                        device_op()
                    except DEVICE_OP_ERRORS as exc:
                        command.status = status_for_exception(exc)
                        self.error_completions += 1
                # data moves over the shared link, then the CQ/interrupt path
                def link_done() -> None:
                    self.engine.schedule(
                        t.interrupt_latency + t.completion_handling,
                        lambda: self._complete(command, on_done),
                    )

                self._link_res.acquire(transfer, on_done=link_done)

            self.engine.schedule(setup + media_time, media_done)

        if timeout is not None:
            command.timeout_event = self.engine.schedule(
                timeout, lambda: self._abort(command, on_done), name="nvme-timeout"
            )

        # a free queue slot gates command issue; the slot is held until the
        # completion entry is consumed
        if self._in_flight < self.queue_depth:
            self._in_flight += 1
            run_command()
        else:
            self._waiting.append((command, run_command))
        return command

    def _complete(self, command: NvmeCommand, on_done) -> None:
        if command.completed_at is not None:
            return  # already aborted by its timeout; slot was released then
        self._release_slot()
        self._finalize(command, on_done)

    def _abort(self, command: NvmeCommand, on_done) -> None:
        """Sim-time timeout: complete a hung command with COMMAND_ABORTED."""
        if command.completed_at is not None:
            return  # completed just before the timer fired
        command.status = NvmeStatus.COMMAND_ABORTED
        self.timeouts += 1
        for idx, (waiting_cmd, _thunk) in enumerate(self._waiting):
            if waiting_cmd is command:
                # never issued: drop it from the wait list, no slot to free
                del self._waiting[idx]
                break
        else:
            self._release_slot()
        self._finalize(command, on_done)

    def _release_slot(self) -> None:
        if self._waiting:
            _command, thunk = self._waiting.pop(0)
            thunk()
        else:
            self._in_flight -= 1

    def _finalize(self, command: NvmeCommand, on_done) -> None:
        command.completed_at = self.engine.now
        if command.timeout_event is not None:
            # nobody holds the handle past this point: recycle it
            self.engine.cancel(command.timeout_event, recycle=True)
            command.timeout_event = None
        self.completed.append(command)
        self.completed_count += 1
        self.completed_bytes += command.nbytes
        self.latency.record(command.latency)
        if on_done is not None:
            on_done(command)

    def drain_completed(self) -> int:
        """Recycle finished command records back into the slab.

        Long soak workloads call this between windows so the completion
        list (and allocation rate) stays bounded. The aggregate counters —
        ``completed_count``, ``completed_bytes``, the latency histogram and
        the error/timeout tallies — are accumulated at completion time and
        are unaffected. Returns the number of records recycled.
        """
        drained = len(self.completed)
        for command in self.completed:
            self._command_slab.release(command)
        self.completed.clear()
        return drained

    @property
    def slab_stats(self) -> dict:
        return self._command_slab.stats()

    def run(self) -> float:
        return self.engine.run()

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Queue-pair state at a quiescent point (no in-flight/waiting work).

        In-flight and waiting commands hold completion closures that cannot
        be serialized, so — like :meth:`repro.sim.engine.Engine.snapshot_state`
        — checkpointing requires a drained queue. Completed commands are
        captured as primitive tuples (their timeout timers are already
        cancelled by then).
        """
        if self._in_flight or self._waiting:
            raise RuntimeError(
                f"cannot snapshot a queue pair with {self._in_flight} in-flight "
                f"and {len(self._waiting)} waiting commands; drain first"
            )
        return {
            "completed": [
                (c.opcode, c.nbytes, c.submitted_at, c.completed_at, int(c.status))
                for c in self.completed
            ],
            "latency": self.latency.snapshot_state(),
            "error_completions": self.error_completions,
            "timeouts": self.timeouts,
            "admission_rejections": self.admission_rejections,
            "completed_count": self.completed_count,
            "completed_bytes": self.completed_bytes,
        }

    def restore_state(self, state: dict) -> None:
        if self._in_flight or self._waiting:
            raise RuntimeError("cannot restore into a queue pair with live commands")
        self.completed = [
            NvmeCommand(
                opcode=opcode,
                nbytes=nbytes,
                submitted_at=submitted_at,
                completed_at=completed_at,
                status=NvmeStatus(status),
            )
            for opcode, nbytes, submitted_at, completed_at, status in state["completed"]
        ]
        self.latency.restore_state(state["latency"])
        self.error_completions = state["error_completions"]
        self.timeouts = state["timeouts"]
        self.admission_rejections = state["admission_rejections"]
        # older snapshots predate the drain-aware aggregates: derive them
        self.completed_count = state.get("completed_count", len(self.completed))
        self.completed_bytes = state.get(
            "completed_bytes", sum(c.nbytes for c in self.completed)
        )

    def throughput_bytes_per_s(self) -> float:
        """Sustained data throughput over the finished run.

        Counts every completion since construction — including records
        already recycled by :meth:`drain_completed`.
        """
        if self.completed_count == 0 or self.engine.now <= 0:
            return 0.0
        return self.completed_bytes / self.engine.now
