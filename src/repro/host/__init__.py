"""Host-side models: PCIe link, SGX cost model, and the IceClave library."""

from repro.host.pcie import PcieLink
from repro.host.sgx import SgxModel
from repro.host.library import IceClaveLibrary, OffloadHandle

__all__ = ["PcieLink", "SgxModel", "IceClaveLibrary", "OffloadHandle"]
