"""IceClave host library: the user-facing half of Table 2.

``OffloadCode`` ships a pre-compiled program plus the LPAs of its data to
the SSD over the (platform-provided) secure channel; ``GetResult``
retrieves results after the DMA-completion interrupt. The library
deliberately exposes nothing else — a small trusted computing base (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.runtime import IceClaveRuntime
from repro.core.tee import Tee, TeeState


@dataclass
class OffloadHandle:
    """Host-side view of one offloaded task."""

    tid: int
    tee: Tee
    done: bool = False
    result: Optional[bytes] = None


class ServiceDegradedError(RuntimeError):
    """The SSD refused an offload because it is running degraded.

    Carries the device's current service mode so the tenant can distinguish
    "retry later" (DEGRADED_READONLY — committed data is still readable and
    integrity-verified) from "stop offloading" (FAILSAFE).
    """

    def __init__(self, mode: str, what: str) -> None:
        super().__init__(f"{what} refused: device service mode is {mode}")
        self.mode = mode


class IceClaveLibrary:
    """Host ↔ SSD offloading interface (OffloadCode / GetResult).

    ``degradation`` is an optional (duck-typed) degradation ladder; when the
    device reports anything below NORMAL, new offloads are refused with
    :class:`ServiceDegradedError` and tenants can poll :meth:`service_mode`
    — degraded-but-correct service is a first-class mode, not an error.
    """

    def __init__(self, runtime: IceClaveRuntime, degradation=None) -> None:
        self._runtime = runtime
        self._tasks: Dict[int, OffloadHandle] = {}
        self._next_tid = 1
        self._degradation = degradation

    def service_mode(self) -> str:
        """The device's current service mode, as the tenant sees it."""
        if self._degradation is None:
            return "normal"
        mode = self._degradation.mode
        return getattr(mode, "value", str(mode))

    def offload_code(
        self,
        binary: bytes,
        lpas: List[int],
        args: Any = None,
        tid: Optional[int] = None,
        decryption_key: Optional[bytes] = None,
    ) -> OffloadHandle:
        """OffloadCode(bin, lpa, args, tid): create an in-storage TEE.

        Returns a handle whose ``tid`` indexes the offloaded procedure.
        """
        if self._degradation is not None and not self._degradation.allows_offload():
            raise ServiceDegradedError(self.service_mode(), "OffloadCode")
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
        if tid in self._tasks:
            raise ValueError(f"task id {tid} already in use")
        tee = self._runtime.create_tee(
            binary, lpas=lpas, args=args, tid=tid, decryption_key=decryption_key
        )
        handle = OffloadHandle(tid=tid, tee=tee)
        self._tasks[tid] = handle
        return handle

    def execute(self, handle: OffloadHandle, program: Callable[[Tee], bytes]) -> None:
        """Run the offloaded program inside its TEE (simulation convenience).

        ``program`` receives the TEE and returns result bytes; exceptions
        are converted into ThrowOutTEE aborts, mirroring §4.5.
        """
        tee = handle.tee
        if not tee.is_live():
            raise RuntimeError(f"TEE {tee.eid} is not runnable ({tee.state.value})")
        tee.state = TeeState.RUNNING
        try:
            tee.result = program(tee)
            tee.state = TeeState.COMPLETED
        # repro: allow[sec-broad-except] -- §4.5 case 3: any program exception must abort the TEE
        except Exception as exc:
            self._runtime.throw_out_tee(tee, f"in-storage program exception: {exc}")
            raise

    def get_result(self, tid: int) -> bytes:
        """GetResult(tid): fetch results and tear the TEE down."""
        try:
            handle = self._tasks[tid]
        except KeyError:
            raise KeyError(f"unknown task id {tid}") from None
        tee = handle.tee
        if tee.state is TeeState.ABORTED:
            reason = tee.exception.reason if tee.exception else "unknown"
            raise RuntimeError(f"task {tid} was aborted: {reason}")
        if tee.state is not TeeState.COMPLETED:
            raise RuntimeError(f"task {tid} has not completed ({tee.state.value})")
        result = self._runtime.terminate_tee(tee)
        handle.done = True
        handle.result = result
        del self._tasks[tid]
        return result if result is not None else b""

    def pending_tasks(self) -> List[int]:
        return sorted(self._tasks)
