"""Behavioral Intel SGX cost model for the Host+SGX baseline (§6.1).

The paper measures that running the queries inside SGX enclaves roughly
doubles computing time (103% extra on average, §6.2). The inflation has
three sources, all represented here:

- the enclave MEE encrypts/integrity-checks every cache-line miss;
- crossing the enclave boundary (ECALL/OCALL) costs ~8,000+ cycles, paid
  per I/O batch when streaming data in;
- data beyond the ~93 MB usable EPC must be paged (EWB/ELDU), costing
  tens of microseconds per 4 KB page.
"""

from __future__ import annotations

from dataclasses import dataclass

MIB = 1024 * 1024


@dataclass(frozen=True)
class SgxModel:
    epc_bytes: int = 93 * MIB  # usable EPC of v1 SGX hardware
    ecall_cycles: int = 8_000
    paging_time_per_page: float = 8e-6  # EWB + ELDU round trip
    mee_compute_inflation: float = 1.85  # MEE slowdown on memory-bound work
    io_batch_bytes: int = 4 * MIB  # streaming granularity into the enclave
    page_bytes: int = 4096

    def compute_time(
        self,
        base_compute_time: float,
        streamed_bytes: int,
        working_set_bytes: int,
        cpu_frequency_hz: float,
    ) -> float:
        """Total enclave compute time for work that takes ``base_compute_time``
        outside the enclave while streaming ``streamed_bytes`` through it."""
        if base_compute_time < 0 or streamed_bytes < 0:
            raise ValueError("times and sizes must be non-negative")
        inflated = base_compute_time * self.mee_compute_inflation
        ecalls = max(1, streamed_bytes // self.io_batch_bytes)
        transition_time = ecalls * self.ecall_cycles / cpu_frequency_hz
        paging_time = 0.0
        if working_set_bytes > self.epc_bytes:
            overflow = working_set_bytes - self.epc_bytes
            paging_time = (overflow // self.page_bytes) * self.paging_time_per_page
        return inflated + transition_time + paging_time

    def overhead_factor(self, base: float, total: float) -> float:
        """Extra computing time as a fraction (paper: ~1.03 avg)."""
        return (total - base) / base if base > 0 else 0.0
