"""PCIe link model: the host↔SSD bottleneck in-storage computing avoids.

The Intel DC P4500 of §6.1 is a PCIe 3.1 x4 device: ~3.94 GB/s raw lane
bandwidth. The *effective* throughput a host application sees is lower —
NVMe/protocol overhead plus file-system and buffer management on the host
data path. ``efficiency`` captures that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9

# per-lane usable bandwidth after 128b/130b encoding, by PCIe generation
_LANE_GBPS = {1: 0.25, 2: 0.5, 3: 0.985, 4: 1.969, 5: 3.938}


@dataclass(frozen=True)
class PcieLink:
    generation: int = 3
    lanes: int = 4
    efficiency: float = 0.47  # protocol + host data-path overhead

    def __post_init__(self) -> None:
        if self.generation not in _LANE_GBPS:
            raise ValueError(f"unknown PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")

    @property
    def raw_bandwidth(self) -> float:
        """Bytes/second before protocol overhead."""
        return _LANE_GBPS[self.generation] * self.lanes * GB

    @property
    def effective_bandwidth(self) -> float:
        """Bytes/second an application-level sequential read achieves."""
        return self.raw_bandwidth * self.efficiency

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.effective_bandwidth
