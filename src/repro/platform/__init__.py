"""Execution platforms: Host, Host+SGX, ISC, and IceClave (§6.1).

Each platform takes a :class:`~repro.workloads.base.WorkloadProfile`,
scales it to the configured dataset size, and produces a
:class:`~repro.platform.metrics.RunResult` with the Figure 11 breakdown
(data load, compute, security overheads).
"""

from repro.platform.config import PlatformConfig
from repro.platform.metrics import RunResult
from repro.platform.schemes import (
    HostPlatform,
    HostSgxPlatform,
    IceClavePlatform,
    IscPlatform,
    SCHEMES,
    make_platform,
)
from repro.platform.multitenant import MultiTenantIceClave

__all__ = [
    "PlatformConfig",
    "RunResult",
    "HostPlatform",
    "HostSgxPlatform",
    "IscPlatform",
    "IceClavePlatform",
    "SCHEMES",
    "make_platform",
    "MultiTenantIceClave",
]
