"""Energy estimation for the execution schemes.

The paper motivates the stream cipher partly by "low performance overhead
and energy consumption" (§1) and reports minimal energy overhead for the
SSD controller (§6). This module composes per-operation energy figures —
flash reads/programs, DRAM accesses, PCIe transfer, core compute, cipher
and MEE work — into per-run estimates so energy comparisons across schemes
can be made alongside the timing ones.

Per-op constants are first-order figures from device datasheets and the
architecture literature; as everywhere in this reproduction, the point is
the relative shape (ISC moves less data so it burns less link/host energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.area import CipherEngineArea
from repro.platform.config import PlatformConfig
from repro.platform.metrics import RunResult
from repro.workloads.base import WorkloadProfile

PAGE_BYTES = 4096
LINE_BYTES = 64


@dataclass(frozen=True)
class EnergyConstants:
    """Per-operation energy in joules."""

    flash_read_page: float = 6e-6  # NAND array read + transfer, per 4 KB
    flash_program_page: float = 25e-6
    dram_access_line: float = 15e-9  # DDR3 64 B access incl. IO
    pcie_per_byte: float = 4e-9  # link + host DMA path
    host_core_watts: float = 22.0  # one i7 core under load
    isc_core_watts: float = 1.2  # one Cortex-A72 in an SSD controller
    mee_per_access: float = 2e-9  # AES + MAC engines per protected access
    sgx_compute_multiplier: float = 1.25


class EnergyModel:
    """Estimate energy for a (profile, RunResult) pair."""

    def __init__(
        self,
        config: PlatformConfig,
        constants: EnergyConstants = EnergyConstants(),
    ) -> None:
        self.config = config
        self.constants = constants
        self._cipher = CipherEngineArea(channels=config.channels)

    def _flash_energy(self, input_bytes: float) -> float:
        pages = input_bytes / PAGE_BYTES
        return pages * self.constants.flash_read_page

    def _dram_energy(self, profile: WorkloadProfile) -> float:
        return profile.dram_accesses * self.constants.dram_access_line

    def estimate(self, profile: WorkloadProfile, result: RunResult) -> Dict[str, float]:
        """Joules by component for one run. Keys vary by scheme."""
        p = profile.scaled(self.config.dataset_bytes)
        c = self.constants
        out: Dict[str, float] = {
            "flash": self._flash_energy(p.input_bytes),
            "dram": self._dram_energy(p),
        }
        compute_time = result.components.get("compute", 0.0)
        if result.scheme.startswith("host"):
            out["pcie"] = p.input_bytes * c.pcie_per_byte
            watts = c.host_core_watts * self.config.host_cores
            if result.scheme == "host+sgx":
                watts *= c.sgx_compute_multiplier
            out["cpu"] = compute_time * watts
        else:
            out["pcie"] = p.result_bytes * c.pcie_per_byte  # results only
            out["cpu"] = compute_time * c.isc_core_watts * self.config.isc_cores
            if result.scheme.startswith("iceclave"):
                out["cipher"] = (
                    p.input_bytes / PAGE_BYTES * self._cipher.energy_per_page_pj() * 1e-12
                )
                out["mee"] = p.dram_accesses * c.mee_per_access
        return out

    def total(self, profile: WorkloadProfile, result: RunResult) -> float:
        return sum(self.estimate(profile, result).values())

    def cipher_overhead_fraction(self, profile: WorkloadProfile, result: RunResult) -> float:
        """Cipher energy relative to the whole run (paper: minimal)."""
        parts = self.estimate(profile, result)
        cipher = parts.get("cipher", 0.0)
        total = sum(parts.values())
        return cipher / total if total else 0.0
