"""Run results and comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RunResult:
    """Outcome of running one workload on one platform.

    ``components`` holds the Figure 11 breakdown. Load and compute overlap
    in streaming platforms, so components need not sum to ``total_time``;
    ``exposed()`` gives the stacked view used for plotting.
    """

    workload: str
    scheme: str
    total_time: float
    components: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    # fault-injection/recovery counters (empty for fault-free runs); filled
    # by the chaos harness from sim.stats.ReliabilityStats.as_dict()
    reliability: Dict[str, float] = field(default_factory=dict)

    def record_reliability(self, reliability_stats) -> None:
        """Attach a :class:`~repro.sim.stats.ReliabilityStats` snapshot."""
        self.reliability = {
            k: float(v) for k, v in reliability_stats.as_dict().items()
        }

    @classmethod
    def from_chaos(cls, report) -> "RunResult":
        """Platform-layer view of a :class:`~repro.faults.chaos.ChaosReport`.

        Lives here (not on the report) so the fault harness never imports
        the platform layer; the report is duck-typed.
        """
        result = cls(
            workload=report.workload,
            scheme="chaos",
            total_time=max(report.reliability.get("added_latency_s", 0.0), 1e-12),
            stats={k: float(v) for k, v in report.ftl_counters.items()},
        )
        result.reliability = dict(report.reliability)
        return result

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        if self.total_time <= 0:
            raise ValueError("cannot compare a zero-time run")
        return other.total_time / self.total_time

    def overhead_over(self, other: "RunResult") -> float:
        """Fractional slowdown relative to ``other`` (0.076 = +7.6%)."""
        if other.total_time <= 0:
            raise ValueError("cannot compare against a zero-time run")
        return self.total_time / other.total_time - 1.0

    def exposed(self) -> Dict[str, float]:
        """Stacked breakdown scaled so the parts sum to total_time."""
        parts = {k: v for k, v in self.components.items() if v > 0}
        total = sum(parts.values())
        if total <= 0:
            return {"total": self.total_time}
        return {k: v * self.total_time / total for k, v in parts.items()}


def geometric_mean(values) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    product = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(vals))
