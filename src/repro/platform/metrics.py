"""Run results, comparison helpers, and SLO tracking.

:class:`SloTracker` is the service-level view of a run: request outcomes
and latencies bucketed into fixed sim-time windows, exact percentiles, and
an error budget against stated objectives. It is deliberately clock-free —
callers pass ``Engine.now`` — so two identical runs produce byte-identical
summaries, which is how the resilience CLI proves determinism.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class RunResult:
    """Outcome of running one workload on one platform.

    ``components`` holds the Figure 11 breakdown. Load and compute overlap
    in streaming platforms, so components need not sum to ``total_time``;
    ``exposed()`` gives the stacked view used for plotting.
    """

    workload: str
    scheme: str
    total_time: float
    components: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    # fault-injection/recovery counters (empty for fault-free runs); filled
    # by the chaos harness from sim.stats.ReliabilityStats.as_dict()
    reliability: Dict[str, float] = field(default_factory=dict)
    # checkpoint/restore + invariant-monitor counters (empty unless the run
    # went through repro.recovery); filled from sim.stats.RecoveryStats
    recovery: Dict[str, float] = field(default_factory=dict)

    def record_reliability(self, reliability_stats) -> None:
        """Attach a :class:`~repro.sim.stats.ReliabilityStats` snapshot."""
        self.reliability = {
            k: float(v) for k, v in reliability_stats.as_dict().items()
        }

    def record_recovery(self, recovery_stats) -> None:
        """Attach a :class:`~repro.sim.stats.RecoveryStats` snapshot."""
        self.recovery = {k: float(v) for k, v in recovery_stats.as_dict().items()}

    @classmethod
    def from_chaos(cls, report) -> "RunResult":
        """Platform-layer view of a :class:`~repro.faults.chaos.ChaosReport`.

        Lives here (not on the report) so the fault harness never imports
        the platform layer; the report is duck-typed.
        """
        result = cls(
            workload=report.workload,
            scheme="chaos",
            total_time=max(report.reliability.get("added_latency_s", 0.0), 1e-12),
            stats={k: float(v) for k, v in report.ftl_counters.items()},
        )
        result.reliability = dict(report.reliability)
        return result

    def fingerprint(self) -> str:
        """Stable content hash: equal runs ⇒ equal hex digest.

        Floats are rendered with ``repr`` (shortest round-trip form), so
        serial and parallel executions of the same point hash identically
        only when every value is byte-identical — which is how the perf
        layer proves ``--jobs N`` changes nothing.
        """
        parts = [self.workload, self.scheme, repr(self.total_time)]
        for label, mapping in (
            ("components", self.components),
            ("stats", self.stats),
            ("reliability", self.reliability),
            ("recovery", self.recovery),
        ):
            for key in sorted(mapping):
                parts.append(f"{label}.{key}={mapping[key]!r}")
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        if self.total_time <= 0:
            raise ValueError("cannot compare a zero-time run")
        return other.total_time / self.total_time

    def overhead_over(self, other: "RunResult") -> float:
        """Fractional slowdown relative to ``other`` (0.076 = +7.6%)."""
        if other.total_time <= 0:
            raise ValueError("cannot compare against a zero-time run")
        return self.total_time / other.total_time - 1.0

    def exposed(self) -> Dict[str, float]:
        """Stacked breakdown scaled so the parts sum to total_time."""
        parts = {k: v for k, v in self.components.items() if v > 0}
        total = sum(parts.values())
        if total <= 0:
            return {"total": self.total_time}
        return {k: v * self.total_time / total for k, v in parts.items()}


@dataclass(frozen=True)
class SloObjectives:
    """What the service promises: availability and read-tail targets."""

    availability: float = 0.99  # completed-without-error fraction
    p99_read_s: float = 2e-3  # 99th percentile read latency

    def __post_init__(self) -> None:
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability objective must lie in (0, 1]")
        if self.p99_read_s <= 0:
            raise ValueError("p99 objective must be positive")


class SloTracker:
    """Windowed request-outcome and latency tracking over sim-time.

    ``record(now, kind, latency_s, ok)`` is called once per finished
    request (``kind`` is ``"read"``/``"write"``). Requests are bucketed into
    fixed ``window_s`` sim-time windows for burn-rate inspection; latencies
    are kept exactly so percentiles are exact, and *failed* requests count
    their observed latency too — a timeout is tail latency, not a no-op.
    """

    def __init__(
        self,
        objectives: SloObjectives = SloObjectives(),
        window_s: float = 1e-3,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.objectives = objectives
        self.window_s = window_s
        self.total = 0
        self.failures = 0
        self._by_kind: Dict[str, List[float]] = {}
        self._failures_by_kind: Dict[str, int] = {}
        # window index -> [requests, failures]
        self._windows: Dict[int, List[int]] = {}
        self._sorted_cache: Dict[str, List[float]] = {}

    # -- recording ------------------------------------------------------------

    def record(self, now: float, kind: str, latency_s: float, ok: bool = True) -> None:
        self.total += 1
        self._by_kind.setdefault(kind, []).append(latency_s)
        self._sorted_cache.pop(kind, None)
        window = self._windows.setdefault(int(now / self.window_s), [0, 0])
        window[0] += 1
        if not ok:
            self.failures += 1
            self._failures_by_kind[kind] = self._failures_by_kind.get(kind, 0) + 1
            window[1] += 1

    # -- queries --------------------------------------------------------------

    def availability(self) -> float:
        """Completed-without-error fraction over everything recorded."""
        if self.total == 0:
            return 1.0
        return (self.total - self.failures) / self.total

    def sorted_latencies(self, kind: str) -> List[float]:
        """Sorted latencies for ``kind`` (cached; hedge policies poll this)."""
        if kind not in self._sorted_cache:
            self._sorted_cache[kind] = sorted(self._by_kind.get(kind, []))
        return self._sorted_cache[kind]

    def percentile(self, kind: str, pct: float) -> float:
        """Exact percentile of ``kind`` latencies; 0.0 with no samples."""
        ordered = self.sorted_latencies(kind)
        if not ordered:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        idx = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def error_budget_remaining(self) -> float:
        """Fraction of the availability error budget still unspent.

        1.0 = untouched, 0.0 = exactly spent, negative = burned through.
        """
        if self.total == 0:
            return 1.0
        allowed = (1.0 - self.objectives.availability) * self.total
        if allowed <= 0:
            return 1.0 if self.failures == 0 else float("-inf")
        return (allowed - self.failures) / allowed

    def worst_window(self) -> Tuple[float, int, int]:
        """(start_time_s, requests, failures) of the worst sim-time window."""
        if not self._windows:
            return (0.0, 0, 0)
        idx, (requests, failures) = max(
            self._windows.items(), key=lambda kv: (kv[1][1], kv[1][0], -kv[0])
        )
        return (idx * self.window_s, requests, failures)

    def meets_objectives(self) -> bool:
        return (
            self.availability() >= self.objectives.availability
            and self.percentile("read", 99.0) <= self.objectives.p99_read_s
        )

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Everything recorded so far, as primitives (sorted item lists).

        The sorted-latency cache (``_sorted_cache``) is derived state and is
        deliberately not captured; restore resets it.
        """
        return {
            "total": self.total,
            "failures": self.failures,
            "by_kind": [(k, list(self._by_kind[k])) for k in sorted(self._by_kind)],
            "failures_by_kind": [
                (k, self._failures_by_kind[k]) for k in sorted(self._failures_by_kind)
            ],
            "windows": [(k, list(self._windows[k])) for k in sorted(self._windows)],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.total = state["total"]
        self.failures = state["failures"]
        self._by_kind = {kind: list(vals) for kind, vals in state["by_kind"]}
        self._failures_by_kind = {
            kind: count for kind, count in state["failures_by_kind"]
        }
        self._windows = {idx: list(pair) for idx, pair in state["windows"]}
        self._sorted_cache = {}

    # -- reporting ------------------------------------------------------------

    def summary_lines(self) -> List[str]:
        """Deterministic text summary (equal runs ⇒ byte-equal lines)."""
        lines = [
            f"requests={self.total} failures={self.failures}"
            f" availability={self.availability() * 100:.4f}%",
        ]
        for kind in sorted(self._by_kind):
            failed = self._failures_by_kind.get(kind, 0)
            lines.append(
                f"{kind}: n={len(self._by_kind[kind])} failed={failed}"
                f" p50={self.percentile(kind, 50) * 1e6:.1f}us"
                f" p95={self.percentile(kind, 95) * 1e6:.1f}us"
                f" p99={self.percentile(kind, 99) * 1e6:.1f}us"
            )
        start, requests, failures = self.worst_window()
        lines.append(
            f"error budget remaining: {self.error_budget_remaining() * 100:.1f}%"
            f" (objective {self.objectives.availability * 100:.2f}%)"
        )
        lines.append(
            f"worst {self.window_s * 1e3:.1f}ms window: t={start * 1e3:.1f}ms"
            f" requests={requests} failures={failures}"
        )
        return lines

    def format(self) -> str:
        return "\n".join(self.summary_lines())


@dataclass(frozen=True)
class TenantSlo:
    """One tenant's SLO standing, as the serve-lab report consumes it.

    ``budget_burn`` is the fraction of the availability error budget the
    tenant has consumed: 0.0 = untouched, 1.0 = exactly spent, above 1.0 =
    burned through (it is ``1 - error_budget_remaining`` and can reach
    ``inf`` when the objective allows zero failures but some occurred).
    """

    tenant_id: int
    requests: int
    failures: int
    availability: float
    budget_burn: float
    p99_read_s: float

    def line(self) -> str:
        return (
            f"tenant={self.tenant_id} requests={self.requests}"
            f" failures={self.failures}"
            f" availability={self.availability * 100:.4f}%"
            f" budget_burn={self.budget_burn * 100:.1f}%"
            f" p99_read={self.p99_read_s * 1e6:.1f}us"
        )


class SloBoard:
    """Per-tenant :class:`SloTracker` registry with fleet aggregation.

    A multi-tenant service tracks the SLO per tenant — a fleet-wide 99.9%
    is no comfort to the one tenant burning its whole error budget. The
    board creates trackers on demand, aggregates fleet totals, and answers
    the on-call question directly: which tenants are worst off, ranked by
    error-budget burn. All orderings are deterministic (burn, then failure
    count, then tenant id) so reports fingerprint identically across runs.
    """

    def __init__(
        self,
        objectives: SloObjectives = SloObjectives(),
        window_s: float = 1e-3,
    ) -> None:
        self.objectives = objectives
        self.window_s = window_s
        self._trackers: Dict[int, SloTracker] = {}

    # -- recording ------------------------------------------------------------

    def tracker(self, tenant_id: int) -> SloTracker:
        if tenant_id not in self._trackers:
            self._trackers[tenant_id] = SloTracker(self.objectives, self.window_s)
        return self._trackers[tenant_id]

    def record(
        self, tenant_id: int, now: float, kind: str, latency_s: float, ok: bool = True
    ) -> None:
        self.tracker(tenant_id).record(now, kind, latency_s, ok=ok)

    # -- aggregation ----------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(t.total for t in self._trackers.values())

    @property
    def failures(self) -> int:
        return sum(t.failures for t in self._trackers.values())

    def availability(self) -> float:
        total = self.total
        if total == 0:
            return 1.0
        return (total - self.failures) / total

    def tenant_ids(self) -> List[int]:
        return sorted(self._trackers)

    def tenant_slo(self, tenant_id: int) -> TenantSlo:
        tracker = self._trackers[tenant_id]
        return TenantSlo(
            tenant_id=tenant_id,
            requests=tracker.total,
            failures=tracker.failures,
            availability=tracker.availability(),
            budget_burn=1.0 - tracker.error_budget_remaining(),
            p99_read_s=tracker.percentile("read", 99.0),
        )

    def worst_tenants(self, k: int) -> List[TenantSlo]:
        """Top-``k`` tenants by error-budget burn (deterministic ties)."""
        if k < 1:
            raise ValueError("need k >= 1 worst tenants")
        slos = [self.tenant_slo(tid) for tid in self.tenant_ids()]
        slos.sort(key=lambda s: (-s.budget_burn, -s.failures, s.tenant_id))
        return slos[:k]

    def tenants_out_of_budget(self) -> int:
        """Tenants whose error budget is spent or burned through."""
        return sum(
            1 for tid in self.tenant_ids()
            if self.tenant_slo(tid).budget_burn >= 1.0
        )

    # -- reporting ------------------------------------------------------------

    def summary_lines(self, top_k: int = 5) -> List[str]:
        """Deterministic fleet summary (equal runs ⇒ byte-equal lines)."""
        lines = [
            f"tenants={len(self._trackers)} requests={self.total}"
            f" failures={self.failures}"
            f" availability={self.availability() * 100:.4f}%"
            f" out_of_budget={self.tenants_out_of_budget()}",
        ]
        if self._trackers:
            lines += [
                "worst: " + slo.line()
                for slo in self.worst_tenants(min(top_k, len(self._trackers)))
            ]
        return lines


def geometric_mean(values) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    product = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(vals))
