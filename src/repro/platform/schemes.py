"""The four execution schemes of §6.1: Host, Host+SGX, ISC, IceClave.

Timing model
------------

*Host / Host+SGX* stream the dataset over PCIe and then process it with
host cores; Figure 11 presents these phases stacked, so ``total = load +
compute``. Host+SGX additionally pays the SGX cost model.

*ISC / IceClave* stream flash pages through the in-storage pipeline:
channel-parallel flash reads overlap with compute on the controller cores,
so ``total = max(load, compute) + pipeline_exposure * min(load, compute)``.
Flash load throughput is *measured* by running a page batch through the
discrete-event flash device (cached per configuration). IceClave adds the
security machinery on top:

- address translation against the cached mapping table (protected region)
  — misses pay a world switch plus the translation-page fetch; the
  Figure 5 counterfactual instead pays batched world switches for every
  translation round trip;
- the MEE — the workload's sampled DRAM trace is replayed through
  :class:`MemoryEncryptionEngine`, whose measured per-access latency and
  extra traffic inflate memory stall time;
- stream cipher — 64 keystream bits/cycle covers a page about 5× faster
  than its channel transfer, so deciphering pipelines away (its latency is
  reported in stats, not charged);
- TEE lifecycle (Table 5 constants).
"""

from __future__ import annotations

import math
from collections import OrderedDict, namedtuple
from typing import Any, Dict, Optional, Tuple

from repro.core.config import MIB
from repro.core.mee import MemoryEncryptionEngine
from repro.flash.geometry import small_geometry
from repro.flash.ssd import FlashDevice
from repro.ftl.mapping_cache import MappingCache
from repro.platform.config import MAPPING_IN_SECURE, PlatformConfig
from repro.platform.metrics import RunResult
from repro.sim.engine import Engine
from repro.sim.stats import register_memo
from repro.query.trace import subsample_events
from repro.workloads.base import WorkloadProfile

# Fraction of the dataset each workload actively re-references (hash
# tables, hot tuples); drives the Figure 16 DRAM-capacity sensitivity.
WORKING_SET_FRACTION: Dict[str, float] = {
    "arithmetic": 0.068,
    "aggregate": 0.068,
    "filter": 0.068,
    "tpch-q1": 0.070,
    "tpch-q3": 0.085,
    "tpch-q12": 0.075,
    "tpch-q14": 0.075,
    "tpch-q19": 0.075,
    "tpcb": 0.095,
    "tpcc": 0.100,
    "wordcount": 0.085,
}
DEFAULT_WORKING_FRACTION = 0.08
SPILL_REUSE_PASSES = 10  # hot working data is re-touched many times once spilled
FIRMWARE_RESERVED_BYTES = 256 * MIB  # FTL metadata etc. in plain ISC

_throughput_cache: Dict[Tuple, float] = {}

_CacheInfo = namedtuple("_CacheInfo", "hits misses maxsize currsize")


class _BoundedMemo:
    """A small LRU memo with an ``lru_cache``-compatible ``cache_info``.

    Values may be keyed partly on ``id(obj)``; each entry therefore stores a
    strong reference to the keyed object so the id cannot be recycled while
    the entry lives.
    """

    def __init__(self, name: str, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, Tuple[Any, Any]]" = OrderedDict()
        register_memo(name, self)

    def get(self, key: Tuple) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry[1]

    def put(self, key: Tuple, pinned: Any, value: Any) -> None:
        self._entries[key] = (pinned, value)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def cache_info(self) -> _CacheInfo:
        return _CacheInfo(self.hits, self.misses, self.maxsize, len(self._entries))


# MEE replay is the single most expensive piece of an IceClave run, and a
# figure sweep replays the same trace under the same config many times.
_mee_overhead_memo = _BoundedMemo("platform.mee_overhead")


def flash_read_throughput(config: PlatformConfig, sample_pages: int = 4096) -> float:
    """Sustained internal read bandwidth, measured on the event simulator.

    Reads are issued with a bounded in-flight window (``queue_depth``), the
    way a real controller pipeline does: at low flash latency the channel
    bandwidth bounds throughput, at high latency the window does — which is
    the crossover Figure 14 sweeps across.
    """
    timing = config.flash_timing
    key = (
        config.channels,
        timing.read_latency,
        timing.channel_bandwidth,
        config.queue_depth_per_channel,
    )
    if key not in _throughput_cache:
        engine = Engine()
        geometry = small_geometry(
            channels=config.channels,
            chips_per_channel=4,
            dies_per_chip=4,
            planes_per_die=2,
            blocks_per_plane=4,
            pages_per_block=64,
        )
        device = FlashDevice(engine, geometry, timing)
        pages = min(sample_pages, geometry.total_pages)
        state = {"next": 0}

        def issue_one() -> None:
            if state["next"] >= pages:
                return
            ppa = state["next"]
            state["next"] += 1
            device.read(ppa, on_done=issue_one)

        window = config.queue_depth_per_channel * config.channels
        for _ in range(min(window, pages)):
            issue_one()
        elapsed = engine.run()
        _throughput_cache[key] = pages * geometry.page_bytes / elapsed
    return _throughput_cache[key]


class BasePlatform:
    """Shared scaffolding for the four schemes."""

    name = "base"

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        self.config = config or PlatformConfig()

    def run(self, profile: WorkloadProfile) -> RunResult:
        raise NotImplementedError

    def _scale(self, profile: WorkloadProfile) -> WorkloadProfile:
        return profile.scaled(self.config.dataset_bytes)

    @staticmethod
    def _working_fraction(name: str) -> float:
        return WORKING_SET_FRACTION.get(name, DEFAULT_WORKING_FRACTION)


class HostPlatform(BasePlatform):
    """Load everything over PCIe, compute on the host CPU."""

    name = "host"

    def run(self, profile: WorkloadProfile) -> RunResult:
        p = self._scale(profile)
        load = self._load_time(p)
        compute = self._compute_time(p)
        return RunResult(
            workload=p.name,
            scheme=self.name,
            total_time=load + compute,
            components={"load": load, "compute": compute},
        )

    def _load_time(self, p: WorkloadProfile) -> float:
        # the SSD can only push what its flash array sustains, and the link
        # can only carry what PCIe sustains
        bandwidth = min(
            self.config.pcie.effective_bandwidth, flash_read_throughput(self.config)
        )
        return p.input_bytes / bandwidth

    def _compute_time(self, p: WorkloadProfile, extra_memory_latency: float = 0.0) -> float:
        cores = self.config.host_cores
        return self.config.host_core.compute_time(
            instructions=p.instructions / cores,
            memory_accesses=p.dram_accesses / cores,
            memory_miss_rate=1.0,  # the counts are already DRAM-level
            extra_memory_latency_s=extra_memory_latency,
        )


class HostSgxPlatform(HostPlatform):
    """Host baseline with the queries running inside an SGX enclave."""

    name = "host+sgx"

    def run(self, profile: WorkloadProfile) -> RunResult:
        p = self._scale(profile)
        load = self._load_time(p)
        base_compute = self._compute_time(p)
        working = int(self._working_fraction(p.name) * self.config.dataset_bytes)
        compute = self.config.sgx.compute_time(
            base_compute_time=base_compute,
            streamed_bytes=p.input_bytes,
            working_set_bytes=min(working, 2 * self.config.sgx.epc_bytes),
            cpu_frequency_hz=self.config.host_core.frequency_hz,
        )
        return RunResult(
            workload=p.name,
            scheme=self.name,
            total_time=load + compute,
            components={"load": load, "compute": compute},
            stats={"sgx_compute_inflation": compute / base_compute if base_compute else 1.0},
        )


class IscPlatform(BasePlatform):
    """In-storage computing without any security isolation."""

    name = "isc"

    def run(self, profile: WorkloadProfile) -> RunResult:
        p = self._scale(profile)
        load = self._load_time(p)
        compute = self._compute_time(p)
        spill = self._spill_time(p)
        total = self._pipeline(load, compute) + spill
        return RunResult(
            workload=p.name,
            scheme=self.name,
            total_time=total,
            components={"load": load + spill, "compute": compute},
            stats={"internal_bandwidth": flash_read_throughput(self.config)},
        )

    # -- pieces shared with IceClave ------------------------------------------

    def _pipeline(self, load: float, compute: float) -> float:
        exposure = self.config.pipeline_exposure
        return max(load, compute) + exposure * min(load, compute)

    def _load_time(self, p: WorkloadProfile) -> float:
        return p.input_bytes / flash_read_throughput(self.config)

    def _spill_time(self, p: WorkloadProfile) -> float:
        """Figure 16: demand re-fetches of spilled working data stall the
        pipeline (they are random accesses, not prefetchable streams)."""
        return self._spill_bytes(p) / flash_read_throughput(self.config)

    def _spill_bytes(self, p: WorkloadProfile) -> float:
        """Figure 16: working data beyond SSD DRAM is re-fetched from flash."""
        working = self._working_fraction(p.name) * self.config.dataset_bytes
        available = self._available_dram()
        spill = max(0.0, working - available)
        return spill * SPILL_REUSE_PASSES

    def _available_dram(self) -> float:
        return self.config.iceclave.dram_bytes - FIRMWARE_RESERVED_BYTES

    def _compute_time(self, p: WorkloadProfile, extra_memory_latency: float = 0.0) -> float:
        cores = self.config.isc_cores
        return self.config.isc_core.compute_time(
            instructions=p.instructions / cores,
            memory_accesses=p.dram_accesses / cores,
            memory_miss_rate=1.0,
            extra_memory_latency_s=extra_memory_latency,
        )


class IceClavePlatform(IscPlatform):
    """ISC plus the full IceClave protection machinery."""

    name = "iceclave"

    def run(self, profile: WorkloadProfile) -> RunResult:
        p = self._scale(profile)
        load = self._load_time(p)
        compute = self._compute_time(p)

        translation, translation_stats = self._translation_time(p)
        mee_extra_latency, mee_stats = self._mee_overhead(profile)
        compute_secured = self._compute_time(p, extra_memory_latency=mee_extra_latency)
        mee_time = compute_secured - compute
        lifecycle = self.config.iceclave.tee_create_time + self.config.iceclave.tee_delete_time

        # security costs are additive: world switches synchronously pause
        # the TEE, and the MEE's metadata traffic shares the DRAM bus with
        # the flash DMA stream, so neither hides behind the pipeline
        security = translation + mee_time + lifecycle
        spill = self._spill_time(p)
        total = self._pipeline(load, compute) + spill + security
        stats = {
            "cipher_page_latency": self.config.iceclave.cipher_page_latency(),
            "mee_extra_latency": mee_extra_latency,
            **translation_stats,
            **mee_stats,
        }
        return RunResult(
            workload=p.name,
            scheme=self.name,
            total_time=total,
            components={
                "load": load + spill,
                "compute": compute,
                "security": security,
            },
            stats=stats,
        )

    # -- address translation (§4.2, Figures 5 and 9) ---------------------------

    def _translation_time(self, p: WorkloadProfile) -> Tuple[float, Dict[str, float]]:
        cfg = self.config.iceclave
        pages = max(1, p.input_bytes // cfg.page_bytes)
        cache = MappingCache(cfg.protected_region_bytes, cfg.page_bytes)
        if self.config.mapping_table_location == MAPPING_IN_SECURE:
            # every translation batch is a secure-world round trip
            batch = self.config.secure_world_translation_batch
            round_trips = math.ceil(pages / batch)
            time = round_trips * 2 * cfg.context_switch_time
            return time, {
                "translation_round_trips": float(round_trips),
                "translation_miss_rate": 1.0,
            }
        # protected region: only translation-page misses leave the normal
        # world; a sequential scan misses once per covered span. The FTL's
        # fetch of the translation page from flash overlaps with the data
        # stream (it is one extra page among the 512 it maps), so only the
        # world-switch pair lands on the critical path.
        misses = math.ceil(pages / cache.entries_per_page)
        time = misses * 2 * cfg.context_switch_time
        return time, {
            "translation_misses": float(misses),
            "translation_miss_rate": misses / pages,
        }

    # -- MEE overhead (§4.4) ------------------------------------------------------

    def _mee_overhead(self, profile: WorkloadProfile) -> Tuple[float, Dict[str, float]]:
        """Replay the sampled trace; return per-access extra latency + stats.

        Pure in its inputs (the trace events and the MEE-relevant config), so
        the replay is memoized: scaled profiles share the same events list,
        and every hashable config knob that feeds the replay is in the key.
        """
        raw_events = profile.trace.events
        key = (
            id(raw_events),
            len(raw_events),
            self.config.mee_sample_limit,
            self.config.mee_scheme,
            self.config.iceclave,
            self.config.isc_core.dram_latency_s,
            self.config.mee_latency_exposure,
        )
        cached = _mee_overhead_memo.get(key)
        if cached is not None:
            extra_latency, stats = cached
            return extra_latency, dict(stats)
        events = subsample_events(raw_events, self.config.mee_sample_limit)
        mee = MemoryEncryptionEngine(
            config=self.config.iceclave,
            scheme=self.config.mee_scheme,
            dram_latency=self.config.isc_core.dram_latency_s,
        )
        mee.replay(events)
        extra_traffic = (
            mee.stats.encryption_extra_traffic() + mee.stats.verification_extra_traffic()
        )
        # serialized miss paths, the escaped fraction of hit-path latency,
        # and bandwidth pressure from the extra metadata traffic
        hit_path = (
            mee.stats.mean_encryption_latency() + mee.stats.mean_verification_latency()
        )
        extra_latency = (
            mee.mean_access_overhead()
            + self.config.mee_latency_exposure * hit_path
            + extra_traffic * self.config.isc_core.dram_latency_s
        )
        stats = {
            "mee_encryption_traffic": mee.stats.encryption_extra_traffic(),
            "mee_verification_traffic": mee.stats.verification_extra_traffic(),
            "mee_mean_encryption_latency": mee.stats.mean_encryption_latency(),
            "mee_mean_verification_latency": mee.stats.mean_verification_latency(),
            "mee_counter_hit_rate": mee.cache.hit_rate,
        }
        _mee_overhead_memo.put(key, raw_events, (extra_latency, stats))
        return extra_latency, dict(stats)


SCHEMES = {
    HostPlatform.name: HostPlatform,
    HostSgxPlatform.name: HostSgxPlatform,
    IscPlatform.name: IscPlatform,
    IceClavePlatform.name: IceClavePlatform,
}


def make_platform(scheme: str, config: Optional[PlatformConfig] = None) -> BasePlatform:
    """Factory over the §6.1 scheme names."""
    try:
        cls = SCHEMES[scheme]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise KeyError(f"unknown scheme '{scheme}'; known: {known}") from None
    return cls(config)
