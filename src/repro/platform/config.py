"""Platform configuration: one object holding every sweep knob.

Defaults reproduce Table 3 (the paper's simulator configuration); each
sensitivity figure changes exactly one field via the ``with_*`` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import GIB, IceClaveConfig
from repro.core.mee import EncryptionScheme
from repro.cpu.core import CoreModel
from repro.cpu.models import CORTEX_A72, INTEL_I7_7700K
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.host.pcie import PcieLink
from repro.host.sgx import SgxModel

MAPPING_IN_PROTECTED = "protected"
MAPPING_IN_SECURE = "secure"


@dataclass(frozen=True)
class PlatformConfig:
    """Everything the four execution schemes need."""

    dataset_bytes: int = 32 * GIB  # §6.1: tables populated to 32 GB
    channels: int = 8

    flash_timing: FlashTiming = field(default_factory=FlashTiming)
    # in-storage compute: SSD controllers ship several cores (§1); the
    # offloaded operators parallelize across them and the flash channels
    isc_core: CoreModel = CORTEX_A72
    isc_cores: int = 4
    host_core: CoreModel = INTEL_I7_7700K
    host_cores: int = 4
    pcie: PcieLink = field(default_factory=PcieLink)
    sgx: SgxModel = field(default_factory=SgxModel)
    iceclave: IceClaveConfig = field(default_factory=IceClaveConfig)

    mee_scheme: EncryptionScheme = EncryptionScheme.HYBRID
    mapping_table_location: str = MAPPING_IN_PROTECTED
    # pages translated per secure-world round trip when the mapping table
    # lives in the secure world (the Figure 5 counterfactual)
    secure_world_translation_batch: int = 24
    # fraction of streamed pages whose flash read/decrypt is not hidden by
    # the compute pipeline at steady state
    pipeline_exposure: float = 0.1
    # fraction of the MEE's hit-path encrypt/verify latency that escapes
    # pipelining and lands on the critical path (§6.3 charges every access)
    mee_latency_exposure: float = 0.04
    mee_sample_limit: int = 60_000
    # outstanding flash page reads the controller keeps in flight, per
    # channel (the per-channel pipelines scale with the channel count)
    queue_depth_per_channel: int = 12

    def __post_init__(self) -> None:
        if self.channels < 1 or self.isc_cores < 1 or self.host_cores < 1:
            raise ValueError("counts must be >= 1")
        if self.mapping_table_location not in (MAPPING_IN_PROTECTED, MAPPING_IN_SECURE):
            raise ValueError(f"bad mapping location {self.mapping_table_location}")
        if not 0.0 <= self.pipeline_exposure <= 1.0:
            raise ValueError("pipeline_exposure must be a fraction")

    def geometry(self) -> FlashGeometry:
        """Table 3 geometry at the configured channel count."""
        return FlashGeometry(channels=self.channels)

    # -- sweep helpers (one per sensitivity figure) ----------------------------

    def with_channels(self, channels: int) -> "PlatformConfig":
        """Figure 12/13: internal bandwidth sweep."""
        return replace(self, channels=channels)

    def with_flash_read_latency(self, read_latency: float) -> "PlatformConfig":
        """Figure 14: flash device latency sweep."""
        return replace(self, flash_timing=self.flash_timing.with_read_latency(read_latency))

    def with_isc_core(self, core: CoreModel) -> "PlatformConfig":
        """Figure 15: in-storage computing capability sweep."""
        return replace(self, isc_core=core)

    def with_dram(self, dram_bytes: int) -> "PlatformConfig":
        """Figure 16: SSD DRAM capacity sweep."""
        return replace(self, iceclave=self.iceclave.with_dram(dram_bytes))

    def with_mee_scheme(self, scheme: EncryptionScheme) -> "PlatformConfig":
        """Figure 8: memory encryption scheme comparison."""
        return replace(self, mee_scheme=scheme)

    def with_mapping_location(self, location: str) -> "PlatformConfig":
        """Figure 5: mapping table in protected vs secure world."""
        return replace(self, mapping_table_location=location)

    def with_dataset(self, dataset_bytes: int) -> "PlatformConfig":
        return replace(self, dataset_bytes=dataset_bytes)
