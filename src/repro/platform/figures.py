"""Programmatic builders for every table/figure data series.

One function per experiment, returning plain dict/list structures that the
benchmark harness, the EXPERIMENTS.md generator, and the CSV exporter all
share — so the three never disagree about what an experiment means.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mee import EncryptionScheme, MemoryEncryptionEngine
from repro.cpu.models import CORTEX_A53, CORTEX_A72
from repro.platform.config import MAPPING_IN_SECURE, PlatformConfig
from repro.platform.metrics import RunResult
from repro.platform.multitenant import MultiTenantIceClave
from repro.platform.schemes import make_platform
from repro.query.trace import subsample_events
from repro.workloads.base import WorkloadProfile

WORKLOAD_ORDER = [
    "arithmetic", "aggregate", "filter",
    "tpch-q1", "tpch-q3", "tpch-q12", "tpch-q14", "tpch-q19",
    "tpcb", "tpcc", "wordcount",
]
SCHEMES = ("host", "host+sgx", "isc", "iceclave")

Profiles = Dict[str, WorkloadProfile]


def table1_write_ratios(profiles: Profiles, dataset_bytes: int = 32 << 30) -> Dict[str, float]:
    """Table 1: per-workload memory write ratios at dataset scale."""
    return {n: profiles[n].scaled(dataset_bytes).write_ratio for n in _names(profiles)}


def fig5_mapping_location(profiles: Profiles, config: PlatformConfig) -> Dict[str, Tuple[float, float]]:
    """Figure 5: (protected_s, secure_world_s) per workload."""
    protected = make_platform("iceclave", config)
    secure = make_platform("iceclave", config.with_mapping_location(MAPPING_IN_SECURE))
    return {
        n: (protected.run(profiles[n]).total_time, secure.run(profiles[n]).total_time)
        for n in _names(profiles)
    }


def fig8_mee_schemes(profiles: Profiles, config: PlatformConfig) -> Dict[str, Dict[str, float]]:
    """Figure 8: total time per workload per encryption scheme (enforced)."""
    enforced = dataclasses.replace(config, mee_latency_exposure=1.0)
    out: Dict[str, Dict[str, float]] = {n: {} for n in _names(profiles)}
    for scheme in EncryptionScheme:
        platform = make_platform("iceclave", enforced.with_mee_scheme(scheme))
        for n in _names(profiles):
            out[n][scheme.value] = platform.run(profiles[n]).total_time
    return out


def fig11_schemes(profiles: Profiles, config: PlatformConfig) -> Dict[str, Dict[str, RunResult]]:
    """Figure 11: full RunResults per workload per scheme."""
    platforms = {s: make_platform(s, config) for s in SCHEMES}
    return {
        n: {s: platforms[s].run(profiles[n]) for s in SCHEMES}
        for n in _names(profiles)
    }


def fig11_summary(results: Dict[str, Dict[str, RunResult]]) -> Dict[str, float]:
    """The §6.2 headline averages from a fig11 result set."""
    speedups = [r["iceclave"].speedup_over(r["host"]) for r in results.values()]
    sgx = [r["iceclave"].speedup_over(r["host+sgx"]) for r in results.values()]
    overheads = [r["iceclave"].overhead_over(r["isc"]) for r in results.values()]
    return {
        "speedup_vs_host": statistics.mean(speedups),
        "speedup_vs_host_sgx": statistics.mean(sgx),
        "overhead_vs_isc": statistics.mean(overheads),
    }


def fig12_13_channel_sweep(
    profiles: Profiles,
    config: PlatformConfig,
    channels: Sequence[int] = (4, 8, 16, 32),
) -> Dict[int, Dict[str, Tuple[float, float]]]:
    """Figures 12/13: (speedup_vs_host, overhead_vs_isc) per channel count."""
    out: Dict[int, Dict[str, Tuple[float, float]]] = {}
    for ch in channels:
        cfg = config.with_channels(ch)
        ice = make_platform("iceclave", cfg)
        host = make_platform("host", cfg)
        isc = make_platform("isc", cfg)
        point: Dict[str, Tuple[float, float]] = {}
        for n in _names(profiles):
            # run each platform once per workload; the iceclave run (the
            # expensive one — it replays the MEE trace) feeds both ratios
            ice_run = ice.run(profiles[n])
            point[n] = (
                ice_run.speedup_over(host.run(profiles[n])),
                ice_run.overhead_over(isc.run(profiles[n])),
            )
        out[ch] = point
    return out


def fig14_latency_sweep(
    profiles: Profiles,
    config: PlatformConfig,
    latencies_us: Sequence[int] = (10, 30, 50, 70, 90, 110),
) -> Dict[int, Dict[str, float]]:
    """Figure 14: speedup vs host per flash read latency."""
    out: Dict[int, Dict[str, float]] = {}
    for lat in latencies_us:
        cfg = config.with_flash_read_latency(lat * 1e-6)
        ice = make_platform("iceclave", cfg)
        host = make_platform("host", cfg)
        out[lat] = {
            n: ice.run(profiles[n]).speedup_over(host.run(profiles[n]))
            for n in _names(profiles)
        }
    return out


def fig15_capability_sweep(
    profiles: Profiles, config: PlatformConfig
) -> Dict[Tuple[str, float], float]:
    """Figure 15: average total time per (core, frequency)."""
    sweep = [
        (CORTEX_A72, 1.6e9), (CORTEX_A72, 1.2e9), (CORTEX_A72, 0.8e9),
        (CORTEX_A53, 1.6e9), (CORTEX_A53, 1.2e9), (CORTEX_A53, 0.8e9),
    ]
    out = {}
    for core, freq in sweep:
        cfg = config.with_isc_core(core.with_frequency(freq))
        platform = make_platform("iceclave", cfg)
        out[(core.name, freq)] = statistics.mean(
            platform.run(profiles[n]).total_time for n in _names(profiles)
        )
    return out


def fig16_dram_sweep(
    profiles: Profiles,
    config: PlatformConfig,
    capacities_gib: Sequence[int] = (2, 4),
) -> Dict[int, Dict[str, Tuple[float, float]]]:
    """Figure 16: (isc_s, iceclave_s) per DRAM capacity."""
    out: Dict[int, Dict[str, Tuple[float, float]]] = {}
    for gib in capacities_gib:
        cfg = config.with_dram(gib << 30)
        isc = make_platform("isc", cfg)
        ice = make_platform("iceclave", cfg)
        out[gib] = {
            n: (isc.run(profiles[n]).total_time, ice.run(profiles[n]).total_time)
            for n in _names(profiles)
        }
    return out


def fig17_pairs(
    profiles: Profiles,
    config: PlatformConfig,
    anchor: str = "tpcc",
    partners: Optional[List[str]] = None,
) -> Dict[str, List[RunResult]]:
    """Figure 17: the anchor workload collocated with each partner."""
    mt = MultiTenantIceClave(config)
    partners = partners or [n for n in _names(profiles) if n != anchor]
    return {p: mt.run([profiles[anchor], profiles[p]]) for p in partners}


def fig18_quad(
    profiles: Profiles,
    config: PlatformConfig,
    quad: Sequence[str] = ("tpcc", "tpch-q1", "filter", "wordcount"),
) -> List[RunResult]:
    """Figure 18: four collocated instances."""
    mt = MultiTenantIceClave(config)
    return mt.run([profiles[n] for n in quad])


def table6_extra_traffic(
    profiles: Profiles, config: PlatformConfig, sample: int = 60_000
) -> Dict[str, Tuple[float, float]]:
    """Table 6: (encryption, verification) extra-traffic fractions."""
    out = {}
    for n in _names(profiles):
        mee = MemoryEncryptionEngine(config=config.iceclave, scheme=EncryptionScheme.HYBRID)
        mee.replay(subsample_events(profiles[n].trace.events, sample))
        out[n] = (
            mee.stats.encryption_extra_traffic(),
            mee.stats.verification_extra_traffic(),
        )
    return out


def _names(profiles: Profiles) -> List[str]:
    return [n for n in WORKLOAD_ORDER if n in profiles] + [
        n for n in profiles if n not in WORKLOAD_ORDER
    ]
