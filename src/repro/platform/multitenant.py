"""Multi-tenant IceClave: concurrent in-storage TEEs (§6.8).

Each collocated instance runs on its own controller core (the solo
baseline uses one core too, matching the paper's "running each in-storage
application independently"); interference comes from the shared substrate:

- **flash channels** — only when the tenants' aggregate bandwidth demand
  exceeds the internal bandwidth do load phases stretch;
- **protected-region mapping cache** — interleaved translation streams
  evict each other (the paper measures up to 8.7% more misses);
- **SSD DRAM bandwidth** — concurrent memory traffic inflates each
  instance's stall time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.ftl.mapping_cache import MappingCache
from repro.platform.config import PlatformConfig
from repro.platform.metrics import RunResult
from repro.platform.schemes import IceClavePlatform
from repro.workloads.base import WorkloadProfile

MEMORY_INTERFERENCE_PER_TENANT = 0.09  # stall inflation per collocated tenant


class MultiTenantIceClave:
    """Runs several workload profiles concurrently under IceClave."""

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        base = config or PlatformConfig()
        # one controller core per tenant, solo and collocated alike
        self.config = replace(base, isc_cores=1)
        self._single = IceClavePlatform(self.config)

    def run_solo(self, profile: WorkloadProfile) -> RunResult:
        """The single-instance baseline Figures 17/18 normalize against."""
        return self._single.run(profile)

    def run(self, profiles: List[WorkloadProfile]) -> List[RunResult]:
        """Returns one RunResult per instance, with contention applied."""
        if not profiles:
            raise ValueError("need at least one instance")
        solos = [self._single.run(p) for p in profiles]
        if len(profiles) == 1:
            return solos

        n = len(profiles)
        miss_rates = self._shared_mapping_cache_miss_rates(profiles)

        # aggregate internal-bandwidth demand: each tenant spends
        # load_j/total_j of its runtime pulling from flash at full rate
        demand = sum(r.components["load"] / r.total_time for r in solos)
        load_stretch = max(1.0, demand)

        results: List[RunResult] = []
        for i, (profile, solo) in enumerate(zip(profiles, solos)):
            load = solo.components["load"] * load_stretch
            compute = solo.components["compute"] * (
                1.0 + MEMORY_INTERFERENCE_PER_TENANT * (n - 1)
            )
            solo_rate = max(solo.stats.get("translation_miss_rate", 0.0), 1e-9)
            miss_factor = max(1.0, miss_rates[i] / solo_rate)
            security = solo.components["security"] * miss_factor

            exposure = self.config.pipeline_exposure
            total = max(load, compute) + exposure * min(load, compute) + security
            results.append(
                RunResult(
                    workload=profile.name,
                    scheme=f"iceclave-x{n}",
                    total_time=total,
                    components={
                        "load": load,
                        "compute": compute,
                        "security": security,
                    },
                    stats={
                        "solo_time": solo.total_time,
                        "slowdown": total / solo.total_time,
                        "shared_miss_rate": miss_rates[i],
                        "bandwidth_demand": demand,
                    },
                )
            )
        return results

    def _shared_mapping_cache_miss_rates(
        self, profiles: List[WorkloadProfile]
    ) -> List[float]:
        """Interleave the tenants' translation streams through one cache.

        Simulated at translation-page granularity (one access per 512 LPAs)
        with disjoint LPA ranges per tenant, mirroring datasets placed side
        by side on the SSD.
        """
        cfg = self.config.iceclave
        cache = MappingCache(cfg.protected_region_bytes, cfg.page_bytes)
        spacing = cache.entries_per_page
        streams = []
        for idx, profile in enumerate(profiles):
            scaled = profile.scaled(self.config.dataset_bytes)
            pages = max(1, scaled.input_bytes // cfg.page_bytes)
            tpages = max(1, pages // spacing)
            base = idx * (1 << 34)  # disjoint LPA ranges
            streams.append((base, tpages))
        hits: Dict[int, int] = {i: 0 for i in range(len(profiles))}
        misses: Dict[int, int] = {i: 0 for i in range(len(profiles))}
        # round-robin interleave; each access covers `spacing` LPAs
        longest = max(tp for _, tp in streams)
        step_cap = 40_000  # keep simulation bounded; statistics converge fast
        stride = max(1, longest // step_cap)
        for step in range(0, longest, stride):
            for i, (base, tpages) in enumerate(streams):
                if step >= tpages:
                    continue
                lpa = base + step * spacing
                if cache.access(lpa):
                    hits[i] += 1
                else:
                    misses[i] += 1
        rates = []
        for i in range(len(profiles)):
            total = hits[i] + misses[i]
            # each simulated access stands for `spacing` real translations,
            # of which only the first can miss
            rates.append((misses[i] / total) / spacing if total else 0.0)
        return rates
